//! Runs every table/figure harness and prints a combined report —
//! the data behind EXPERIMENTS.md.
//!
//! Experiments run on the parallel engine (experiment-level jobs on top of
//! each harness's campaign-level jobs; the shared worker budget caps total
//! threads at `Scale::threads()`). Reports are printed in paper order and
//! are byte-identical for any `UBURST_THREADS` value; per-experiment
//! timings go to stderr so stdout stays deterministic.

use std::time::Instant;

fn main() {
    // Record pipeline telemetry for the whole run. Every metric is a
    // commutative aggregate over simulated time, so the snapshot printed
    // below is byte-identical for any UBURST_THREADS value.
    uburst_obs::enable();
    let scale = uburst_bench::Scale::from_env();
    let t0 = Instant::now();
    println!("uburst reproduction report (scale: {})", scale.label());
    println!("====================================================");
    let experiments = uburst_bench::figures::all_experiments();
    let reports = uburst_bench::run_jobs(experiments, |(id, title, runner)| {
        let t = Instant::now();
        let report = runner(scale);
        eprintln!("[{id} completed in {:.1}s]", t.elapsed().as_secs_f64());
        (id, title, report)
    });
    for (id, title, report) in reports {
        println!("\n### {id}: {title}\n");
        print!("{report}");
    }

    let snap = uburst_obs::snapshot();
    println!("\n### telemetry: pipeline self-observability\n");
    println!("stage latency rollup (simulated time):");
    print!("{}", snap.flame_rollup());
    println!("\nmetrics (Prometheus exposition):");
    print!("{}", snap.to_prometheus());
    // UBURST_TELEMETRY_OUT=<prefix> additionally writes <prefix>.prom and
    // <prefix>.json — what the CI snapshot-diff job compares across
    // thread counts.
    if let Ok(prefix) = std::env::var("UBURST_TELEMETRY_OUT") {
        if !prefix.is_empty() {
            std::fs::write(format!("{prefix}.prom"), snap.to_prometheus())
                .expect("write telemetry .prom");
            std::fs::write(format!("{prefix}.json"), snap.to_json())
                .expect("write telemetry .json");
            eprintln!("[telemetry written to {prefix}.prom / {prefix}.json]");
        }
    }

    eprintln!(
        "[all experiments completed in {:.1}s on {} thread(s)]",
        t0.elapsed().as_secs_f64(),
        uburst_bench::Scale::threads()
    );
}
