//! Deterministic fault injection for counter reads.
//!
//! The paper's framework is a *best-effort* production pipeline: counter
//! reads ride on real bus transactions (PCIe/MDIO) that can time out, stall
//! behind other control-plane traffic, or return stale data, and many
//! Broadcom-class register banks expose only **32-bit** cumulative counters
//! that wrap in under a second at 10 Gb/s (§4.1 bounds everything on these
//! hardware realities). This module makes those degraded regimes
//! reproducible: a seeded [`FaultPlan`] drives a [`FaultInjector`] that sits
//! between the poller and [`crate::AsicCounters`], injecting
//!
//! * **transient read failures** — the bus transaction times out; the poll
//!   burns [`FaultPlan::bus_timeout`] of simulated time and returns nothing,
//! * **latency spikes** — the transaction completes but takes far longer
//!   than the [`crate::AccessModel`] cost (arbitration, retried TLPs),
//! * **stale reads** — the transaction returns the previously latched value
//!   (a stuck read snoop), and
//! * **narrow counters** — values wrap modulo `2^counter_bits`, as on real
//!   register banks; the collection tier must decode the wraps.
//!
//! Everything is drawn from one xoshiro stream seeded by the plan, so a
//! campaign under faults is bit-reproducible from its printed seed.

use std::collections::HashMap;

use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

use crate::counters::CounterId;

/// Why a read attempt produced no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The bus transaction timed out after burning `cost` of CPU time.
    BusTimeout {
        /// Simulated time the failed transaction consumed.
        cost: Nanos,
    },
}

impl ReadFault {
    /// Simulated time the faulted attempt consumed.
    pub fn cost(self) -> Nanos {
        match self {
            ReadFault::BusTimeout { cost } => cost,
        }
    }
}

/// A seeded description of how reads misbehave.
///
/// Probabilities are per *poll transaction* (failure, spike) or per
/// *counter value* (stale). The default plan is fault-free with full-width
/// counters, so wiring an injector in changes nothing until knobs are set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private random stream.
    pub seed: u64,
    /// Probability that a poll transaction fails with a bus timeout.
    pub transient_failure: f64,
    /// Simulated time a failed transaction burns before reporting failure.
    pub bus_timeout: Nanos,
    /// Probability that a successful transaction suffers a latency spike.
    pub latency_spike: f64,
    /// Spike magnitude range, uniform in `[min, max)`.
    pub spike_min: Nanos,
    /// See [`FaultPlan::spike_min`].
    pub spike_max: Nanos,
    /// Probability that a read value is the previously latched one.
    pub stale_read: f64,
    /// When set, stale reads are served from a single **bank-wide** read
    /// snoop register (the last value any counter latched through the
    /// bus) instead of a per-counter latch. In a multi-counter campaign
    /// this leaks one counter's value into another's read — the raw
    /// stream can *regress*, which is exactly the failure a
    /// wrap-plausibility guard must distinguish from a genuine wrap.
    pub shared_snoop: bool,
    /// Counter register width in bits (1..=64); values wrap mod `2^bits`.
    pub counter_bits: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            transient_failure: 0.0,
            // A read that dies on the bus holds the CPU for several
            // transaction setups before the driver gives up.
            bus_timeout: Nanos(9_000),
            latency_spike: 0.0,
            spike_min: Nanos::from_micros(20),
            spike_max: Nanos::from_micros(80),
            stale_read: 0.0,
            shared_snoop: false,
            counter_bits: 64,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan (the default) under a given seed.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the transient-failure probability.
    pub fn with_transient_failure(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.transient_failure = p;
        self
    }

    /// Sets the latency-spike probability.
    pub fn with_latency_spike(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.latency_spike = p;
        self
    }

    /// Sets the stale-read probability.
    pub fn with_stale_read(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.stale_read = p;
        self
    }

    /// Serves stale reads from one bank-wide snoop register instead of a
    /// per-counter latch (see [`FaultPlan::shared_snoop`]).
    pub fn with_shared_snoop(mut self) -> Self {
        self.shared_snoop = true;
        self
    }

    /// Sets the counter register width (1..=64 bits).
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "counter width {bits} out of range"
        );
        self.counter_bits = bits;
        self
    }

    /// Derives the fault plan for one switch of a fleet campaign.
    ///
    /// Every switch gets its own seed (same fleet seed, different switch,
    /// different weather), and a deterministic `flaky_rate` fraction of
    /// the fleet gets a flaky profile — transient bus failures, latency
    /// spikes, stale reads — while the rest run benign. *Which* switches
    /// are flaky is a pure function of `(fleet_seed, switch_index)`, so a
    /// faulted fleet is reproducible from its printed seed and identical
    /// regardless of the order switches are built in.
    pub fn for_fleet_switch(fleet_seed: u64, switch_index: u32, flaky_rate: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&flaky_rate),
            "probability out of range"
        );
        // splitmix64 finalizer over (seed, index): decorrelates adjacent
        // switch indices so "flaky" is not clustered by rack numbering.
        let mut h = fleet_seed ^ (switch_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let plan = FaultPlan::none(h);
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < flaky_rate {
            plan.with_transient_failure(0.10)
                .with_latency_spike(0.05)
                .with_stale_read(0.02)
        } else {
            plan
        }
    }

    /// The value mask implied by [`FaultPlan::counter_bits`].
    pub fn value_mask(&self) -> u64 {
        if self.counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.counter_bits) - 1
        }
    }

    /// True when every fault knob is off and counters are full-width.
    pub fn is_benign(&self) -> bool {
        self.transient_failure == 0.0
            && self.latency_spike == 0.0
            && self.stale_read == 0.0
            && self.counter_bits == 64
    }
}

/// Counts of injected faults, for cross-checking against the collection
/// tier's own accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Poll transactions failed with a bus timeout.
    pub bus_timeouts: u64,
    /// Poll transactions delayed by a latency spike.
    pub latency_spikes: u64,
    /// Counter values replaced by the previously latched value.
    pub stale_values: u64,
}

/// Applies a [`FaultPlan`] to a stream of read transactions.
///
/// The injector is consulted once per poll transaction
/// ([`FaultInjector::pre_read`]) and once per counter value
/// ([`FaultInjector::filter_value`]); it owns a private seeded RNG, so a
/// fixed plan produces the identical fault sequence every run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    latched: HashMap<CounterId, u64>,
    /// The bank-wide read snoop: last value *any* counter latched through
    /// the bus. Only consulted when [`FaultPlan::shared_snoop`] is set.
    bus_latch: Option<u64>,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            rng: Rng::new(plan.seed ^ 0xFA17_1A7E_C0DE_CAFE),
            plan,
            latched: HashMap::new(),
            bus_latch: None,
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one poll transaction **before** the bank is
    /// touched: `Err` is a bus timeout (no counters were read; the cost is
    /// the CPU time lost), `Ok(extra)` is a success with `extra` latency on
    /// top of the deterministic [`crate::AccessModel`] cost.
    pub fn pre_read(&mut self) -> Result<Nanos, ReadFault> {
        if self.plan.transient_failure > 0.0 && self.rng.chance(self.plan.transient_failure) {
            self.stats.bus_timeouts += 1;
            uburst_obs::counter_add("uburst_fault_bus_timeouts_total", 1);
            return Err(ReadFault::BusTimeout {
                cost: self.plan.bus_timeout,
            });
        }
        if self.plan.latency_spike > 0.0 && self.rng.chance(self.plan.latency_spike) {
            self.stats.latency_spikes += 1;
            uburst_obs::counter_add("uburst_fault_latency_spikes_total", 1);
            let lo = self.plan.spike_min.as_nanos();
            let hi = self.plan.spike_max.as_nanos().max(lo + 1);
            return Ok(Nanos(self.rng.range(lo, hi - 1)));
        }
        Ok(Nanos::ZERO)
    }

    /// Filters one raw 64-bit counter value through the plan: wraps it to
    /// the register width and possibly replaces it with the previously
    /// latched (stale) value. Returns what the "hardware" hands the driver.
    pub fn filter_value(&mut self, id: CounterId, raw: u64) -> u64 {
        let wrapped = raw & self.plan.value_mask();
        if self.plan.stale_read > 0.0 && self.rng.chance(self.plan.stale_read) {
            let old = if self.plan.shared_snoop {
                self.bus_latch
            } else {
                self.latched.get(&id).copied()
            };
            if let Some(old) = old {
                self.stats.stale_values += 1;
                uburst_obs::counter_add("uburst_fault_stale_values_total", 1);
                return old;
            }
        }
        self.latched.insert(id, wrapped);
        self.bus_latch = Some(wrapped);
        wrapped
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::node::PortId;

    const C: CounterId = CounterId::TxBytes(PortId(0));

    #[test]
    fn benign_plan_is_transparent() {
        let mut inj = FaultInjector::new(FaultPlan::none(1));
        for i in 0..1000u64 {
            assert_eq!(inj.pre_read(), Ok(Nanos::ZERO));
            assert_eq!(inj.filter_value(C, i * 1_000_000_007), i * 1_000_000_007);
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(inj.plan().is_benign());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::none(42)
            .with_transient_failure(0.05)
            .with_latency_spike(0.05)
            .with_stale_read(0.1);
        let run = |mut inj: FaultInjector| {
            let mut log = Vec::new();
            for i in 0..500 {
                log.push(inj.pre_read());
                log.push(Ok(Nanos(inj.filter_value(C, i * 31))));
            }
            (log, inj.stats())
        };
        let (a, sa) = run(FaultInjector::new(plan));
        let (b, sb) = run(FaultInjector::new(plan));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.bus_timeouts > 0 && sa.latency_spikes > 0 && sa.stale_values > 0);
    }

    #[test]
    fn failure_rate_approximates_plan() {
        let mut inj = FaultInjector::new(FaultPlan::none(7).with_transient_failure(0.1));
        let n = 100_000;
        let failures = (0..n).filter(|_| inj.pre_read().is_err()).count();
        let rate = failures as f64 / n as f64;
        assert!((0.09..=0.11).contains(&rate), "observed {rate}");
        assert_eq!(inj.stats().bus_timeouts, failures as u64);
    }

    #[test]
    fn narrow_counters_wrap() {
        let mut inj = FaultInjector::new(FaultPlan::none(3).with_counter_bits(32));
        let big = (1u64 << 32) + 5;
        assert_eq!(inj.filter_value(C, big), 5);
        assert_eq!(inj.plan().value_mask(), u32::MAX as u64);
        let mut full = FaultInjector::new(FaultPlan::none(3));
        assert_eq!(full.filter_value(C, big), big);
    }

    #[test]
    fn stale_reads_latch_previous_value() {
        // Probability 1: after the first (latching) read, everything is the
        // first value again.
        let mut inj = FaultInjector::new(FaultPlan::none(9).with_stale_read(1.0));
        let first = inj.filter_value(C, 100);
        assert_eq!(first, 100, "nothing latched yet, first read passes");
        assert_eq!(inj.filter_value(C, 200), 100);
        assert_eq!(inj.filter_value(C, 300), 100);
        assert_eq!(inj.stats().stale_values, 2);
        // A different counter has its own latch.
        let other = CounterId::RxBytes(PortId(1));
        assert_eq!(inj.filter_value(other, 777), 777);
    }

    #[test]
    fn shared_snoop_leaks_across_counters() {
        // With one bank-wide snoop register, a stale read on counter B
        // returns whatever counter A last latched — the raw stream for B
        // regresses, which is indistinguishable from a wrap without a
        // plausibility guard.
        let mut inj =
            FaultInjector::new(FaultPlan::none(9).with_stale_read(1.0).with_shared_snoop());
        let a = CounterId::TxBytes(PortId(0));
        let b = CounterId::RxBytes(PortId(1));
        assert_eq!(inj.filter_value(a, 500_000), 500_000, "first read latches");
        assert_eq!(
            inj.filter_value(b, 900_000),
            500_000,
            "B's read serves A's latched value"
        );
        assert_eq!(inj.stats().stale_values, 1);
    }

    #[test]
    fn spike_magnitudes_stay_in_range() {
        let plan = FaultPlan::none(11).with_latency_spike(1.0);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..1000 {
            let extra = inj.pre_read().unwrap();
            assert!(extra >= plan.spike_min && extra < plan.spike_max);
        }
    }

    #[test]
    fn fleet_plans_are_deterministic_and_rate_bounded() {
        // Rate endpoints are exact.
        for i in 0..64 {
            assert!(FaultPlan::for_fleet_switch(17, i, 0.0).is_benign());
            assert!(!FaultPlan::for_fleet_switch(17, i, 1.0).is_benign());
        }
        // Same (seed, index, rate) → same plan; different index → at
        // least a different private seed.
        let a = FaultPlan::for_fleet_switch(99, 7, 0.3);
        assert_eq!(a, FaultPlan::for_fleet_switch(99, 7, 0.3));
        assert_ne!(a.seed, FaultPlan::for_fleet_switch(99, 8, 0.3).seed);
        // Observed flaky fraction tracks the requested rate.
        let n = 2000u32;
        let flaky = (0..n)
            .filter(|&i| !FaultPlan::for_fleet_switch(5, i, 0.2).is_benign())
            .count() as f64
            / n as f64;
        assert!((0.15..=0.25).contains(&flaky), "observed {flaky}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        FaultPlan::none(0).with_transient_failure(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        FaultPlan::none(0).with_counter_bits(0);
    }
}
