//! Extension experiment: what µbursts cost latency-sensitive flows.
//!
//! §6.1 notes that instantaneous load-balance "has implications for drop-
//! and latency-sensitive protocols like RDMA and TIMELY", and §7 argues
//! µbursts are invisible to RTT-scale congestion control. This experiment
//! quantifies the damage at the application level: flow completion times
//! (FCT) of the Cache rack's responses across load, with and without an
//! ECN-equipped transport.
//!
//! The slowdown metric normalizes each flow's FCT by its ideal 10 Gbps
//! serialization time + a fixed base RTT, so flows of different sizes are
//! comparable (the standard FCT-slowdown methodology).
//!
//! Run with `cargo run --release -p uburst-bench --bin ext_fct_tail`.

use uburst_analysis::Ecdf;
use uburst_bench::report::Table;
use uburst_sim::time::Nanos;
use uburst_workloads::host::AppHost;
use uburst_workloads::scenario::{build_scenario, RackType, ScenarioConfig};
use uburst_workloads::tags::{decode, MsgKind};

/// Ideal time for `bytes` at 10 Gbps plus a 60 µs base RTT/service floor.
fn ideal(bytes: u64) -> f64 {
    bytes as f64 * 8.0 / 10e9 + 60e-6
}

/// Runs a cache scenario and returns slowdowns of the rack's response
/// flows.
fn slowdowns(load: f64, ecn: bool, seed: u64) -> Vec<f64> {
    let mut cfg = ScenarioConfig::new(RackType::Cache, seed);
    cfg.load = load;
    if ecn {
        cfg.clos.tor_switch.ecn_threshold = Some(60 << 10);
        cfg.transport.ecn = true;
    }
    let mut s = build_scenario(cfg);
    s.sim.run_until(Nanos::from_millis(250));
    let mut out = Vec::new();
    for &h in &s.rack_hosts {
        for r in s.sim.node::<AppHost>(h).fcts() {
            // Only cache responses (the latency-sensitive direction).
            if decode(r.tag).0 == MsgKind::Response {
                out.push(r.fct.as_secs_f64() / ideal(r.bytes));
            }
        }
    }
    out
}

fn main() {
    println!("extension: FCT slowdown of cache responses vs load (25us-burst effects)");
    println!();

    let mut t = Table::new(&["load", "transport", "flows", "p50", "p90", "p99", "max"]);
    let mut p99s: Vec<(f64, bool, f64, f64)> = Vec::new();
    // Each (load, transport) combination is an independent scenario run;
    // fan them out on the pool (the scenario never leaves its worker).
    let mut combos = Vec::new();
    for &load in &[0.5, 1.0, 1.5, 2.0] {
        for ecn in [false, true] {
            combos.push((load, ecn));
        }
    }
    let all_slowdowns =
        uburst_bench::run_jobs(combos.clone(), |(load, ecn)| slowdowns(load, ecn, 80_808));
    for ((load, ecn), s) in combos.into_iter().zip(all_slowdowns) {
        if s.is_empty() {
            continue;
        }
        let e = Ecdf::new(s);
        t.row(&[
            format!("{load}"),
            if ecn { "ECN/DCTCP" } else { "drop-based" }.into(),
            format!("{}", e.len()),
            format!("{:.2}", e.quantile(0.5)),
            format!("{:.2}", e.quantile(0.9)),
            format!("{:.2}", e.quantile(0.99)),
            format!("{:.1}", e.max()),
        ]);
        p99s.push((load, ecn, e.quantile(0.99), e.max()));
    }
    t.print();

    println!();
    println!("reading: median slowdown barely moves with load — most flows never");
    println!("meet a uburst. The p99 is where ubursts live: collisions inflate the");
    println!("tail well before average utilization looks troubling, which is what");
    println!("makes them invisible to coarse monitoring yet harmful to");
    println!("latency-sensitive protocols.");

    println!("\nchecks:");
    let p99_at = |load: f64, ecn: bool| {
        p99s.iter()
            .find(|&&(l, e, _, _)| l == load && e == ecn)
            .map(|&(_, _, v, _)| v)
            .unwrap_or(f64::NAN)
    };
    let max_at = |load: f64, ecn: bool| {
        p99s.iter()
            .find(|&&(l, e, _, _)| l == load && e == ecn)
            .map(|&(_, _, _, v)| v)
            .unwrap_or(f64::NAN)
    };
    let lo = p99_at(0.5, false);
    let hi = p99_at(2.0, false);
    println!(
        "  [{}] the FCT tail grows with load ({lo:.2} -> {hi:.2} at p99)",
        if hi > lo { "ok" } else { "MISS" }
    );
    let med_lo = 1.0; // medians should stay near ideal
    println!(
        "  [{}] medians stay near ideal while the tail inflates (tail/median gap at load 2.0: {:.1}x)",
        if hi > 2.0 * med_lo { "ok" } else { "MISS" },
        hi / med_lo
    );
    // ECN's win is at the extreme tail: it removes the RTO stragglers that
    // lost whole windows to a uburst; the p99 is queueing-dominated and
    // barely moves — the RTT-scale-signal limitation the paper predicts.
    let drop_max = max_at(2.0, false);
    let ecn_max = max_at(2.0, true);
    println!(
        "  [{}] ECN removes drop/RTO stragglers at the extreme tail (max {drop_max:.0}x -> {ecn_max:.0}x)",
        if ecn_max * 5.0 < drop_max { "ok" } else { "MISS" }
    );
    let drop_p99 = p99_at(2.0, false);
    let ecn_p99 = p99_at(2.0, true);
    println!(
        "  [{}] but p99 is queueing-dominated and barely moves ({drop_p99:.2} vs {ecn_p99:.2}) — ubursts outpace RTT-scale signals",
        if (ecn_p99 - drop_p99).abs() < 0.3 * drop_p99 { "ok" } else { "MISS" }
    );
}
