//! Figure 3 — CDF of µburst durations at 25 µs granularity.
//!
//! Paper's findings: a significant fraction of bursts last one sampling
//! period; p90 ≤ 200 µs for all three rack types; Web's p90 is 50 µs (two
//! periods); over 60 % of Web and Cache bursts terminate within one period;
//! Hadoop has the longest tail but almost all bursts end within 0.5 ms.

use std::fmt::Write;

use uburst_analysis::{Ecdf, HOT_THRESHOLD};
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::RackType;

use crate::figures::common::{all_burst_durations_us, collect_single_port_utils};
use crate::report::Table;
use crate::scale::Scale;
use crate::DURATION_POINTS_US;

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let interval = Nanos::from_micros(25);
    let mut out = String::new();
    writeln!(
        out,
        "Figure 3: CDF of uburst durations at 25us granularity ({} scale)",
        scale.label()
    )
    .unwrap();

    let mut table = Table::new(&[
        "rack", "bursts", "F(25us)", "F(50us)", "F(200us)", "F(500us)", "p50us", "p90us", "p99us",
    ]);
    let mut curves = String::new();
    let mut checks: Vec<(String, bool)> = Vec::new();
    let mut p90s = Vec::new();

    for rack_type in RackType::ALL {
        let runs = collect_single_port_utils(scale, rack_type, interval);
        let durations = all_burst_durations_us(&runs, HOT_THRESHOLD);
        let ecdf = Ecdf::new(durations);
        table.row(&[
            rack_type.name().to_string(),
            format!("{}", ecdf.len()),
            format!("{:.3}", ecdf.fraction_at_or_below(25.0)),
            format!("{:.3}", ecdf.fraction_at_or_below(50.0)),
            format!("{:.3}", ecdf.fraction_at_or_below(200.0)),
            format!("{:.3}", ecdf.fraction_at_or_below(500.0)),
            format!("{:.0}", ecdf.quantile(0.5)),
            format!("{:.0}", ecdf.quantile(0.9)),
            format!("{:.0}", ecdf.quantile(0.99)),
        ]);
        writeln!(curves, "\n{} burst-duration CDF:", rack_type.name()).unwrap();
        for (x, f) in ecdf.curve(&DURATION_POINTS_US) {
            writeln!(curves, "  {x:>9.0}us  {f:.3}").unwrap();
        }
        p90s.push((rack_type, ecdf.quantile(0.9)));
        if rack_type != RackType::Hadoop {
            // Sample timestamps carry per-poll jitter, so a one-period
            // burst measures 25us +- a few; classify with 1.5 periods.
            let one_period = ecdf.fraction_at_or_below(37.5);
            checks.push((
                format!(
                    "{}: >60% of bursts end within ~one period (got {:.0}%)",
                    rack_type.name(),
                    one_period * 100.0
                ),
                one_period > 0.6,
            ));
        }
    }

    for (rt, p90) in &p90s {
        checks.push((
            format!("{}: p90 <= 200us (got {p90:.0}us)", rt.name()),
            *p90 <= 200.0,
        ));
    }
    let web_p90 = p90s
        .iter()
        .find(|(rt, _)| *rt == RackType::Web)
        .map(|(_, p)| *p)
        .unwrap_or(f64::NAN);
    checks.push((
        format!("Web has the lowest p90 (paper: 50us; got {web_p90:.0}us)"),
        p90s.iter().all(|(_, p)| web_p90 <= *p),
    ));

    writeln!(out, "{}", table.render()).unwrap();
    out.push_str(&curves);
    writeln!(out, "\npaper-shape checks:").unwrap();
    for (desc, ok) in checks {
        writeln!(out, "  [{}] {desc}", if ok { "ok" } else { "MISS" }).unwrap();
    }
    out
}
