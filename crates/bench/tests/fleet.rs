//! Fleet-tier contracts: thread-count invariance of the full fleet
//! report (with and without aggregator crashes), and partial-failure
//! accounting (quarantined switches are excluded *and* accounted, never
//! silently dropped).

use uburst_bench::fleet::{render_report, run_fleet_spec_crashed_on, run_fleet_spec_on, FleetSpec};
use uburst_bench::Scale;
use uburst_core::failpoint::RegionCrashPlan;
use uburst_core::fleet::HealthState;
use uburst_sim::time::Nanos;

/// A cheap fleet: few switches, short campaigns, coarse interval.
fn tiny(n: u32, flaky_rate: f64) -> FleetSpec {
    let mut spec = FleetSpec::new(n, 0x77_001, flaky_rate, Scale::Quick);
    spec.interval = Nanos::from_micros(100);
    spec.span = Nanos::from_millis(5);
    spec.rounds = 6;
    spec
}

#[test]
fn fleet_report_is_thread_count_invariant_under_faults() {
    // The hard case: a faulted fleet (flaky switches, hostile links,
    // quarantines firing) must still render byte-identically whatever
    // the worker count.
    let spec = tiny(6, 0.5);
    let sequential = render_report(&run_fleet_spec_on(1, &spec));
    let parallel = render_report(&run_fleet_spec_on(4, &spec));
    assert_eq!(
        sequential, parallel,
        "fleet report diverged across thread counts"
    );
    assert!(
        sequential.contains("coverage:"),
        "report carries a coverage ledger"
    );
}

#[test]
fn crashed_fleet_report_is_thread_count_invariant() {
    // Aggregator crash + re-shard + WAL replay happen entirely in the
    // single-threaded aggregation pump, so a mid-run region crash must
    // not cost byte-identity across worker counts either.
    let spec = tiny(6, 0.0);
    let reference = run_fleet_spec_on(1, &spec);
    let victim = reference
        .outcome
        .regions
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.wal_bytes)
        .map(|(i, _)| i)
        .unwrap();
    let crash = RegionCrashPlan::kill(victim, reference.outcome.regions[victim].wal_bytes / 2);
    let sequential = render_report(&run_fleet_spec_crashed_on(1, &spec, &crash));
    let parallel = render_report(&run_fleet_spec_crashed_on(4, &spec, &crash));
    assert_eq!(
        sequential, parallel,
        "crashed fleet report diverged across thread counts"
    );
    assert!(sequential.contains("injected crash: region"));
    assert!(sequential.contains("[ok] every crashed aggregator recovered (1/1)"));
    assert!(sequential.contains("[ok] no acked batch is lost"));
}

#[test]
fn fault_free_fleet_has_full_coverage() {
    let spec = tiny(5, 0.0);
    let run = run_fleet_spec_on(2, &spec);
    let cov = &run.outcome.coverage;
    assert_eq!(cov.switches.len(), 5);
    assert_eq!(cov.included(), 5);
    assert_eq!(cov.sample_fraction(), 1.0);
    assert!(cov
        .switches
        .iter()
        .all(|s| s.state == HealthState::Healthy && s.undelivered() == 0));
    // Samples actually landed in the merged store.
    assert!(run.outcome.store.total_samples() > 0);
    let report = render_report(&run);
    assert!(report.contains("5/5 switches included"));
    // The correlation checks are statistical and need the full-size
    // campaign's sample counts; this tiny fleet asserts the structural
    // ones (coverage and accounting) pass.
    assert!(report.contains("[ok] fault-free fleet has full coverage"));
    assert!(report.contains("[ok] every produced batch lands in exactly one coverage column"));
}

#[test]
fn all_flaky_fleet_is_quarantined_excluded_and_accounted() {
    // flaky_rate 1.0 deals every switch the flaky profile: degradation
    // signals on every round drive each lane Healthy → Degraded →
    // Quarantined, and every produced batch must still be accounted.
    let spec = tiny(4, 1.0);
    let run = run_fleet_spec_on(2, &spec);
    let cov = &run.outcome.coverage;
    assert!(run.switches.iter().all(|m| m.flaky));
    assert_eq!(cov.included(), 0);
    for s in &cov.switches {
        assert_eq!(s.state, HealthState::Quarantined);
        assert!(
            s.excluded > 0,
            "quarantined rounds are accounted as excluded"
        );
        assert_eq!(
            s.produced,
            s.stored + s.excluded + s.refused + s.undelivered(),
            "coverage columns tile produced exactly"
        );
    }
    assert!(cov.sample_fraction() < 1.0);
    let text = cov.to_string();
    assert!(text.contains("0/4 switches included"));
    assert!(text.contains("quarantined"));
}
