//! # uburst-core — the high-resolution counter collection framework
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§4.1): a framework that polls switch ASIC counters at 10s–100s of
//! microseconds with minimal impact on switch operation. It provides:
//!
//! * [`poller`] — the best-effort sampling loop, run on a modeled switch CPU
//!   inside the simulation, paying real (simulated) time per counter read
//!   and suffering kernel-jitter-induced missed intervals; failed reads are
//!   retried with bounded exponential backoff and narrow counters are
//!   wrap-decoded to full width;
//! * [`degrade`] — the adaptive controller that sheds counters or stretches
//!   the interval when the loop cannot keep up, and recovers when it can;
//! * [`errors`] — typed [`PollError`] / [`CollectorError`] values for every
//!   configuration and runtime failure the pipeline can surface;
//! * [`spec`] — measurement campaigns and the dedicated vs. shared core
//!   timing model;
//! * [`tuning`] — automated minimum-interval search at a target sampling
//!   loss (the paper's manual Table 1 procedure);
//! * [`batch`] / [`output`] — sample batching toward the collector, with
//!   block/drop-oldest/drop-newest shipping policies and per-source loss
//!   accounting;
//! * [`channel`] — the in-repo bounded MPMC channel the shipping path and
//!   collector share;
//! * [`collector`] / [`store`] — the (actually multithreaded) collector
//!   service — supervised workers that contain and survive panics — and its
//!   sample store, which quarantines malformed batches and exports CSV;
//! * [`series`] — timestamped cumulative-counter series, wrap-aware
//!   decoding, and the delta-to-rate/utilization conversions the analyses
//!   build on;
//! * [`ship`] / [`link`] — sequence-numbered batch shipping with
//!   ack/retransmit over a seeded lossy-link model, and the per-source
//!   gap ledger that distinguishes "no burst" from "no data";
//! * [`wal`] / [`segment`] — the crash-safe persistence tier: append-only
//!   CRC-framed segment files, fsync-policy-gated acks, and torn-tail
//!   recovery back into the store;
//! * [`failpoint`] — deterministic byte-granular crash injection
//!   ([`TornStorage`], [`CrashPlan`], [`RegionCrashPlan`]) driving the
//!   durability and failover test suites;
//! * [`fleet`] — the fleet aggregation tier: WAL-backed regional
//!   aggregators with per-switch health tracking, coverage ledgers,
//!   rendezvous re-sharding around aggregator crashes, and WAL-replay
//!   recovery into the global store.
//!
//! ## End-to-end shape
//!
//! ```text
//! Switch (uburst-sim) ──writes──► AsicCounters (uburst-asic)
//!                                     ▲ reads (AccessModel cost, faults)
//!                               Poller (this crate, simulated CPU)
//!                                     │ Batcher + ShipPolicy
//!                                     ▼
//!                      bounded channel ──► supervised Collector ──► SampleStore
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod collector;
pub mod degrade;
pub mod errors;
pub mod failpoint;
pub mod fleet;
pub mod link;
pub mod output;
pub mod poller;
pub mod segment;
pub mod series;
pub mod ship;
pub mod spec;
pub mod store;
pub mod tuning;
pub mod wal;

pub use batch::{Batch, BatchPolicy, Batcher, SourceId};
pub use collector::{Collector, CollectorHealth, CollectorReport};
pub use degrade::{DegradationController, DegradationPolicy, DegradeMode};
pub use errors::{CollectorError, PollError, ShipError, WalError};
pub use failpoint::{crash_error, is_injected_crash, CrashPlan, RegionCrashPlan, TornStorage};
pub use fleet::{
    rendezvous_region, run_fleet, run_fleet_with_crashes, CoverageLedger, FleetConfig,
    FleetOutcome, HealthPolicy, HealthState, RegionStats, RoundInput, SwitchCoverage, SwitchStream,
};
pub use link::{LinkPlan, LinkStats, LossyLink};
pub use output::{ChannelSink, MemorySink, SampleOutput, ShipPolicy};
pub use poller::{Poller, PollerStats, RetryPolicy};
pub use series::{RateSample, Series, UtilSample, WrapDecoder};
pub use ship::{AckMsg, GapLedger, SeqBatch, Shipper, ShipperConfig, ShipperStats};
pub use spec::{CampaignConfig, CoreMode};
pub use store::{
    counter_label, parse_counter_label, GatePolicy, QuarantineReason, SampleStore, SeqIngest,
    SeriesKey, StoreStats,
};
pub use tuning::{
    probe_loss_profile, probe_miss_fraction, tune_min_interval, TuningConfig, TuningResult,
};
pub use wal::{
    DirStorage, DurableStore, FsyncPolicy, MemStorage, RecoveryReport, Wal, WalConfig, WalStorage,
};
