//! Crash-offset sweep for the regional aggregation tier.
//!
//! PR 3 proved the shipping protocol converges over a lossy link; PR 7
//! proved the WAL recovers exactly the acked prefix at every crash byte.
//! This suite composes both with the new failover machinery: a regional
//! aggregator dies at a byte-granular offset of its own WAL, its streams
//! **fail over** to a survivor that adopts each one at the shipper's
//! acked watermark ([`DurableStore::adopt_source`]), the dead region's
//! WAL is later replayed into the global store
//! ([`DurableStore::recover_replay`]), and the merged result must be
//! byte-identical to the run where nothing crashed.
//!
//! Two layers, both swept over ≥ 200 seeded crash offsets:
//!
//! * **Component**: shippers → lossy links → crashable aggregator A, with
//!   an explicit failover to aggregator B at the crash. Asserts the exact
//!   invariants (fsync-always): A recovers *exactly* its acked prefix;
//!   go-back-N resumes from each shipper's (possibly regressed) ack
//!   watermark with no stall and no loss; replaying both WALs into one
//!   global store reproduces the no-crash reference byte for byte.
//! * **Fleet**: [`run_fleet_with_crashes`] per region per offset. Asserts
//!   the coverage ledger tiles (`produced = stored + excluded + refused +
//!   undelivered`) at every offset, the no-acked-loss floor
//!   (`stored >= acked` per switch), crash/recovery/re-shard accounting,
//!   and full byte-identical convergence to the crash-free fleet.
//!
//! Everything is seeded and single-threaded; `UBURST_THREADS` cannot
//! touch it (the bench suite separately diffs fleet reports across
//! worker-pool widths).

use std::collections::BTreeMap;

use uburst::prelude::*;
use uburst::sim::node::PortId;

const SEED: u64 = 0x0FA1_70FF;
const SOURCES: u32 = 3;
const BATCHES_PER_SOURCE: u64 = 20;
const SAMPLES_PER_BATCH: u64 = 4;
/// Small segments so the sweep crosses rotation boundaries.
const SEGMENT_BYTES: usize = 512;
/// Acceptance bar: at least this many crash offsets per sweep.
const MIN_CRASH_POINTS: usize = 200;

fn wal_config() -> WalConfig {
    WalConfig {
        segment_max_bytes: SEGMENT_BYTES,
        fsync: FsyncPolicy::Always,
    }
}

fn link_plan() -> LinkPlan {
    LinkPlan {
        drop_p: 0.10,
        dup_p: 0.08,
        delay_p: 0.15,
        max_delay_ticks: 3,
    }
}

fn make_batch(source: u32, i: u64) -> Batch {
    let mut s = Series::new();
    for k in 0..SAMPLES_PER_BATCH {
        s.push(Nanos(1 + i * 100 + k), i * 10 + k);
    }
    Batch {
        source: SourceId(source),
        campaign: "failover".into(),
        counter: CounterId::TxBytes(PortId(source as u16)),
        samples: s,
    }
}

fn fresh_shippers() -> Vec<Shipper> {
    (0..SOURCES)
        .map(|src| {
            let mut sh = Shipper::new(
                SourceId(src),
                ShipperConfig {
                    window: 8,
                    rto_ticks: 4,
                    ..ShipperConfig::default()
                },
            );
            for i in 0..BATCHES_PER_SOURCE {
                sh.offer(make_batch(src, i)).expect("under outstanding cap");
            }
            sh
        })
        .collect()
}

/// Drives shippers → lossy link → aggregator → lossy ack link → shippers
/// until every batch is acked, or the aggregator's storage crashes.
/// `acked` records the highest ack the aggregator actually *issued* per
/// source — the durability promises outstanding when it dies (the ack
/// may still be lost on the wire before the shipper sees it).
///
/// Per-record ingest: under fsync-always this is the mode where "recovery
/// == acked prefix" is *exact* (a torn group can leave clean records
/// whose acks were withheld; PR 7's suite pins the containment story for
/// the grouped mode, and its byte-stream equivalence to this one).
fn run_session<S: uburst::telemetry::wal::WalStorage>(
    ds: &mut DurableStore<S>,
    shippers: &mut [Shipper],
    acked: &mut BTreeMap<SourceId, u64>,
    link_salt: u64,
) -> Result<(), WalError> {
    let mut data_link: LossyLink<SeqBatch> = LossyLink::new(link_plan(), SEED ^ link_salt);
    let mut ack_link: LossyLink<AckMsg> = LossyLink::new(link_plan(), SEED ^ link_salt ^ 1);
    for _tick in 0u64..100_000 {
        for sh in shippers.iter_mut() {
            for sb in sh.tick() {
                data_link.send(sb);
            }
        }
        for sb in data_link.tick() {
            let (_, ack) = ds.ingest(&sb)?;
            let best = acked.entry(ack.source).or_insert(0);
            *best = (*best).max(ack.cum);
            ack_link.send(ack);
        }
        for ack in ack_link.tick() {
            shippers[ack.source.0 as usize].on_ack(ack);
        }
        if shippers.iter().all(Shipper::done)
            && data_link.in_flight() == 0
            && ack_link.in_flight() == 0
        {
            return Ok(());
        }
    }
    panic!("session livelocked: shippers never drained");
}

/// The no-crash reference: one aggregator, full session, intact storage.
/// Returns the canonical CSV plus the WAL's byte layout (the crash plan's
/// coordinate system).
fn reference_run() -> (Vec<u8>, u64, Vec<u64>) {
    let mut ds = DurableStore::create(MemStorage::new(), wal_config()).expect("create");
    let mut shippers = fresh_shippers();
    let mut acked = BTreeMap::new();
    run_session(&mut ds, &mut shippers, &mut acked, 0).expect("no crash on intact storage");
    let mut csv = Vec::new();
    ds.store().export_csv(&mut csv).expect("export");
    let wal = ds.wal();
    (csv, wal.total_bytes(), wal.record_ends().to_vec())
}

/// Expected store content for a given acked prefix per source.
fn prefix_csv(prefix: &BTreeMap<SourceId, u64>) -> Vec<u8> {
    let store = SampleStore::new();
    for (&source, &n) in prefix {
        for i in 0..n {
            store
                .ingest(&make_batch(source.0, i))
                .expect("prefix batches are well-formed");
        }
    }
    let mut csv = Vec::new();
    store.export_csv(&mut csv).expect("export");
    csv
}

/// The component-level failover sweep — the satellite property test plus
/// the exact-recovery tentpole invariant, at every crash offset:
///
/// 1. aggregator A dies at the offset; recovery of its WAL is *exactly*
///    the prefix it acked (fsync-always), per source and in content;
/// 2. survivor B adopts each stream at the shipper's ack watermark — a
///    regression relative to everything sent — and plain go-back-N
///    retransmission converges with no stall, no loss, no double-count;
/// 3. replaying both regions' WALs into one global store reproduces the
///    no-crash reference byte for byte (B's log re-derives its adoption
///    points from the sequence jumps).
#[test]
fn failover_sweep_recovers_acked_prefix_and_converges() {
    let (reference_csv, total_bytes, record_ends) = reference_run();
    assert!(
        total_bytes as usize > 4 * SEGMENT_BYTES,
        "stream too small ({total_bytes} B) to cross segment boundaries"
    );
    let plan = CrashPlan::sweep(SEED, total_bytes, &record_ends, MIN_CRASH_POINTS);
    assert!(
        plan.len() >= MIN_CRASH_POINTS,
        "sweep has only {} crash points",
        plan.len()
    );

    let mut adoptions_seen = 0u64;
    let mut regressions_seen = 0usize;
    for &budget in plan.offsets() {
        // ---- Phase 1: session against A until the injected crash ------
        let a_disk = MemStorage::new();
        let mut shippers = fresh_shippers();
        let mut acked_at_a: BTreeMap<SourceId, u64> = BTreeMap::new();
        let crashed =
            match DurableStore::create(TornStorage::new(a_disk.clone(), budget), wal_config()) {
                Ok(mut ds) => run_session(&mut ds, &mut shippers, &mut acked_at_a, 0).is_err(),
                Err(e) => {
                    assert!(e.is_injected_crash(), "unexpected real error: {e}");
                    true
                }
            };
        assert!(crashed, "budget {budget} < {total_bytes} must crash A");

        // ---- Exact acked prefix out of A's WAL ------------------------
        // The global store is what downstream figures read; A's replay is
        // its only source for the crashed region's data.
        let global = SampleStore::new();
        let (_a_rec, a_report) =
            DurableStore::recover_replay(a_disk.clone(), wal_config(), &mut |sb: &SeqBatch| {
                global.ingest_seq(sb).expect("replayed records are clean");
            })
            .expect("recovery never fails on torn storage");
        assert_eq!(a_report.duplicates, 0, "the log never holds a seq twice");
        assert_eq!(a_report.adoptions, 0, "A owned every stream from seq 0");
        for src in 0..SOURCES {
            let source = SourceId(src);
            // Under fsync-always each stored record was synced (and its
            // ack releasable) before the next: the durable prefix IS the
            // ack watermark A reached.
            assert_eq!(
                global.contiguous(source),
                acked_at_a.get(&source).copied().unwrap_or(0),
                "crash@{budget}: recovered global store != A's acked prefix for {source:?}"
            );
        }
        let mut global_csv = Vec::new();
        global.export_csv(&mut global_csv).expect("export");
        assert_eq!(
            global_csv,
            prefix_csv(&acked_at_a),
            "crash@{budget}: recovered content is not the acked prefix"
        );

        // ---- Phase 2: failover to survivor B --------------------------
        // The shipper's view can lag A's durable watermark (acks were
        // lost on the wire): that is the ack-watermark regression the
        // satellite property is about. B adopts at the *shipper's* view,
        // go-back-N resends everything above it, dedup absorbs overlap
        // with what A already durably holds.
        let b_disk = MemStorage::new();
        let mut b = DurableStore::create(b_disk.clone(), wal_config()).expect("create B");
        for sh in shippers.iter() {
            let base = sh.cum_acked();
            if base < acked_at_a.get(&sh.source()).copied().unwrap_or(0) {
                regressions_seen += 1;
            }
            b.adopt_source(sh.source(), base);
        }
        let mut acked_at_b = BTreeMap::new();
        run_session(&mut b, &mut shippers, &mut acked_at_b, 0xFA11_0F34)
            .expect("no second crash on intact storage");
        for sh in &shippers {
            assert_eq!(
                b.store().contiguous(sh.source()),
                BATCHES_PER_SOURCE,
                "crash@{budget}: B did not converge for {:?}",
                sh.source()
            );
        }

        // ---- Merge: both WALs replayed into the global store ----------
        let (_b_rec, b_report) =
            DurableStore::recover_replay(b_disk.clone(), wal_config(), &mut |sb: &SeqBatch| {
                global.ingest_seq(sb).expect("replayed records are clean");
            })
            .expect("B's recovery");
        adoptions_seen += b_report.adoptions;
        let mut merged_csv = Vec::new();
        global.export_csv(&mut merged_csv).expect("export");
        assert_eq!(
            merged_csv, reference_csv,
            "crash@{budget}: merged failover run != no-crash reference"
        );
        // Ledger tiles: with the shippers' watermarks announced, received
        // + missing covers the assigned range exactly — and nothing is
        // missing after convergence.
        for sh in &shippers {
            global.note_watermark(sh.source(), sh.next_seq());
        }
        let ledger = global.ledger();
        for sh in &shippers {
            let source = sh.source();
            assert_eq!(
                ledger.received_count(source),
                BATCHES_PER_SOURCE,
                "crash@{budget}: ledger not full for {source:?}"
            );
            assert!(
                ledger.gaps(source).is_empty(),
                "crash@{budget}: gaps after convergence for {source:?}"
            );
        }
    }
    assert!(
        adoptions_seen > 0,
        "the sweep never exercised adoption-point re-derivation from B's log"
    );
    assert!(
        regressions_seen > 0,
        "the sweep never produced an ack-watermark regression — lossy ack \
         path is not doing its job"
    );
}

// ---------------------------------------------------------------------
// Fleet-level sweep
// ---------------------------------------------------------------------

const FLEET_SWITCHES: u32 = 4;
const FLEET_ROUNDS: u32 = 10;

fn fleet_config() -> FleetConfig {
    FleetConfig {
        regions: 2,
        drain_rounds: 12,
        region_wal: WalConfig {
            segment_max_bytes: SEGMENT_BYTES,
            fsync: FsyncPolicy::Always,
        },
        ..FleetConfig::default()
    }
}

fn fleet_streams() -> Vec<SwitchStream> {
    (0..FLEET_SWITCHES)
        .map(|src| {
            let rounds = (0..FLEET_ROUNDS)
                .map(|r| {
                    let mut s = Series::new();
                    for k in 0..SAMPLES_PER_BATCH {
                        s.push(Nanos(1 + r as u64 * 100 + k), r as u64 * 10 + k);
                    }
                    RoundInput {
                        batches: vec![Batch {
                            source: SourceId(src),
                            campaign: "fleet-failover".into(),
                            counter: CounterId::TxBytes(PortId(src as u16)),
                            samples: s,
                        }],
                        degraded: false,
                    }
                })
                .collect();
            SwitchStream {
                source: SourceId(src),
                link: LinkPlan::IDEAL,
                link_seed: SEED ^ src as u64,
                rounds,
            }
        })
        .collect()
}

/// The fleet-level crash-offset sweep: for every region, ≥ 200 byte
/// offsets across its reference WAL stream. At every offset the coverage
/// ledger must tile, no acked batch may be lost, the crash must be fully
/// accounted (crash + recovery + re-shard round trip), and the final
/// store must be byte-identical to the crash-free fleet.
#[test]
fn fleet_crash_offset_sweep_tiles_and_converges() {
    let cfg = fleet_config();
    let reference = run_fleet(fleet_streams(), &cfg);
    let mut reference_csv = Vec::new();
    reference
        .store
        .export_csv(&mut reference_csv)
        .expect("export");
    assert_eq!(reference.coverage.sample_fraction(), 1.0);
    assert!(
        reference.regions.iter().all(|r| r.switches > 0),
        "rendezvous homed switches on both regions (else the sweep is vacuous)"
    );

    for region in 0..cfg.regions {
        let wal_bytes = reference.regions[region].wal_bytes;
        let plan = CrashPlan::sweep(
            SEED ^ region as u64,
            wal_bytes,
            &reference.region_record_ends[region],
            MIN_CRASH_POINTS,
        );
        assert!(
            plan.len() >= MIN_CRASH_POINTS,
            "region {region}: sweep has only {} offsets",
            plan.len()
        );
        for crash in RegionCrashPlan::sweep_region(region, &plan) {
            let offset = crash.budget(region).unwrap();
            let out = run_fleet_with_crashes(fleet_streams(), &cfg, &crash);

            // Crash fully accounted: it happened, it recovered, and the
            // victim's switches made a re-shard round trip.
            assert_eq!(
                out.regions[region].crashes, 1,
                "region {region} crash@{offset}: no crash recorded"
            );
            assert_eq!(
                out.regions[region].recoveries, 1,
                "region {region} crash@{offset}: no recovery"
            );
            assert_eq!(out.regions[1 - region].crashes, 0);
            assert!(
                out.coverage.resharded() > 0,
                "region {region} crash@{offset}: nobody re-sharded"
            );

            // The ledger tiles and never loses acked data — at every
            // single offset.
            for s in &out.coverage.switches {
                assert_eq!(
                    s.produced,
                    s.stored + s.excluded + s.refused + s.undelivered(),
                    "region {region} crash@{offset}: ledger does not tile for switch {}",
                    s.source.0
                );
                assert!(
                    s.stored >= s.acked,
                    "region {region} crash@{offset}: switch {} lost acked data \
                     (stored {} < acked {})",
                    s.source.0,
                    s.stored,
                    s.acked
                );
            }

            // Full convergence: the crash is invisible in the data.
            assert_eq!(
                out.coverage.sample_fraction(),
                1.0,
                "region {region} crash@{offset}: coverage not full"
            );
            let mut csv = Vec::new();
            out.store.export_csv(&mut csv).expect("export");
            assert_eq!(
                csv, reference_csv,
                "region {region} crash@{offset}: store != crash-free reference"
            );
        }
    }
}

/// Concurrent two-region crash sweep: both aggregators die in the same
/// run, at independently swept WAL offsets. `RegionCrashPlan` always
/// carried per-region budgets, but every sweep above kills one region at
/// a time — this is the both-at-once matrix. With no survivor to fail
/// over to while both are down, switches can spend rounds with nowhere
/// to ship; the health policy quarantines them and their batches land in
/// the ledger's *excluded* column — a deliberate, accounted omission, so
/// full convergence is not achievable at every offset pair. What must
/// hold at **every** pair are the durability invariants: each region's
/// crash is fully accounted (crash + recovery), the coverage ledger
/// tiles, no acked batch is lost, and nothing is *silently* dropped —
/// every produced batch ends stored or explicitly excluded, never
/// undelivered. And the store must never *fabricate* data: everything it
/// holds at any offset pair is a subset of the crash-free reference, with
/// the quarantine machinery bounding how much a double outage can exclude
/// (a pair where nothing was excluded must be byte-identical).
#[test]
fn fleet_concurrent_two_region_crash_sweep_tiles() {
    // Both aggregators can be down at once, so shippers may spend whole
    // rounds with nowhere to land batches: give the drain phase more
    // rounds than the one-region sweeps need.
    let cfg = FleetConfig {
        drain_rounds: 40,
        ..fleet_config()
    };
    let reference = run_fleet(fleet_streams(), &cfg);
    let mut reference_csv = Vec::new();
    reference
        .store
        .export_csv(&mut reference_csv)
        .expect("export");

    // 15×15 offset pairs = 225 concurrent crashes ≥ MIN_CRASH_POINTS.
    let per_region = 15usize;
    let plans: Vec<CrashPlan> = (0..cfg.regions)
        .map(|region| {
            CrashPlan::sweep(
                SEED ^ 0xD0_0B1E ^ region as u64,
                reference.regions[region].wal_bytes,
                &reference.region_record_ends[region],
                per_region,
            )
        })
        .collect();
    let reference_lines: std::collections::BTreeSet<&str> = std::str::from_utf8(&reference_csv)
        .expect("csv utf8")
        .lines()
        .collect();
    let mut pairs = 0usize;
    for &o0 in plans[0].offsets().iter().take(per_region) {
        for &o1 in plans[1].offsets().iter().take(per_region) {
            pairs += 1;
            let crash = RegionCrashPlan::kill(0, o0).and_kill(1, o1);
            let out = run_fleet_with_crashes(fleet_streams(), &cfg, &crash);

            for region in 0..cfg.regions {
                assert_eq!(
                    out.regions[region].crashes, 1,
                    "crash@({o0},{o1}): region {region} crash not recorded"
                );
                assert_eq!(
                    out.regions[region].recoveries, 1,
                    "crash@({o0},{o1}): region {region} did not recover"
                );
            }
            let mut excluded = 0u64;
            for s in &out.coverage.switches {
                assert_eq!(
                    s.produced,
                    s.stored + s.excluded + s.refused + s.undelivered(),
                    "crash@({o0},{o1}): ledger does not tile for switch {}",
                    s.source.0
                );
                assert!(
                    s.stored >= s.acked,
                    "crash@({o0},{o1}): switch {} lost acked data (stored {} < acked {})",
                    s.source.0,
                    s.stored,
                    s.acked
                );
                // Silent loss is forbidden even with zero survivors: by
                // end of drain every batch is stored or in an explicit
                // exclusion column.
                assert_eq!(
                    s.undelivered(),
                    0,
                    "crash@({o0},{o1}): switch {} left batches undelivered",
                    s.source.0
                );
                excluded += s.excluded + s.refused;
            }

            // Quarantine bounds the damage: a double outage may cost each
            // switch a round or two, never the campaign.
            assert!(
                out.coverage.sample_fraction() >= 0.8,
                "crash@({o0},{o1}): double outage excluded too much \
                 (fraction {:.2})",
                out.coverage.sample_fraction()
            );

            // Whatever the store holds is genuine — a subset of the
            // crash-free reference, never replay-corrupted or duplicated.
            let mut csv = Vec::new();
            out.store.export_csv(&mut csv).expect("export");
            let csv = std::str::from_utf8(&csv).expect("csv utf8");
            for line in csv.lines() {
                assert!(
                    reference_lines.contains(line),
                    "crash@({o0},{o1}): store holds a line absent from the \
                     crash-free reference: {line:?}"
                );
            }
            // When no batch was deliberately excluded, both WALs' replay
            // must make the double crash invisible in the data.
            if excluded == 0 {
                assert_eq!(
                    csv.as_bytes(),
                    &reference_csv[..],
                    "crash@({o0},{o1}): store != crash-free reference"
                );
            }
        }
    }
    assert!(
        pairs >= MIN_CRASH_POINTS,
        "only {pairs} concurrent crash points"
    );
}

/// Crash runs are as deterministic as clean runs: the same plan twice
/// yields byte-identical coverage text and store content (the CI job
/// additionally diffs the full `ext_fleet` stdout across thread counts).
#[test]
fn fleet_crash_runs_are_deterministic() {
    let cfg = fleet_config();
    let reference = run_fleet(fleet_streams(), &cfg);
    let offset = reference.regions[0].wal_bytes / 3;
    let crash = RegionCrashPlan::kill(0, offset);
    let a = run_fleet_with_crashes(fleet_streams(), &cfg, &crash);
    let b = run_fleet_with_crashes(fleet_streams(), &cfg, &crash);
    assert_eq!(a.coverage.to_string(), b.coverage.to_string());
    let (mut csv_a, mut csv_b) = (Vec::new(), Vec::new());
    a.store.export_csv(&mut csv_a).expect("export");
    b.store.export_csv(&mut csv_b).expect("export");
    assert_eq!(csv_a, csv_b);
}
