//! Application message tags.
//!
//! The transport carries an opaque 64-bit tag end-to-end with each flow.
//! Workloads use it as a tiny application header: message kind, a request
//! group id (for scatter-gather matching), and a size field that lets a
//! requester dictate the responder's reply size without any shared state.
//!
//! Layout (most significant first): `kind:2 | group:22 | size:40`.

/// What a flow means to the receiving application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// "Please reply with `size` bytes; quote my `group` back."
    Request,
    /// A reply to a [`MsgKind::Request`] (group echoed).
    Response,
    /// One-way data (bulk transfer, coherency update, ...).
    Data,
}

const KIND_SHIFT: u32 = 62;
const GROUP_SHIFT: u32 = 40;
const GROUP_MASK: u64 = (1 << 22) - 1;
const SIZE_MASK: u64 = (1 << 40) - 1;

/// Packs a message tag.
///
/// # Panics
/// Panics if `size` exceeds 40 bits (~1 TB) — far beyond any sane flow.
pub fn encode(kind: MsgKind, group: u32, size: u64) -> u64 {
    assert!(size <= SIZE_MASK, "size field overflow: {size}");
    let k: u64 = match kind {
        MsgKind::Request => 0,
        MsgKind::Response => 1,
        MsgKind::Data => 2,
    };
    (k << KIND_SHIFT) | ((u64::from(group) & GROUP_MASK) << GROUP_SHIFT) | size
}

/// Unpacks a message tag. Unknown kind bits decode as [`MsgKind::Data`]
/// (forward compatibility beats a panic in a packet handler).
pub fn decode(tag: u64) -> (MsgKind, u32, u64) {
    let kind = match tag >> KIND_SHIFT {
        0 => MsgKind::Request,
        1 => MsgKind::Response,
        _ => MsgKind::Data,
    };
    let group = ((tag >> GROUP_SHIFT) & GROUP_MASK) as u32;
    let size = tag & SIZE_MASK;
    (kind, group, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for kind in [MsgKind::Request, MsgKind::Response, MsgKind::Data] {
            let tag = encode(kind, 123_456, 987_654_321);
            assert_eq!(decode(tag), (kind, 123_456, 987_654_321));
        }
    }

    #[test]
    fn group_wraps_at_22_bits() {
        let tag = encode(MsgKind::Request, u32::MAX, 1);
        let (_, g, _) = decode(tag);
        assert_eq!(g, GROUP_MASK as u32);
    }

    #[test]
    fn zero_tag_is_request() {
        assert_eq!(decode(0), (MsgKind::Request, 0, 0));
    }

    #[test]
    fn max_size_round_trips() {
        let tag = encode(MsgKind::Data, 0, SIZE_MASK);
        assert_eq!(decode(tag).2, SIZE_MASK);
    }

    #[test]
    #[should_panic(expected = "size field overflow")]
    fn oversize_panics() {
        encode(MsgKind::Data, 0, SIZE_MASK + 1);
    }
}
