//! Quickstart: measure one port of a Hadoop rack at 25 µs and report its
//! microbursts — the paper's core loop in ~60 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use uburst::prelude::*;

fn main() {
    // A rack of Hadoop servers behind a ToR in a Clos fabric, built
    // deterministically from a seed.
    let seed = 42;
    let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, seed));
    println!(
        "built a {} rack: {} servers, {} uplinks, seed {seed}",
        s.cfg.rack_type.name(),
        s.cfg.n_servers,
        s.uplink_ports().len(),
    );

    // Let slow-started flows reach steady state before measuring.
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);

    // Attach the collection framework: a single byte counter polled every
    // 25us from the switch CPU (the paper's highest-resolution campaign).
    let port = s.host_ports()[3];
    let span = Nanos::from_millis(200);
    let campaign =
        CampaignConfig::single("tx-bytes", CounterId::TxBytes(port), Nanos::from_micros(25));
    let poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, 7)
        .expect("valid campaign");
    let stop = warmup + span;
    let poller_id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));

    // Pull the samples out and do the paper's analysis.
    let stats = s.sim.node_mut::<Poller>(poller_id).stats();
    let series = &s
        .sim
        .node_mut::<Poller>(poller_id)
        .take_series()
        .expect("in-memory")[0]
        .1;
    let utils = series.utilization(s.server_link_bps());
    let bursts = extract_bursts(&utils, HOT_THRESHOLD);

    println!(
        "campaign: {} samples over {span}, {:.2}% deadlines missed",
        stats.polls,
        stats.deadline_miss_fraction() * 100.0
    );
    let mean_util: f64 = utils.iter().map(|u| u.util).sum::<f64>() / utils.len() as f64;
    println!(
        "port {}: mean utilization {:.1}%, hot {:.1}% of periods, {} bursts",
        port.0,
        mean_util * 100.0,
        bursts.hot_fraction() * 100.0,
        bursts.bursts.len()
    );

    if !bursts.bursts.is_empty() {
        let durations: Vec<f64> = bursts
            .durations()
            .iter()
            .map(|d| d.as_micros_f64())
            .collect();
        let ecdf = Ecdf::new(durations);
        println!(
            "burst durations: p50 {:.0}us  p90 {:.0}us  max {:.0}us",
            ecdf.quantile(0.5),
            ecdf.quantile(0.9),
            ecdf.max()
        );
        let longest = bursts
            .bursts
            .iter()
            .max_by_key(|b| b.duration())
            .expect("non-empty");
        println!(
            "longest burst: {} spanning {} samples starting at {}",
            longest.duration(),
            longest.samples,
            longest.start
        );
    }

    // The Markov view (Table 2): how much more likely is a hot period
    // right after another hot period?
    let chain = hot_chain(&utils, HOT_THRESHOLD);
    let m = fit_transition_matrix(&chain);
    println!(
        "burst Markov model: p(1|0) = {:.4}, p(1|1) = {:.3}, likelihood ratio r = {:.1}",
        m.p01,
        m.p11,
        m.likelihood_ratio()
    );
}
