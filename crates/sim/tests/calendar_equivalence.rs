//! Property test: the calendar-queue [`EventQueue`] is observably
//! equivalent to the reference binary heap it replaced.
//!
//! The reference model is a `BinaryHeap` over `(time, seq)` — exactly the
//! structure the simulator used before the calendar queue. Both structures
//! are driven through long, seeded, randomized schedules (time ties,
//! zero-delay re-scheduling mid-drain, far-future overflow crossings,
//! horizon-bounded pops) and must produce identical event streams at every
//! step. Any divergence in pop order, horizon behaviour, or bookkeeping is
//! a determinism bug that would silently change every simulation result.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use uburst_sim::events::{EventKind, EventQueue};
use uburst_sim::node::NodeId;
use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

/// The pre-calendar reference: a heap of `(time, seq, token)` with
/// FIFO-within-time ordering via the sequence number.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    next_seq: u64,
}

impl HeapQueue {
    fn schedule(&mut self, time: Nanos, token: u64) {
        self.heap.push(Reverse((time.0, self.next_seq, token)));
        self.next_seq += 1;
    }

    fn pop_until(&mut self, until: Nanos) -> Option<(Nanos, u64)> {
        let &Reverse((t, _, token)) = self.heap.peek()?;
        if t > until.0 {
            return None;
        }
        self.heap.pop();
        Some((Nanos(t), token))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

fn timer(token: u64) -> EventKind {
    EventKind::Timer {
        node: NodeId(0),
        token,
    }
}

fn token_of(kind: &EventKind) -> u64 {
    match kind {
        EventKind::Timer { token, .. } => *token,
        other => panic!("only timers are scheduled here, got {other:?}"),
    }
}

/// Drives both queues through an identical randomized schedule and asserts
/// the popped streams match event-for-event.
fn run_equivalence(seed: u64, rounds: usize, max_step: u64) {
    let mut rng = Rng::new(seed);
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::default();
    let mut now = 0u64;
    let mut next_token = 0u64;
    let mut popped = 0u64;

    for round in 0..rounds {
        // A burst of schedules relative to `now`: mostly near-future (the
        // simulator's real mix), some at the current instant (ties and
        // mid-drain inserts), some far past the wheel span (overflow).
        let burst = rng.range(1, 40) as usize;
        for _ in 0..burst {
            let dt = if rng.chance(0.05) {
                rng.range(2_000_000, 3_000_000_000) // cross the overflow
            } else if rng.chance(0.15) {
                0 // exact tie with the current instant
            } else {
                rng.below(max_step)
            };
            let t = Nanos(now + dt);
            cal.schedule(t, timer(next_token));
            heap.schedule(t, next_token);
            next_token += 1;
        }
        assert_eq!(cal.len(), heap.len(), "round {round}: pending count");

        // Advance the horizon and drain both queues against it, sometimes
        // re-scheduling zero-delay work mid-drain (the activated-bucket
        // merge path).
        now += rng.below(max_step * 2) + 1;
        let horizon = Nanos(now);
        loop {
            let c = cal.pop_until(horizon);
            let h = heap.pop_until(horizon);
            match (c, h) {
                (None, None) => break,
                (Some(ce), Some((ht, htok))) => {
                    assert_eq!(ce.time, ht, "round {round}: pop time");
                    assert_eq!(token_of(&ce.kind), htok, "round {round}: pop order");
                    popped += 1;
                    if rng.chance(0.1) {
                        // Same-instant re-schedule while the bucket drains.
                        cal.schedule(ce.time, timer(next_token));
                        heap.schedule(ce.time, next_token);
                        next_token += 1;
                    }
                }
                (c, h) => panic!(
                    "round {round}: queues disagree at horizon {horizon:?}: \
                     calendar={c:?} heap={h:?}"
                ),
            }
        }
        // Horizon respected: nothing at or before `now` remains.
        if let Some(t) = cal.peek_time() {
            assert!(t > horizon, "round {round}: unpopped event at {t:?}");
        }
    }

    // Final full drain must agree too.
    loop {
        let c = cal.pop_until(Nanos::MAX);
        let h = heap.pop_until(Nanos::MAX);
        match (c, h) {
            (None, None) => break,
            (Some(ce), Some((ht, htok))) => {
                assert_eq!(ce.time, ht, "final drain time");
                assert_eq!(token_of(&ce.kind), htok, "final drain order");
                popped += 1;
            }
            (c, h) => panic!("final drain disagrees: calendar={c:?} heap={h:?}"),
        }
    }
    assert!(cal.is_empty());
    assert_eq!(popped, next_token, "every scheduled event popped once");
}

/// Drives the calendar through the *batched* consumption protocol the
/// simulator uses — [`EventQueue::pop_batch`] slices interleaved with
/// [`EventQueue::pop_if_before`] preemption probes — against the reference
/// heap popping one event at a time. "Handler" side effects are modeled by
/// re-scheduling work mid-slice at the fired event's instant or just after
/// it, which is exactly the pattern that makes naive bucket batching
/// unsound: the new event may have to fire *before* events still sitting
/// in the consumer's buffer.
fn run_batched_equivalence(seed: u64, rounds: usize, max_step: u64) {
    let mut rng = Rng::new(seed);
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::default();
    let mut now = 0u64;
    let mut next_token = 0u64;
    let mut popped = 0u64;
    let mut buf = Vec::new();

    let mut drain = |cal: &mut EventQueue,
                     heap: &mut HeapQueue,
                     rng: &mut Rng,
                     next_token: &mut u64,
                     popped: &mut u64,
                     horizon: Nanos,
                     round: usize| {
        loop {
            buf.clear();
            if cal.pop_batch(horizon, &mut buf) == 0 {
                break;
            }
            for &ev in &buf {
                // Preemption channel: anything scheduled mid-slice that
                // precedes the next buffered event must surface here.
                while let Some(pre) = cal.pop_if_before(ev.key()) {
                    let (ht, htok) = heap
                        .pop_until(horizon)
                        .unwrap_or_else(|| panic!("round {round}: heap lacks preempting event"));
                    assert_eq!(pre.time, ht, "round {round}: preempt time");
                    assert_eq!(token_of(&pre.kind), htok, "round {round}: preempt order");
                    *popped += 1;
                }
                let (ht, htok) = heap
                    .pop_until(horizon)
                    .unwrap_or_else(|| panic!("round {round}: heap exhausted early"));
                assert_eq!(ev.time, ht, "round {round}: batched pop time");
                assert_eq!(token_of(&ev.kind), htok, "round {round}: batched pop order");
                *popped += 1;
                // Handler side effect: same-instant or near-future schedule
                // while later events are still buffered.
                if rng.chance(0.2) {
                    let dt = if rng.chance(0.4) { 0 } else { rng.below(2_000) };
                    let t = Nanos(ev.time.0 + dt);
                    cal.schedule(t, timer(*next_token));
                    heap.schedule(t, *next_token);
                    *next_token += 1;
                }
            }
        }
        assert!(
            heap.pop_until(horizon).is_none(),
            "round {round}: batched drain left eligible events behind"
        );
    };

    for round in 0..rounds {
        let burst = rng.range(1, 40) as usize;
        for _ in 0..burst {
            let dt = if rng.chance(0.05) {
                rng.range(2_000_000, 3_000_000_000) // cross the overflow
            } else if rng.chance(0.15) {
                0
            } else {
                rng.below(max_step)
            };
            let t = Nanos(now + dt);
            cal.schedule(t, timer(next_token));
            heap.schedule(t, next_token);
            next_token += 1;
        }
        assert_eq!(cal.len(), heap.len(), "round {round}: pending count");

        now += rng.below(max_step * 2) + 1;
        drain(
            &mut cal,
            &mut heap,
            &mut rng,
            &mut next_token,
            &mut popped,
            Nanos(now),
            round,
        );
        if let Some(t) = cal.peek_time() {
            assert!(t > Nanos(now), "round {round}: unpopped event at {t:?}");
        }
    }

    drain(
        &mut cal,
        &mut heap,
        &mut rng,
        &mut next_token,
        &mut popped,
        Nanos::MAX,
        usize::MAX,
    );
    assert!(cal.is_empty());
    assert_eq!(popped, next_token, "every scheduled event popped once");
}

#[test]
fn equivalent_on_dense_near_future_mix() {
    // Steps within one wheel day: exercises bucket hashing and ties.
    run_equivalence(0xCA1E_0001, 400, 50_000);
}

#[test]
fn equivalent_on_sparse_multi_day_mix() {
    // Steps spanning several wheel days: exercises rotation + refill.
    run_equivalence(0xCA1E_0002, 200, 5_000_000);
}

#[test]
fn equivalent_on_microsecond_polling_cadence() {
    // The paper's workload shape: ~25 us deadlines with sub-us packet
    // events, across enough rounds to rotate the wheel many times.
    run_equivalence(0xCA1E_0003, 600, 25_000);
}

#[test]
fn equivalent_across_many_seeds() {
    for seed in 0..20u64 {
        run_equivalence(0x5EED_0000 + seed, 60, 300_000);
    }
}

#[test]
fn batched_drain_equivalent_on_dense_mix() {
    run_batched_equivalence(0xBA7C_0001, 400, 50_000);
}

#[test]
fn batched_drain_equivalent_on_sparse_multi_day_mix() {
    run_batched_equivalence(0xBA7C_0002, 200, 5_000_000);
}

#[test]
fn batched_drain_equivalent_on_polling_cadence() {
    run_batched_equivalence(0xBA7C_0003, 600, 25_000);
}

#[test]
fn batched_drain_equivalent_across_many_seeds() {
    for seed in 0..20u64 {
        run_batched_equivalence(0xBA7C_5EED + seed, 60, 300_000);
    }
}

#[test]
fn equivalent_on_sparse_one_event_per_run() {
    // The shape the hybrid fast-forward engine leaves behind: single events
    // separated by long empty-bucket runs (tens to thousands of buckets,
    // i.e. across many occupancy words), so almost every pop exercises the
    // summary-word skip in `find_next_occupied`. Gaps are co-prime-ish with
    // the 256 ns bucket width and 64-bucket word width to hit every
    // cursor/word alignment, including the wrapped same-word case.
    let mut rng = Rng::new(0x5BA5_0001);
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::default();
    let mut t = 0u64;
    let mut next_token = 0u64;
    for _ in 0..4_000 {
        // 1 bucket .. ~3,900 buckets (just under one wheel day), plus an
        // occasional overflow hop of several days.
        let gap = if rng.chance(0.02) {
            rng.range(1_048_576, 8_388_608)
        } else {
            rng.range(257, 1_000_000)
        };
        t += gap;
        cal.schedule(Nanos(t), timer(next_token));
        heap.schedule(Nanos(t), next_token);
        next_token += 1;
    }
    let mut popped = 0u64;
    loop {
        let c = cal.pop_until(Nanos::MAX);
        let h = heap.pop_until(Nanos::MAX);
        match (c, h) {
            (None, None) => break,
            (Some(ce), Some((ht, htok))) => {
                assert_eq!(ce.time, ht, "sparse drain time");
                assert_eq!(token_of(&ce.kind), htok, "sparse drain order");
                popped += 1;
            }
            (c, h) => panic!("sparse drain disagrees: calendar={c:?} heap={h:?}"),
        }
    }
    assert_eq!(popped, next_token);
    assert!(cal.is_empty());
}

#[test]
fn massed_ties_pop_in_schedule_order() {
    // Thousands of events at one instant must come back FIFO, matching the
    // heap's seq-tiebreak exactly.
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::default();
    let t = Nanos(123_456);
    for token in 0..5_000u64 {
        cal.schedule(t, timer(token));
        heap.schedule(t, token);
    }
    for _ in 0..5_000u64 {
        let ce = cal.pop_until(Nanos::MAX).expect("calendar has the event");
        let (ht, htok) = heap.pop_until(Nanos::MAX).expect("heap has the event");
        assert_eq!(ce.time, ht);
        assert_eq!(token_of(&ce.kind), htok);
    }
    assert!(cal.is_empty());
    assert_eq!(heap.len(), 0);
}
