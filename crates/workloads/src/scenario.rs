//! Canonical measured-rack scenarios.
//!
//! Every figure harness measures the same three rack setups (§4.2): a rack
//! of Web, Cache, or Hadoop servers behind one ToR in a Clos fabric, with
//! the rest of the data center played by remote endpoints. This module
//! builds those scenarios reproducibly from a seed.
//!
//! ## Scaling note (recorded in DESIGN.md)
//!
//! The production racks held ~48 servers on 10 G links behind 4×40 G
//! uplinks (~3:1 oversubscription). We scale the rack to 24 servers behind
//! 4×20 G uplinks — the same 3:1 oversubscription, the same 4-way ECMP
//! fan-out, and the same 2:1+ uplink/server speed ratio (one server flow
//! can never make an uplink hot by itself) — at half the event cost.

use std::rc::Rc;

use uburst_asic::AsicCounters;
use uburst_sim::link::LinkSpec;
use uburst_sim::nic::NicConfig;
use uburst_sim::node::{NodeId, PortId};
use uburst_sim::rng::Rng;
use uburst_sim::sim::Simulator;
use uburst_sim::time::Nanos;
use uburst_sim::topology::{ClosConfig, ClosHandles, RackSpec};
use uburst_sim::transport::TransportConfig;

use crate::cache::{contiguous_pods, CacheFrontendApp, CacheFrontendConfig};
use crate::diurnal;
use crate::hadoop::{HadoopApp, HadoopConfig};
use crate::host::{App, AppHost, IdleApp};
use crate::responder::{ResponderApp, ResponderConfig};
use crate::web::{SizeDist, UserGenApp, UserGenConfig, WebServerApp, WebServerConfig};

/// Which application the measured rack runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RackType {
    /// Interactive web servers (low utilization, uncorrelated, downlink
    /// bursts).
    Web,
    /// In-memory cache (scatter-gather correlation, uplink bursts).
    Cache,
    /// Offline bulk processing (high utilization, long bursts, fan-in).
    Hadoop,
}

impl RackType {
    /// All three measured rack types, in the paper's order.
    pub const ALL: [RackType; 3] = [RackType::Web, RackType::Cache, RackType::Hadoop];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RackType::Web => "Web",
            RackType::Cache => "Cache",
            RackType::Hadoop => "Hadoop",
        }
    }
}

/// Web-scenario tuning (rates are per web server at load 1.0 / peak hour).
#[derive(Debug, Clone)]
pub struct WebParams {
    /// User requests per second per web server.
    pub req_rate_per_server: f64,
    /// Cache subqueries per page.
    pub fanout: (usize, usize),
    /// Per-subquery cache response size.
    pub cache_resp: SizeDist,
    /// Page size returned to the user.
    pub page: SizeDist,
}

impl Default for WebParams {
    fn default() -> Self {
        WebParams {
            req_rate_per_server: 900.0,
            fanout: (6, 16),
            cache_resp: SizeDist {
                median: 2_600,
                sigma: 0.9,
                cap: 9_500,
            },
            page: SizeDist {
                median: 25_000,
                sigma: 0.7,
                cap: 300_000,
            },
        }
    }
}

/// Cache-scenario tuning.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Scatter-gather groups per second across all frontends.
    pub groups_per_s_total: f64,
    /// Servers per correlated pod.
    pub pod_size: usize,
    /// Probability a pod member is queried in a group.
    pub member_prob: f64,
    /// Per-shard response size.
    pub resp: SizeDist,
    /// Number of leader servers (receive coherency writes).
    pub n_leaders: usize,
    /// Coherency writes per second across all frontends.
    pub write_rate_total: f64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            groups_per_s_total: 2_200.0,
            pod_size: 4,
            member_prob: 0.9,
            resp: SizeDist {
                median: 35_000,
                sigma: 1.3,
                cap: 600_000,
            },
            n_leaders: 2,
            write_rate_total: 2_000.0,
        }
    }
}

/// Hadoop-scenario tuning.
#[derive(Debug, Clone)]
pub struct HadoopParams {
    /// Map-wave spacing.
    pub wave_period: Nanos,
    /// Per-host wave participation probability.
    pub join_prob: f64,
    /// Reducers per wave.
    pub reducers_per_wave: usize,
    /// Shuffle transfer size.
    pub transfer: SizeDist,
    /// Background transfers per second per host.
    pub background_rate_per_host: f64,
    /// Background transfer size.
    pub background: SizeDist,
}

impl Default for HadoopParams {
    fn default() -> Self {
        HadoopParams {
            wave_period: Nanos::from_micros(1_200),
            join_prob: 0.7,
            reducers_per_wave: 16,
            transfer: SizeDist {
                median: 60_000,
                sigma: 0.9,
                cap: 400_000,
            },
            background_rate_per_host: 2_600.0,
            background: SizeDist {
                median: 60_000,
                sigma: 0.9,
                cap: 400_000,
            },
        }
    }
}

impl HadoopParams {
    /// Analytic per-host offered rate in bytes/sec at `rate_factor`,
    /// mirroring how [`build_scenario`] rate-scales the app: the wave
    /// period is stretched by the factor and the background Poisson rate
    /// multiplied by it. See
    /// [`HadoopConfig::offered_bytes_per_sec`](crate::hadoop::HadoopConfig::offered_bytes_per_sec)
    /// for the closed form.
    pub fn offered_bytes_per_host(&self, rate_factor: f64) -> f64 {
        let wave = self.join_prob * rate_factor / self.wave_period.as_secs_f64()
            * self.transfer.mean_bytes();
        let background = self.background_rate_per_host * rate_factor * self.background.mean_bytes();
        wave + background
    }
}

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which app the measured rack runs.
    pub rack_type: RackType,
    /// Servers in the measured rack.
    pub n_servers: usize,
    /// Remote endpoints (users / frontends / cross-rack peers).
    pub n_remotes: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Load multiplier on all request/transfer rates.
    pub load: f64,
    /// Hour of day in [0, 24) for diurnal modulation.
    pub hour: f64,
    /// Web tuning (used when `rack_type == Web`).
    pub web: WebParams,
    /// Cache tuning.
    pub cache: CacheParams,
    /// Hadoop tuning.
    pub hadoop: HadoopParams,
    /// Fabric parameters.
    pub clos: ClosConfig,
    /// Transport tuning for every host.
    pub transport: TransportConfig,
    /// Optional NIC pacing rate in bits/sec for the rack's servers
    /// (`None` = unpaced TSO bursts, the production default the paper
    /// observed; the §7 pacing ablation sets this).
    pub nic_pace_bps: Option<u64>,
    /// Attach ASIC counter banks to the fabric tier too (the paper left
    /// other tiers to future work; the `ext_fabric_tier` experiment uses
    /// this).
    pub instrument_fabric: bool,
    /// Execution mode override: `Some(true)` forces hybrid fast-forward,
    /// `Some(false)` forces per-packet, `None` follows the `UBURST_HYBRID`
    /// environment default (see `uburst_sim::fastfwd`). Equivalence tests
    /// use this to run both modes in one process.
    pub hybrid: Option<bool>,
}

impl ScenarioConfig {
    /// The canonical configuration for a rack type, at peak hour, load 1.0.
    pub fn new(rack_type: RackType, seed: u64) -> Self {
        let clos = ClosConfig {
            // Scaled-down rack: see the module docs. 4×20G uplinks against
            // 24×10G servers = 3:1 oversubscription.
            uplink: LinkSpec::gbps(20.0, Nanos(1_000)),
            fabric_spine: LinkSpec::gbps(40.0, Nanos(1_000)),
            remote_link: LinkSpec::gbps(20.0, Nanos(2_000)),
            // The ToR buffer scales with the rack (production 12-16MB for
            // ~50 ports of 10-40G → ~1.5MB for our 28 ports) so incast
            // pressure produces the congestion discards the paper studies.
            tor_switch: uburst_sim::switch::SwitchConfig {
                ports: 0,
                buffer_bytes: 768 << 10, // 0.75 MiB
                policy: uburst_sim::bufpolicy::BufferPolicyCfg::dt(0.5),
                ecn_threshold: None,
            },
            ..ClosConfig::default()
        };
        ScenarioConfig {
            rack_type,
            n_servers: 24,
            n_remotes: 12,
            seed,
            load: 1.0,
            hour: 20.0,
            web: WebParams::default(),
            cache: CacheParams::default(),
            hadoop: HadoopParams::default(),
            clos,
            transport: TransportConfig::default(),
            nic_pace_bps: None,
            instrument_fabric: false,
            hybrid: None,
        }
    }

    /// The configuration for one switch (rack) of a fleet campaign.
    ///
    /// Rack types rotate Web/Cache/Hadoop across switch indices (a fleet
    /// is a mix, and the paper's cross-rack readouts compare app classes),
    /// the master seed is re-keyed per switch so racks draw independent
    /// workloads, and the fabric's ECMP seed is derived per rack via
    /// [`ClosConfig::for_fleet_rack`] so fleet-level balance figures see N
    /// independent hash draws. Pure in `(fleet_seed, switch_index)`.
    pub fn for_fleet_switch(fleet_seed: u64, switch_index: u32) -> Self {
        let rack_type = match switch_index % 3 {
            0 => RackType::Web,
            1 => RackType::Cache,
            _ => RackType::Hadoop,
        };
        let seed = fleet_seed ^ (switch_index as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        let mut cfg = ScenarioConfig::new(rack_type, seed);
        cfg.clos = cfg.clos.for_fleet_rack(fleet_seed, switch_index);
        cfg
    }

    /// Effective rate multiplier: load × diurnal factor for this app class.
    pub fn rate_factor(&self) -> f64 {
        let diurnal = match self.rack_type {
            RackType::Web | RackType::Cache => diurnal::interactive_factor(self.hour),
            RackType::Hadoop => diurnal::batch_factor(self.hour),
        };
        self.load * diurnal
    }
}

/// A built scenario, ready to attach pollers and run.
pub struct Scenario {
    /// The simulation (run it!).
    pub sim: Simulator,
    /// The configuration it was built from.
    pub cfg: ScenarioConfig,
    /// The measured rack's servers, in ToR port order.
    pub rack_hosts: Vec<NodeId>,
    /// Remote endpoints.
    pub remote_hosts: Vec<NodeId>,
    /// Clos node ids and port maps.
    pub handles: ClosHandles,
    /// The measured ToR's ASIC counters (poll these).
    pub counters: Rc<AsicCounters>,
    /// Fabric-tier counter banks, one per fabric switch (empty unless
    /// `instrument_fabric` was set).
    pub fabric_counters: Vec<Rc<AsicCounters>>,
}

impl Scenario {
    /// The measured ToR switch node.
    pub fn tor(&self) -> NodeId {
        self.handles.tors[0]
    }

    /// ToR ports facing the rack's servers (downlink direction = TX on
    /// these ports).
    pub fn host_ports(&self) -> &[PortId] {
        &self.handles.tor_host_ports[0]
    }

    /// ToR uplink ports.
    pub fn uplink_ports(&self) -> &[PortId] {
        &self.handles.tor_uplink_ports[0]
    }

    /// Server-link bits/sec (for downlink utilization conversion).
    pub fn server_link_bps(&self) -> u64 {
        self.handles.server_link.bandwidth_bps
    }

    /// Uplink bits/sec.
    pub fn uplink_bps(&self) -> u64 {
        self.handles.uplink.bandwidth_bps
    }

    /// How long to run before measuring: lets slow-started flows and wave
    /// schedules reach steady state.
    pub fn recommended_warmup(&self) -> Nanos {
        Nanos::from_millis(40)
    }
}

/// Builds a scenario. Hosts start staggered within the first 2 ms.
pub fn build_scenario(cfg: ScenarioConfig) -> Scenario {
    assert!(cfg.n_servers >= 4, "rack too small");
    assert!(cfg.n_remotes >= 2, "need remote endpoints");
    assert!(cfg.load > 0.0);
    // Pre-size the event calendar: each endpoint keeps a handful of
    // in-flight events (arrivals, tx-completions, timers) and load scales
    // the packet population roughly linearly. The estimate only has to be
    // the right order of magnitude to skip the heap's doubling phase.
    let endpoints = cfg.n_servers + cfg.n_remotes + cfg.clos.n_fabric + 1;
    let mut event_capacity = (endpoints * 64).next_power_of_two() * (1 + cfg.load as usize);
    if cfg.rack_type == RackType::Hadoop {
        // Hybrid fast-forward parks every queued frame in the calendar as
        // a pre-scheduled arrival, so the bulk rack's in-flight population
        // tracks its offered load rather than the wire. Size for one wave
        // period of analytically-offered frames across the rack.
        let per_host = cfg.hadoop.offered_bytes_per_host(cfg.rate_factor());
        let frames = per_host * cfg.n_servers as f64 * cfg.hadoop.wave_period.as_secs_f64()
            / f64::from(uburst_sim::packet::MTU_FRAME);
        event_capacity = event_capacity.max((frames.max(1.0) as usize).next_power_of_two());
    }
    let mut sim = Simulator::with_event_capacity(event_capacity);
    if let Some(hybrid) = cfg.hybrid {
        sim.set_hybrid(hybrid);
    }
    let mut rng = Rng::new(cfg.seed);

    // Spawn all hosts idle; install apps after ids exist.
    let spawn_idle = |sim: &mut Simulator, rng: &mut Rng, i: usize, nic: NicConfig| {
        AppHost::spawn(
            sim,
            Box::new(IdleApp),
            nic,
            cfg.transport,
            rng.next_u64(),
            Nanos::from_micros(1_000 + 37 * i as u64), // staggered starts
        )
    };
    let rack_nic = NicConfig {
        pace_bps: cfg.nic_pace_bps,
        ..NicConfig::default()
    };
    let rack_hosts: Vec<NodeId> = (0..cfg.n_servers)
        .map(|i| spawn_idle(&mut sim, &mut rng, i, rack_nic))
        .collect();
    let remote_hosts: Vec<NodeId> = (0..cfg.n_remotes)
        .map(|i| spawn_idle(&mut sim, &mut rng, cfg.n_servers + i, NicConfig::default()))
        .collect();

    let counters = AsicCounters::new_shared(cfg.n_servers + cfg.clos.n_fabric);
    let fabric_counters: Vec<Rc<AsicCounters>> = if cfg.instrument_fabric {
        (0..cfg.clos.n_fabric)
            .map(|_| AsicCounters::new_shared(2)) // port 0 = rack, port 1 = spine
            .collect()
    } else {
        Vec::new()
    };
    let fabric_sinks: Vec<uburst_sim::counters::SharedSink> = fabric_counters
        .iter()
        .map(|c| c.clone() as uburst_sim::counters::SharedSink)
        .collect();
    let handles = uburst_sim::topology::build_clos_with_core_sinks(
        &mut sim,
        &cfg.clos,
        vec![RackSpec {
            hosts: rack_hosts.clone(),
            sink: counters.clone(),
        }],
        &remote_hosts,
        &fabric_sinks,
    );

    let factor = cfg.rate_factor();
    install_apps(&mut sim, &cfg, factor, &rack_hosts, &remote_hosts, &mut rng);

    Scenario {
        sim,
        cfg,
        rack_hosts,
        remote_hosts,
        handles,
        counters,
        fabric_counters,
    }
}

fn install_apps(
    sim: &mut Simulator,
    cfg: &ScenarioConfig,
    factor: f64,
    rack: &[NodeId],
    remotes: &[NodeId],
    rng: &mut Rng,
) {
    let set = |sim: &mut Simulator, host: NodeId, app: Box<dyn App>| {
        sim.node_mut::<AppHost>(host).set_app(app);
    };
    match cfg.rack_type {
        RackType::Web => {
            // Remotes split: two thirds cache tier, one third users. More
            // cache-tier nodes spread the fan-in sources, which keeps
            // same-page responses from serializing behind one remote NIC.
            let split = remotes.len() * 2 / 3;
            let (cache_tier, users) = remotes.split_at(split);
            for &h in rack {
                set(
                    sim,
                    h,
                    Box::new(WebServerApp::new(WebServerConfig {
                        cache_nodes: cache_tier.to_vec(),
                        fanout: cfg.web.fanout,
                        cache_resp: cfg.web.cache_resp,
                        ..WebServerConfig::default()
                    })),
                );
            }
            for &h in cache_tier {
                // Moderate hit clustering plus a wide miss tail: a page's
                // fast responses arrive as a small coherent clump (the 1-2
                // sampling-period Web bursts), the rest smear out.
                set(
                    sim,
                    h,
                    Box::new(ResponderApp::new(ResponderConfig {
                        hit_prob: 0.6,
                        hit_median: uburst_sim::time::Nanos::from_micros(120),
                        hit_sigma: 0.45,
                        miss_median: uburst_sim::time::Nanos::from_micros(800),
                        miss_sigma: 1.1,
                    })),
                );
            }
            let total_rate = cfg.web.req_rate_per_server * rack.len() as f64 * factor;
            let per_user_node = total_rate / users.len() as f64;
            for &h in users {
                set(
                    sim,
                    h,
                    Box::new(UserGenApp::new(UserGenConfig {
                        web_nodes: rack.to_vec(),
                        rate_per_s: per_user_node,
                        page: cfg.web.page,
                        train: (2, 5),
                        train_gap: uburst_sim::time::Nanos::from_micros(30),
                    })),
                );
            }
        }
        RackType::Cache => {
            for &h in rack {
                // Very tight hit path: a scatter-gather group's shards
                // answer near-simultaneously, which is what makes pod
                // members correlate and uplink trains overlap.
                set(
                    sim,
                    h,
                    Box::new(ResponderApp::new(ResponderConfig {
                        hit_prob: 0.85,
                        hit_median: uburst_sim::time::Nanos::from_micros(80),
                        hit_sigma: 0.3,
                        miss_median: uburst_sim::time::Nanos::from_micros(500),
                        miss_sigma: 0.8,
                    })),
                );
            }
            let pods = contiguous_pods(rack.len(), cfg.cache.pod_size);
            let leaders: Vec<usize> = (0..cfg.cache.n_leaders.min(rack.len())).collect();
            let per_frontend = cfg.cache.groups_per_s_total * factor / remotes.len() as f64;
            let write_per_frontend = cfg.cache.write_rate_total * factor / remotes.len() as f64;
            for &h in remotes {
                set(
                    sim,
                    h,
                    Box::new(CacheFrontendApp::new(CacheFrontendConfig {
                        cache_nodes: rack.to_vec(),
                        pods: pods.clone(),
                        rate_per_s: per_frontend,
                        member_prob: cfg.cache.member_prob,
                        resp: cfg.cache.resp,
                        leaders: leaders.clone(),
                        write_rate_per_s: write_per_frontend,
                        train: (2, 6),
                        train_gap: uburst_sim::time::Nanos::from_micros(60),
                        ..CacheFrontendConfig::default()
                    })),
                );
            }
        }
        RackType::Hadoop => {
            // Rack hosts and half the remotes are workers in one job;
            // waves are rate-scaled by stretching the period.
            let period = Nanos::from_secs_f64(cfg.hadoop.wave_period.as_secs_f64() / factor);
            let schedule_seed = rng.next_u64();
            let (mappers_remote, other_remote) = remotes.split_at(remotes.len() / 2);
            let mk = |rack_nodes: Vec<NodeId>, remote_nodes: Vec<NodeId>| {
                Box::new(HadoopApp::new(HadoopConfig {
                    rack_nodes,
                    remote_nodes,
                    wave_period: period,
                    join_prob: cfg.hadoop.join_prob,
                    reducers_per_wave: cfg.hadoop.reducers_per_wave,
                    transfer: cfg.hadoop.transfer,
                    background_rate_per_s: cfg.hadoop.background_rate_per_host * factor,
                    background: cfg.hadoop.background,
                    background_remote_prob: 0.35,
                    remote_wave_prob: 0.2,
                    schedule_seed,
                }))
            };
            for &h in rack {
                set(sim, h, mk(rack.to_vec(), remotes.to_vec()));
            }
            for &h in mappers_remote {
                set(sim, h, mk(rack.to_vec(), other_remote.to_vec()));
            }
            // Remaining remotes just absorb cross-rack background traffic.
            for &h in other_remote {
                set(
                    sim,
                    h,
                    Box::new(ResponderApp::new(ResponderConfig::default())),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_asic::CounterId;
    use uburst_sim::switch::Switch;

    fn run_scenario(rack_type: RackType, seed: u64, millis: u64) -> Scenario {
        let mut s = build_scenario(ScenarioConfig::new(rack_type, seed));
        s.sim.run_until(Nanos::from_millis(millis));
        s
    }

    fn rack_tx_bytes(s: &Scenario) -> u64 {
        s.host_ports()
            .iter()
            .map(|&p| s.counters.read(CounterId::TxBytes(p)))
            .sum()
    }

    fn rack_rx_bytes(s: &Scenario) -> u64 {
        s.host_ports()
            .iter()
            .map(|&p| s.counters.read(CounterId::RxBytes(p)))
            .sum()
    }

    fn uplink_tx_bytes(s: &Scenario) -> u64 {
        s.uplink_ports()
            .iter()
            .map(|&p| s.counters.read(CounterId::TxBytes(p)))
            .sum()
    }

    #[test]
    fn web_scenario_moves_traffic_and_routes_cleanly() {
        let s = run_scenario(RackType::Web, 1, 80);
        assert!(rack_tx_bytes(&s) > 1_000_000, "tor->server traffic");
        assert!(rack_rx_bytes(&s) > 1_000_000, "server->tor traffic");
        let tor_stats = s.sim.node::<Switch>(s.tor()).stats();
        assert_eq!(tor_stats.unroutable, 0);
    }

    #[test]
    fn cache_scenario_is_uplink_dominated() {
        let s = run_scenario(RackType::Cache, 2, 80);
        // Cache responses leave the rack: uplink TX (toward fabric) must
        // dwarf what comes down to the servers.
        let up = uplink_tx_bytes(&s);
        let down = rack_tx_bytes(&s);
        assert!(
            up > 2 * down,
            "cache should be uplink-heavy: up={up} down={down}"
        );
    }

    #[test]
    fn web_scenario_is_downlink_dominated() {
        let s = run_scenario(RackType::Web, 3, 80);
        let up = uplink_tx_bytes(&s);
        let down = rack_tx_bytes(&s);
        assert!(down > up, "web fan-in should dominate: up={up} down={down}");
    }

    #[test]
    fn hadoop_scenario_runs_hot() {
        let s = run_scenario(RackType::Hadoop, 4, 80);
        let total = rack_tx_bytes(&s) + rack_rx_bytes(&s);
        // 12 servers over ~80ms: hadoop should move tens of MB.
        assert!(total > 20_000_000, "hadoop moved only {total} bytes");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = run_scenario(RackType::Cache, 7, 40);
        let b = run_scenario(RackType::Cache, 7, 40);
        assert_eq!(rack_tx_bytes(&a), rack_tx_bytes(&b));
        assert_eq!(uplink_tx_bytes(&a), uplink_tx_bytes(&b));
        assert_eq!(a.sim.dispatched(), b.sim.dispatched());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(RackType::Web, 10, 40);
        let b = run_scenario(RackType::Web, 11, 40);
        assert_ne!(rack_tx_bytes(&a), rack_tx_bytes(&b));
    }

    #[test]
    fn off_peak_hour_reduces_interactive_load() {
        let mut peak = ScenarioConfig::new(RackType::Web, 5);
        peak.hour = 20.0;
        let mut trough = ScenarioConfig::new(RackType::Web, 5);
        trough.hour = 8.0;
        let mut sp = build_scenario(peak);
        let mut st = build_scenario(trough);
        sp.sim.run_until(Nanos::from_millis(60));
        st.sim.run_until(Nanos::from_millis(60));
        let bp = rack_rx_bytes(&sp) + rack_tx_bytes(&sp);
        let bt = rack_rx_bytes(&st) + rack_tx_bytes(&st);
        assert!(
            (bt as f64) < 0.85 * bp as f64,
            "trough {bt} should be well below peak {bp}"
        );
    }

    #[test]
    fn rack_type_metadata() {
        assert_eq!(RackType::ALL.len(), 3);
        assert_eq!(RackType::Web.name(), "Web");
        assert_eq!(RackType::Cache.name(), "Cache");
        assert_eq!(RackType::Hadoop.name(), "Hadoop");
    }

    #[test]
    fn fleet_switch_configs_rotate_and_derive_independently() {
        let a = ScenarioConfig::for_fleet_switch(1234, 0);
        let b = ScenarioConfig::for_fleet_switch(1234, 1);
        let c = ScenarioConfig::for_fleet_switch(1234, 2);
        assert_eq!(a.rack_type, RackType::Web);
        assert_eq!(b.rack_type, RackType::Cache);
        assert_eq!(c.rack_type, RackType::Hadoop);
        assert_ne!(a.seed, b.seed, "racks draw independent workloads");
        assert_ne!(
            a.clos.ecmp_seed, b.clos.ecmp_seed,
            "racks hash flows independently"
        );
        // Pure function of (fleet_seed, index).
        let a2 = ScenarioConfig::for_fleet_switch(1234, 0);
        assert_eq!(a.seed, a2.seed);
        assert_eq!(a.clos.ecmp_seed, a2.clos.ecmp_seed);
    }
}
