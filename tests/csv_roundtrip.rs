//! Property test: `export_csv` → `import_csv` is an exact roundtrip.
//!
//! The CSV dump is the repo's analogue of the paper's published raw-data
//! release — it must survive a round trip bit-for-bit. The cases the
//! format has historically been weakest on are covered explicitly: every
//! `CounterId` label shape (including the two-argument histogram labels,
//! whose commas sit inside the label's brackets), duplicate timestamps
//! within a series (legal in imported dumps, where merge order is file
//! order), seeded unsorted row order, and CRLF line endings.

use uburst::prelude::*;
use uburst::sim::node::PortId;
use uburst::telemetry::store::counter_label;

fn all_label_counters() -> Vec<CounterId> {
    vec![
        CounterId::RxBytes(PortId(0)),
        CounterId::RxPackets(PortId(7)),
        CounterId::TxBytes(PortId(31)),
        CounterId::TxPackets(PortId(2)),
        CounterId::Drops(PortId(15)),
        CounterId::RxSizeHist(PortId(3), 0),
        CounterId::RxSizeHist(PortId(3), 6),
        CounterId::TxSizeHist(PortId(9), 2),
        CounterId::BufferLevel,
        CounterId::BufferPeak,
    ]
}

/// xorshift-style scramble so rows arrive thoroughly unsorted without any
/// external RNG dependency in the test.
fn scramble(i: u64, salt: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// Builds a raw CSV exercising every label, unsorted timestamps, and —
/// for `dup_every > 0` — duplicated timestamps within a series.
fn build_dump(seed: u64, rows_per_series: u64, dup_every: u64) -> String {
    let mut csv = String::from("source,counter,timestamp_ns,value\n");
    for (ci, c) in all_label_counters().into_iter().enumerate() {
        let label = counter_label(c);
        for src in 0..2u32 {
            for i in 0..rows_per_series {
                let t = scramble(i, seed ^ ci as u64) % 10_000;
                csv.push_str(&format!("{src},{label},{t},{}\n", i * 3 + ci as u64));
                if dup_every > 0 && i % dup_every == 0 {
                    // Same timestamp, different value: a legal duplicate.
                    csv.push_str(&format!("{src},{label},{t},{}\n", 999_000 + i));
                }
            }
        }
    }
    csv
}

/// The property itself: once normalized by one import+export, further
/// roundtrips are byte-identical fixpoints.
fn assert_roundtrip_fixpoint(raw: &str) {
    let store = SampleStore::import_csv(std::io::Cursor::new(raw)).expect("import raw");
    let mut canonical = Vec::new();
    store.export_csv(&mut canonical).expect("export");
    let re = SampleStore::import_csv(std::io::Cursor::new(canonical.clone())).expect("re-import");
    let mut second = Vec::new();
    re.export_csv(&mut second).expect("re-export");
    assert_eq!(canonical, second, "export∘import is not a fixpoint");
    assert_eq!(store.total_samples(), re.total_samples());
    assert_eq!(store.keys(), re.keys());
}

#[test]
fn roundtrips_all_labels_unsorted() {
    for seed in [1, 42, 0xC0FFEE] {
        assert_roundtrip_fixpoint(&build_dump(seed, 50, 0));
    }
}

#[test]
fn roundtrips_duplicate_timestamps() {
    for seed in [7, 99] {
        let raw = build_dump(seed, 40, 5);
        // Sanity: the dump really does contain duplicate timestamps.
        let store = SampleStore::import_csv(std::io::Cursor::new(raw.as_str())).expect("import");
        let has_dup = store.keys().iter().any(|k| {
            let s = store.series(k.source, k.counter).expect("key exists");
            s.ts.windows(2).any(|w| w[0] == w[1])
        });
        assert!(has_dup, "test dump lost its duplicate timestamps");
        assert_roundtrip_fixpoint(&raw);
    }
}

#[test]
fn roundtrips_under_crlf() {
    let unix = build_dump(3, 25, 4);
    let windows = unix.replace('\n', "\r\n");
    let a = SampleStore::import_csv(std::io::Cursor::new(unix.as_str())).expect("LF import");
    let b = SampleStore::import_csv(std::io::Cursor::new(windows.as_str())).expect("CRLF import");
    let mut ea = Vec::new();
    let mut eb = Vec::new();
    a.export_csv(&mut ea).expect("export");
    b.export_csv(&mut eb).expect("export");
    assert_eq!(ea, eb, "CRLF dump must import identically to LF");
    assert_roundtrip_fixpoint(&windows);
}

#[test]
fn labels_are_comma_free_so_rows_always_have_four_columns() {
    // The rename guard: every label the exporter can emit must be free of
    // commas, or CSV rows would split into five columns and the histogram
    // counters could never roundtrip. The two-argument labels use ':'.
    for c in all_label_counters() {
        let label = counter_label(c);
        assert!(
            !label.contains(','),
            "label {label:?} contains a comma — it would corrupt CSV rows"
        );
    }
    let raw =
        "source,counter,timestamp_ns,value\n5,tx_size_hist[9:2],100,1\n5,tx_size_hist[9:2],200,2\n";
    let store = SampleStore::import_csv(std::io::Cursor::new(raw)).expect("import");
    let s = store
        .series(SourceId(5), CounterId::TxSizeHist(PortId(9), 2))
        .expect("histogram series");
    assert_eq!(s.ts, vec![100, 200]);
    assert_roundtrip_fixpoint(raw);
    // A pre-rename dump (comma inside the label) fails cleanly, not silently.
    let legacy = "source,counter,timestamp_ns,value\n5,tx_size_hist[9,2],100,1\n";
    assert!(SampleStore::import_csv(std::io::Cursor::new(legacy)).is_err());
}
