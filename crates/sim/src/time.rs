//! Simulated time.
//!
//! The simulator uses a single monotonically increasing clock measured in
//! integer nanoseconds. Nanosecond resolution is required because a 100 Gbps
//! port serializes a minimum-size packet in ~5 ns and the paper's sampling
//! intervals are in the 1–300 µs range; `u64` nanoseconds covers ~584 years
//! of simulated time, far beyond any campaign.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a span of simulated time, in nanoseconds.
///
/// `Nanos` is deliberately a single type for both instants and durations:
/// the simulator's arithmetic is simple enough that the extra ceremony of a
/// two-type scheme buys nothing, and counter timestamps are exported as raw
/// nanoseconds anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero — the simulation epoch and the empty span.
    pub const ZERO: Nanos = Nanos(0);
    /// Largest representable time; used as an "infinitely far" deadline.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Wraps a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }
    /// `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }
    /// `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }
    /// `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Converts a floating-point number of seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// This span expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// This span expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }
    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// True for the zero span / simulation epoch.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div<Nanos> for Nanos {
    /// How many whole `rhs` spans fit in `self`.
    type Output = u64;
    fn div(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanos {
    /// Human-oriented rendering that picks the most natural unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NEG_INFINITY), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(a * 2, Nanos(200));
        assert_eq!(a / 3, Nanos(33));
        assert_eq!(a / b, 3);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn round_trips() {
        let t = Nanos::from_micros(25);
        assert!((t.as_micros_f64() - 25.0).abs() < 1e-12);
        assert!((t.as_secs_f64() - 25e-6).abs() < 1e-15);
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos(25_000).to_string(), "25.000us");
        assert_eq!(Nanos(1_500_000).to_string(), "1.500ms");
        assert_eq!(Nanos(2_000_000_000).to_string(), "2.000s");
    }

    #[test]
    fn sum_and_minmax() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
        assert_eq!(Nanos(4).min(Nanos(9)), Nanos(4));
        assert_eq!(Nanos(4).max(Nanos(9)), Nanos(9));
    }
}
