//! Criterion benchmarks for the simulator: host time to simulate fixed
//! spans of each measured-rack scenario, and raw transport throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{build_scenario, RackType, ScenarioConfig};

fn bench_rack_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_20ms");
    g.sample_size(10);
    for rack_type in RackType::ALL {
        g.bench_function(rack_type.name(), |b| {
            b.iter(|| {
                let mut s = build_scenario(ScenarioConfig::new(rack_type, 9));
                s.sim.run_until(Nanos::from_millis(20));
                black_box(s.sim.dispatched())
            })
        });
    }
    g.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Events/second the DES core sustains on the heaviest scenario.
    let mut g = c.benchmark_group("event_rate");
    g.sample_size(10);
    // Pre-measure event count for throughput reporting.
    let events = {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    };
    g.throughput(Throughput::Elements(events));
    g.bench_function("hadoop_20ms_events", |b| {
        b.iter(|| {
            let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
            s.sim.run_until(Nanos::from_millis(20));
            black_box(s.sim.dispatched())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rack_scenarios, bench_event_rate);
criterion_main!(benches);
