//! # uburst-workloads — Web / Cache / Hadoop rack traffic models
//!
//! Generative models of the three application classes the paper measured
//! (§4.2), built on `uburst-sim`'s hosts and transport:
//!
//! * [`web`] — stateless, user-driven page assembly with cache fan-in:
//!   low utilization, uncorrelated servers, short downlink bursts;
//! * [`cache`] + [`responder`] — scatter-gather reads with leader/follower
//!   structure: correlated server pods, large responses, uplink bursts;
//! * [`hadoop`] — wave-structured bulk shuffle: high utilization, full-MTU
//!   packets, the longest bursts, reducer fan-in;
//! * [`diurnal`] — hour-of-day load modulation;
//! * [`scenario`] — the canonical measured-rack setups every figure
//!   harness uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod diurnal;
pub mod hadoop;
pub mod host;
pub mod responder;
pub mod scenario;
pub mod tags;
pub mod web;

pub use host::{App, AppHost, Env, IdleApp, Incoming, TOKEN_APP_START};
pub use scenario::{
    build_scenario, CacheParams, HadoopParams, RackType, Scenario, ScenarioConfig, WebParams,
};
