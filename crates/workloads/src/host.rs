//! Application hosts.
//!
//! [`AppHost`] is the one host node type every workload uses: it owns the
//! NIC, the transport endpoint, and a per-host RNG, and delegates
//! application behaviour to an [`App`]. Apps see the world through [`Env`],
//! which wraps flow sending, request/response helpers, timers, and
//! randomness.

use std::any::Any;

use uburst_sim::nic::{HostNic, NicConfig, NIC_PACE_TOKEN};
use uburst_sim::node::{Ctx, Node, NodeId, PortId};
use uburst_sim::packet::{FlowId, Packet};
use uburst_sim::rng::Rng;
use uburst_sim::sim::Simulator;
use uburst_sim::time::Nanos;
use uburst_sim::transport::{TransportConfig, TransportEndpoint, TransportEvent};

use crate::tags::{self, MsgKind};

/// Timer token that starts the app (scheduled by the scenario builder).
/// Bit 63 must be clear so it is not mistaken for a transport token.
pub const TOKEN_APP_START: u64 = 0x3FFF_FFFF_FFFF_FFF0;

/// Typical application-level request message size on the wire (HTTP-ish
/// headers / thrift envelope).
pub const REQUEST_BYTES: u64 = 330;

/// A flow that arrived for the application, pre-decoded.
#[derive(Debug, Clone, Copy)]
pub struct Incoming {
    /// The completed flow.
    pub flow: FlowId,
    /// Who sent it.
    pub src: NodeId,
    /// Application bytes delivered.
    pub bytes: u64,
    /// Decoded message kind.
    pub kind: MsgKind,
    /// Decoded request group.
    pub group: u32,
    /// Decoded size field (requested response size for `Request`s).
    pub size_field: u64,
}

/// Application behaviour plugged into an [`AppHost`].
pub trait App: Any {
    /// Called once at the app's start time.
    fn start(&mut self, env: &mut Env<'_, '_>);
    /// An application timer fired (tokens are the app's own).
    fn on_timer(&mut self, _env: &mut Env<'_, '_>, _token: u64) {}
    /// A complete incoming flow arrived.
    fn on_flow_received(&mut self, _env: &mut Env<'_, '_>, _msg: Incoming) {}
    /// A flow this host started was fully acknowledged.
    fn on_flow_sent(&mut self, _env: &mut Env<'_, '_>, _flow: FlowId, _tag: u64) {}
}

/// The world as one app sees it during a callback.
pub struct Env<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    nic: &'a mut HostNic,
    transport: &'a mut TransportEndpoint,
    /// The host's private random stream.
    pub rng: &'a mut Rng,
}

impl Env<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.ctx.now()
    }

    /// This host's node id.
    pub fn host(&self) -> NodeId {
        self.ctx.node()
    }

    /// Schedules an app timer.
    pub fn timer_in(&mut self, delay: Nanos, token: u64) {
        debug_assert!(
            !TransportEndpoint::owns_token(token) && token != NIC_PACE_TOKEN,
            "app token collides with infrastructure tokens"
        );
        self.ctx.timer_in(delay, token);
    }

    /// Starts a flow of `bytes` to `dst` carrying `tag`.
    pub fn send_flow(&mut self, dst: NodeId, bytes: u64, tag: u64) -> FlowId {
        self.transport
            .start_flow(self.ctx, self.nic, dst, bytes, tag)
    }

    /// Sends a one-way bulk transfer.
    pub fn send_data(&mut self, dst: NodeId, bytes: u64, group: u32) -> FlowId {
        self.send_flow(dst, bytes, tags::encode(MsgKind::Data, group, bytes))
    }

    /// Sends a request asking `dst` to reply with `resp_bytes`, stamped with
    /// `group` for scatter-gather matching.
    pub fn send_request(&mut self, dst: NodeId, resp_bytes: u64, group: u32) -> FlowId {
        self.send_request_sized(dst, REQUEST_BYTES, resp_bytes, group)
    }

    /// Like [`Env::send_request`] with an explicit request size (multigets
    /// carry their key lists, so request sizes vary too).
    pub fn send_request_sized(
        &mut self,
        dst: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
        group: u32,
    ) -> FlowId {
        self.send_flow(
            dst,
            req_bytes.max(1),
            tags::encode(MsgKind::Request, group, resp_bytes),
        )
    }

    /// Replies to a request: `resp_bytes` back to `dst`, echoing `group`.
    pub fn send_response(&mut self, dst: NodeId, resp_bytes: u64, group: u32) -> FlowId {
        self.send_flow(
            dst,
            resp_bytes.max(1),
            tags::encode(MsgKind::Response, group, resp_bytes),
        )
    }

    /// Transport diagnostics for this host.
    pub fn transport_stats(&self) -> uburst_sim::transport::TransportStats {
        self.transport.stats
    }
}

/// An app that does nothing. Used as a placeholder while a scenario is
/// being wired: hosts must exist before peer lists can be built, so
/// builders spawn hosts idle and install the real app with
/// [`AppHost::set_app`] before the start timer fires.
#[derive(Debug, Default)]
pub struct IdleApp;

impl App for IdleApp {
    fn start(&mut self, _env: &mut Env<'_, '_>) {}
}

/// A host node running one [`App`].
pub struct AppHost {
    nic: HostNic,
    transport: Option<TransportEndpoint>,
    rng: Rng,
    app: Box<dyn App>,
}

impl AppHost {
    /// Creates a host running `app`. The transport endpoint is bound to the
    /// real node id on first dispatch, via [`AppHost::spawn`].
    fn new(app: Box<dyn App>, nic_cfg: NicConfig, seed: u64) -> Self {
        AppHost {
            nic: HostNic::new(nic_cfg),
            transport: None,
            rng: Rng::new(seed),
            app,
        }
    }

    /// Adds a host to the simulation and schedules its app start at
    /// `start_at`. Returns the node id.
    pub fn spawn(
        sim: &mut Simulator,
        app: Box<dyn App>,
        nic_cfg: NicConfig,
        transport_cfg: TransportConfig,
        seed: u64,
        start_at: Nanos,
    ) -> NodeId {
        let host = AppHost::new(app, nic_cfg, seed);
        let id = sim.add_node(Box::new(host));
        sim.node_mut::<AppHost>(id).transport = Some(TransportEndpoint::new(id, transport_cfg));
        sim.schedule_timer(start_at, id, TOKEN_APP_START);
        id
    }

    /// The app, downcast to its concrete type.
    pub fn app<A: App>(&self) -> &A {
        (self.app.as_ref() as &dyn Any)
            .downcast_ref::<A>()
            .expect("app type mismatch")
    }

    /// Replaces the app. Must happen before the start timer fires (i.e.
    /// before the simulation reaches the host's `start_at`).
    pub fn set_app(&mut self, app: Box<dyn App>) {
        self.app = app;
    }

    /// Mutable access to the app (e.g. to finish configuration between
    /// spawn and the app's start time).
    pub fn app_mut<A: App>(&mut self) -> &mut A {
        (self.app.as_mut() as &mut dyn Any)
            .downcast_mut::<A>()
            .expect("app type mismatch")
    }

    /// Transport diagnostics.
    pub fn transport_stats(&self) -> uburst_sim::transport::TransportStats {
        self.transport.as_ref().map(|t| t.stats).unwrap_or_default()
    }

    /// NIC diagnostics: (sent packets, local drops).
    pub fn nic_stats(&self) -> (u64, u64) {
        (self.nic.sent, self.nic.dropped)
    }

    /// Flow-completion-time records of this host's finished outgoing flows.
    pub fn fcts(&self) -> &[uburst_sim::transport::FctRecord] {
        self.transport.as_ref().map(|t| t.fcts()).unwrap_or(&[])
    }

    fn with_env<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut dyn App, &mut Env<'_, '_>),
    {
        let AppHost {
            nic,
            transport,
            rng,
            app,
        } = self;
        let mut env = Env {
            ctx,
            nic,
            transport: transport.as_mut().expect("transport bound at spawn"),
            rng,
        };
        f(app.as_mut(), &mut env);
    }

    fn deliver_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<TransportEvent>) {
        for ev in events {
            match ev {
                TransportEvent::FlowReceived {
                    flow,
                    src,
                    bytes,
                    tag,
                } => {
                    let (kind, group, size_field) = tags::decode(tag);
                    let msg = Incoming {
                        flow,
                        src,
                        bytes,
                        kind,
                        group,
                        size_field,
                    };
                    self.with_env(ctx, |app, env| app.on_flow_received(env, msg));
                }
                TransportEvent::FlowSent { flow, tag } => {
                    self.with_env(ctx, |app, env| app.on_flow_sent(env, flow, tag));
                }
            }
        }
    }
}

impl Node for AppHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        let transport = self.transport.as_mut().expect("transport bound");
        let events = transport.on_packet(ctx, &mut self.nic, pkt);
        if !events.is_empty() {
            self.deliver_events(ctx, events);
        }
    }

    fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
        self.nic.on_tx_complete(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == NIC_PACE_TOKEN {
            self.nic.on_timer(ctx);
        } else if TransportEndpoint::owns_token(token) {
            let transport = self.transport.as_mut().expect("transport bound");
            transport.on_timer(ctx, &mut self.nic, token);
        } else if token == TOKEN_APP_START {
            self.with_env(ctx, |app, env| app.start(env));
        } else {
            self.with_env(ctx, |app, env| app.on_timer(env, token));
        }
    }

    fn settle_lazy(&mut self, now: Nanos) {
        self.nic.settle_to(now);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::link::LinkSpec;

    /// Pings a peer on start; records the echo.
    struct PingApp {
        peer: NodeId,
        got_response: bool,
        sent_acked: bool,
    }
    impl App for PingApp {
        fn start(&mut self, env: &mut Env<'_, '_>) {
            env.send_request(self.peer, 5_000, 7);
        }
        fn on_flow_received(&mut self, _env: &mut Env<'_, '_>, msg: Incoming) {
            assert_eq!(msg.kind, MsgKind::Response);
            assert_eq!(msg.group, 7);
            assert_eq!(msg.bytes, 5_000);
            self.got_response = true;
        }
        fn on_flow_sent(&mut self, _env: &mut Env<'_, '_>, _flow: FlowId, _tag: u64) {
            self.sent_acked = true;
        }
    }

    /// Echo server: answers any request with the asked-for bytes.
    struct EchoApp;
    impl App for EchoApp {
        fn start(&mut self, _env: &mut Env<'_, '_>) {}
        fn on_flow_received(&mut self, env: &mut Env<'_, '_>, msg: Incoming) {
            if msg.kind == MsgKind::Request {
                env.send_response(msg.src, msg.size_field, msg.group);
            }
        }
    }

    #[test]
    fn request_response_round_trip() {
        let mut sim = Simulator::new();
        // Spawn echo first so the pinger can name it.
        let echo = AppHost::spawn(
            &mut sim,
            Box::new(EchoApp),
            NicConfig::default(),
            TransportConfig::default(),
            1,
            Nanos::ZERO,
        );
        let ping = AppHost::spawn(
            &mut sim,
            Box::new(PingApp {
                peer: echo,
                got_response: false,
                sent_acked: false,
            }),
            NicConfig::default(),
            TransportConfig::default(),
            2,
            Nanos::from_micros(10),
        );
        sim.connect(
            (ping, PortId(0)),
            (echo, PortId(0)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
        sim.run_until(Nanos::from_millis(50));
        let app = sim.node::<AppHost>(ping).app::<PingApp>();
        assert!(app.got_response, "no response received");
        assert!(app.sent_acked, "request never acked");
        let (sent, dropped) = sim.node::<AppHost>(ping).nic_stats();
        assert!(sent > 0);
        assert_eq!(dropped, 0);
    }
}
