//! Pearson correlation (Fig. 1's corr coefficient, Fig. 8's heatmaps).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample has zero variance (a flat series is
/// uncorrelated with everything; this matches how heatmaps render idle
/// ports rather than propagating NaN).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty sample");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Full correlation matrix across several aligned series — the server ×
/// server heatmap of Fig. 8.
///
/// # Panics
/// Panics if series lengths differ.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = series.len();
    if k == 0 {
        return Vec::new();
    }
    let n = series[0].len();
    assert!(series.iter().all(|s| s.len() == n), "unaligned series");
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let r = pearson(&series[i], &series[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Mean of the off-diagonal entries — a scalar "how correlated is this
/// rack" summary used when comparing rack types.
pub fn mean_offdiagonal(matrix: &[Vec<f64>]) -> f64 {
    let k = matrix.len();
    if k < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v;
                cnt += 1;
            }
        }
    }
    sum / cnt as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_near_zero() {
        // Deterministic "independent" pair: orthogonal sinusoid samples.
        let n = 10_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        assert!(pearson(&x, &y).abs() < 0.02);
    }

    #[test]
    fn constant_series_gives_zero() {
        let x = vec![5.0, 5.0, 5.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let s = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 1.0, 2.0, 2.0],
        ];
        let m = correlation_matrix(&s);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_offdiagonal_summary() {
        let m = vec![vec![1.0, 0.5], vec![0.5, 1.0]];
        assert!((mean_offdiagonal(&m) - 0.5).abs() < 1e-12);
        assert_eq!(mean_offdiagonal(&[]), 0.0);
    }

    #[test]
    fn empty_matrix_ok() {
        assert!(correlation_matrix(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
