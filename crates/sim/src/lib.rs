//! # uburst-sim — packet-level data center network simulator
//!
//! The substrate for the IMC 2017 microburst reproduction: a deterministic
//! discrete-event simulator of the network environment the paper measured —
//! racks of hosts behind shared-buffer ToR switches in a Clos fabric, running
//! a window-based reliable transport.
//!
//! Design goals, in order: **determinism** (every run is reproducible from a
//! seed), **fidelity of the mechanisms that create microbursts** (fan-in,
//! shared-buffer dynamic thresholds, ECMP flow hashing, slow-start
//! overshoot, segmentation-offload bursts), and **speed** (tens of millions
//! of events per second, so second-scale rack simulations finish in
//! seconds).
//!
//! ## Layering
//!
//! * [`time`], [`rng`], [`events`] — the discrete-event core.
//! * [`node`], [`link`], [`sim`] — nodes, wiring, and the driver loop.
//! * [`packet`], [`transport`], [`nic`] — end-host behaviour.
//! * [`switch`], [`bufpolicy`], [`routing`], [`counters`] — the
//!   shared-buffer switch, its pluggable carving policies, and its
//!   counter-reporting hook (implemented by `uburst-asic`).
//! * [`topology`] — Clos construction.
//!
//! ## Example
//!
//! ```
//! use uburst_sim::prelude::*;
//!
//! let mut sim = Simulator::new();
//! // ... add hosts, build a Clos, schedule timers ...
//! sim.run_until(Nanos::from_millis(10));
//! assert_eq!(sim.now(), Nanos::from_millis(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bufpolicy;
pub mod counters;
pub mod events;
pub mod fastfwd;
pub mod fasthash;
pub mod link;
pub mod nic;
pub mod node;
pub mod packet;
pub mod rng;
pub mod routing;
pub mod sim;
pub mod switch;
pub mod time;
pub mod topology;
pub mod transport;

/// The names almost every user needs.
pub mod prelude {
    pub use crate::arena::{ArenaStats, PacketArena, PacketRef};
    pub use crate::bufpolicy::{
        BShare, BufferPolicy, BufferPolicyCfg, DynamicThreshold, FlexibleBuffering, StaticPartition,
    };
    pub use crate::counters::{null_sink, CounterSink, NullCounters, SharedSink};
    pub use crate::link::LinkSpec;
    pub use crate::nic::{HostNic, NicConfig, NIC_PACE_TOKEN};
    pub use crate::node::{Ctx, Node, NodeId, PortId};
    pub use crate::packet::{FlowId, Packet, PacketKind, ACK_BYTES, MSS, MTU_FRAME};
    pub use crate::rng::Rng;
    pub use crate::routing::{EcmpMode, Route, RoutingTable};
    pub use crate::sim::Simulator;
    pub use crate::switch::{Switch, SwitchConfig, SwitchStats};
    pub use crate::time::Nanos;
    pub use crate::topology::{build_clos, ClosConfig, ClosHandles, RackSpec};
    pub use crate::transport::{
        TransportConfig, TransportEndpoint, TransportEvent, TransportStats,
    };
}
