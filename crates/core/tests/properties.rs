//! Property-style tests for the collection framework's data-handling
//! invariants: nothing the poller records may be lost, reordered, or
//! double-counted on its way to the store — and narrow-counter wraps must
//! decode back to the true byte stream.
//!
//! Each test drives a seeded `Rng` through a fixed number of randomized
//! cases — deterministic across runs, no external dependencies.

use uburst_asic::{CounterId, FaultInjector, FaultPlan};
use uburst_core::batch::{BatchPolicy, Batcher, SourceId};
use uburst_core::poller::RetryPolicy;
use uburst_core::series::{Series, WrapDecoder};
use uburst_core::store::SampleStore;
use uburst_sim::node::PortId;
use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

const CASES: u64 = 48;

fn series_from(points: &[(u64, u64)]) -> Series {
    let mut s = Series::new();
    for &(t, v) in points {
        s.push(Nanos(t), v);
    }
    s
}

#[test]
fn batcher_conserves_every_sample() {
    let mut rng = Rng::new(0xc0_4e_01);
    for _ in 0..CASES {
        let n = rng.range(1, 500) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let max_samples = rng.range(1, 64) as usize;
        let max_age_us = rng.range(1, 10_000);
        let mut b = Batcher::new(
            SourceId(0),
            "prop",
            vec![CounterId::TxBytes(PortId(0))],
            BatchPolicy {
                max_samples,
                max_age: Nanos::from_micros(max_age_us),
            },
        );
        let mut collected: Vec<(u64, u64)> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let t = (i as u64 + 1) * 25_000;
            for batch in b.record(Nanos(t), &[v]) {
                for (bt, bv) in batch.samples.ts.iter().zip(&batch.samples.vs) {
                    collected.push((*bt, *bv));
                }
            }
        }
        for batch in b.flush() {
            for (bt, bv) in batch.samples.ts.iter().zip(&batch.samples.vs) {
                collected.push((*bt, *bv));
            }
        }
        // Exactly the recorded samples, in order.
        assert_eq!(collected.len(), values.len());
        for (i, &(t, v)) in collected.iter().enumerate() {
            assert_eq!(t, (i as u64 + 1) * 25_000);
            assert_eq!(v, values[i]);
        }
    }
}

#[test]
fn series_merge_is_a_sorted_union() {
    let mut rng = Rng::new(0xc0_4e_02);
    for _ in 0..CASES {
        // Build two disjointly-timestamped series (distinct by construction:
        // evens vs odds).
        let na = rng.below(100) as usize;
        let nb = rng.below(100) as usize;
        let pa: Vec<(u64, u64)> = {
            let mut ts: Vec<u64> = (0..na).map(|_| rng.below(1_000_000) * 2).collect();
            ts.sort_unstable();
            ts.dedup();
            ts.into_iter().map(|t| (t + 2, t)).collect()
        };
        let pb: Vec<(u64, u64)> = {
            let mut ts: Vec<u64> = (0..nb).map(|_| rng.below(1_000_000) * 2 + 1).collect();
            ts.sort_unstable();
            ts.dedup();
            ts.into_iter().map(|t| (t + 2, t)).collect()
        };
        let mut merged = series_from(&pa);
        merged.merge_from(&series_from(&pb));
        assert_eq!(merged.len(), pa.len() + pb.len());
        assert!(
            merged.ts.windows(2).all(|w| w[1] >= w[0]),
            "merge must sort"
        );
        // Every original pair survives.
        for (t, v) in pa.iter().chain(&pb) {
            let idx = merged
                .ts
                .iter()
                .position(|x| x == t)
                .expect("timestamp lost");
            assert_eq!(merged.vs[idx], *v);
        }
    }
}

#[test]
fn rates_sum_to_total_delta() {
    let mut rng = Rng::new(0xc0_4e_03);
    for _ in 0..CASES {
        let n = rng.range(2, 200) as usize;
        let deltas: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut s = Series::new();
        let mut total = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            total += d;
            s.push(Nanos((i as u64 + 1) * 25_000), total);
        }
        let sum: u64 = s.rates().map(|r| r.delta).sum();
        let expected: u64 = deltas[1..].iter().sum();
        assert_eq!(sum, expected);
        for r in s.rates() {
            assert!(r.rate >= 0.0);
            assert!(r.t1 > r.t0);
        }
    }
}

#[test]
fn store_merges_batches_in_any_order() {
    let mut rng = Rng::new(0xc0_4e_04);
    for _ in 0..CASES {
        // Build consecutive batches, then ingest them in a shuffled order.
        let n_chunks = rng.range(1, 10) as usize;
        let mut batches = Vec::new();
        let mut t = 0u64;
        let mut all: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n_chunks {
            let chunk_len = rng.range(1, 20) as usize;
            let mut s = Series::new();
            for _ in 0..chunk_len {
                t += 25_000;
                let v = rng.next_u64();
                s.push(Nanos(t), v);
                all.push((t, v));
            }
            batches.push(uburst_core::Batch {
                source: SourceId(1),
                campaign: "prop".into(),
                counter: CounterId::TxBytes(PortId(0)),
                samples: s,
            });
        }
        rng.shuffle(&mut batches);
        let store = SampleStore::new();
        for b in &batches {
            store
                .ingest(b)
                .expect("disjoint batches are never quarantined");
        }
        let got = store
            .series(SourceId(1), CounterId::TxBytes(PortId(0)))
            .expect("series exists");
        assert_eq!(got.len(), all.len());
        assert!(got.ts.windows(2).all(|w| w[1] > w[0]));
        for (i, &(ts, v)) in all.iter().enumerate() {
            assert_eq!(got.ts[i], ts);
            assert_eq!(got.vs[i], v);
        }
    }
}

#[test]
fn utilization_is_rate_over_capacity() {
    let mut rng = Rng::new(0xc0_4e_05);
    for _ in 0..CASES {
        // Deltas below 31250 bytes per 25us stay below 10G line rate.
        let n = rng.range(2, 100) as usize;
        let mut s = Series::new();
        let mut total = 0u64;
        for i in 0..n {
            total += rng.below(31_250);
            s.push(Nanos((i as u64 + 1) * 25_000), total);
        }
        for u in s.utilization(10_000_000_000) {
            assert!(u.util >= 0.0 && u.util <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn wrap_decoding_recovers_the_true_byte_stream() {
    // The core wraparound property: for any counter width and any monotone
    // true stream whose per-read increments stay below 2^bits, reading the
    // masked (hardware-width) value through a WrapDecoder reconstructs the
    // full-width cumulative stream exactly — however many times it wrapped.
    let mut rng = Rng::new(0xc0_4e_06);
    for case in 0..CASES {
        let bits = rng.range(8, 48) as u32;
        let mask = (1u64 << bits) - 1;
        let n_reads = rng.range(10, 400) as usize;
        let mut truth = rng.below(1 << 20); // random non-zero origin
        let mut dec = WrapDecoder::new(bits);
        // Seed the decoder with the first masked read, offset-corrected the
        // same way the poller does: the first decode returns the masked
        // value, so track the offset between truth and the decoded stream.
        let first = dec.decode(truth & mask);
        let offset = truth - first;
        for _ in 1..n_reads {
            // Increments biased toward the wrap point to exercise it often.
            let inc = if rng.chance(0.3) {
                mask.saturating_sub(rng.below(1 + mask / 4))
            } else {
                rng.below(1 + mask / 2)
            };
            truth += inc;
            let got = dec.decode(truth & mask);
            assert_eq!(
                got + offset,
                truth,
                "case {case}: {bits}-bit decode diverged from truth"
            );
            assert_eq!(dec.unwrapped() + offset, truth);
        }
    }
}

#[test]
fn wrap_decoding_is_exact_at_boundary_widths() {
    // 32-bit is the width the paper's hardware exposes; 64-bit must be a
    // no-op passthrough.
    let mut dec32 = WrapDecoder::new(32);
    let reads = [0u64, u32::MAX as u64, 5, 10, 3]; // wraps twice
    let mut acc = 0u64;
    let mut prev = reads[0];
    let mask = u32::MAX as u64;
    assert_eq!(dec32.decode(reads[0]), reads[0]);
    acc += reads[0];
    for &r in &reads[1..] {
        acc += r.wrapping_sub(prev) & mask;
        prev = r;
        assert_eq!(dec32.decode(r), acc);
    }

    let mut dec64 = WrapDecoder::new(64);
    let mut rng = Rng::new(0xc0_4e_07);
    let mut truth = 0u64;
    assert_eq!(dec64.decode(truth), truth);
    for _ in 0..100 {
        truth += rng.below(1 << 40);
        assert_eq!(dec64.decode(truth), truth);
    }
}

#[test]
fn backoff_schedule_is_deterministic_and_bounded() {
    let mut rng = Rng::new(0xc0_4e_08);
    for _ in 0..CASES {
        let base = Nanos(rng.range(1, 100_000));
        let cap = Nanos(rng.range(base.0, 10_000_000));
        let policy = RetryPolicy {
            max_retries: rng.range(0, 16) as u32,
            backoff_base: base,
            backoff_cap: cap,
        };
        let mut prev = Nanos::ZERO;
        for attempt in 0..80u32 {
            let d = policy.backoff(attempt);
            let again = policy.backoff(attempt);
            assert_eq!(d, again, "backoff must be a pure function of attempt");
            assert!(d <= cap, "backoff exceeded cap");
            assert!(d >= prev, "backoff must be non-decreasing");
            assert!(d >= base.min(cap), "backoff below base");
            prev = d;
        }
        // Doubling until the cap: attempt k is exactly base << k when that
        // fits under the cap.
        for attempt in 0..63u32 {
            if let Some(shifted) = base.0.checked_mul(1u64 << attempt) {
                if shifted <= cap.0 {
                    assert_eq!(policy.backoff(attempt), Nanos(shifted));
                }
            }
        }
    }
}

#[test]
fn fault_injection_is_deterministic_under_a_fixed_seed() {
    let mut rng = Rng::new(0xc0_4e_09);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let plan = FaultPlan::none(seed)
            .with_transient_failure(rng.range_f64(0.0, 0.2))
            .with_latency_spike(rng.range_f64(0.0, 0.1))
            .with_stale_read(rng.range_f64(0.0, 0.1))
            .with_counter_bits(rng.range(16, 64) as u32);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let id = CounterId::TxBytes(PortId(0));
        let mut truth = 0u64;
        for _ in 0..500 {
            truth += rng.below(100_000);
            let ra = a.pre_read();
            let rb = b.pre_read();
            assert_eq!(ra, rb, "pre_read streams must match for equal seeds");
            if ra.is_ok() {
                assert_eq!(a.filter_value(id, truth), b.filter_value(id, truth));
            }
        }
        assert_eq!(a.stats(), b.stats());
    }
}
