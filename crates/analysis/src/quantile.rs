//! Selection-based quantiles for callers that never need the full [`Ecdf`].
//!
//! [`Ecdf::new`](crate::Ecdf::new) sorts its sample — O(n log n) — which is
//! the right tool when a harness then evaluates a whole CDF curve. But the
//! hot paths that ask for a single p50/p90 (auto-tuning probes, ablation
//! sweeps, bench kernels) pay the full sort for one order statistic. These
//! functions use `select_nth_unstable` (introselect, O(n)) instead, with
//! the **same nearest-rank semantics**: for any sample and any `q`,
//! `quantile(&mut xs, q) == Ecdf::new(xs).quantile(q)` (asserted by
//! `agrees_with_ecdf_quantile` below).

/// The 1-indexed nearest rank for quantile `q` of an `n`-sample:
/// `ceil(q·n)` clamped to `[1, n]`, with `q = 0` meaning the minimum.
///
/// The naive `(q * n as f64).ceil()` double-rounds: the product can land
/// one ulp past an exact rank boundary (`q` like 0.9 or 0.99 at round
/// `n`), silently shifting pXX by one order statistic. This computes the
/// ceiling in integer arithmetic instead:
///
/// * `q` that is exactly the f64 nearest a 6-digit decimal `p/10^6` —
///   every pXX the paper uses — ranks as `ceil(p·n / 10^6)` over `u128`,
///   honoring the decimal the caller wrote;
/// * any other `q` ranks via its exact binary value `m·2^-s`, so the
///   result is still a true ceiling rather than a rounded product.
///
/// # Panics
/// Panics if `n == 0` or `q` is outside [0, 1].
pub fn nearest_rank(q: f64, n: usize) -> usize {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    assert!(n > 0, "empty sample");
    if q == 0.0 {
        return 1;
    }
    const DEN: u128 = 1_000_000;
    let p = (q * DEN as f64).round() as u64;
    let rank = if p as f64 / DEN as f64 == q {
        let num = p as u128 * n as u128;
        num.div_ceil(DEN) as usize
    } else {
        // q = m·2^-s exactly (s = 1075 - biased exponent; subnormals use
        // s = 1074 with no implicit bit).
        let bits = q.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, s) = if exp == 0 {
            (frac, 1074)
        } else {
            (frac | (1u64 << 52), 1075 - exp)
        };
        if s >= 128 {
            // q < 2^-75, so q·n < 1 for any representable n: rank 1.
            1
        } else {
            let num = m as u128 * n as u128;
            ((num + (1u128 << s) - 1) >> s) as usize
        }
    };
    rank.clamp(1, n)
}

/// The `q`-quantile of `xs` by the nearest-rank method, in O(n) via
/// selection. Reorders `xs` (that is what makes it cheap — no allocation,
/// no full sort).
///
/// # Panics
/// Panics on an empty sample, a NaN observation, or `q` outside [0, 1].
pub fn quantile(xs: &mut [f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "empty sample");
    let idx = nearest_rank(q, xs.len()) - 1;
    *xs.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("NaN observation"))
        .1
}

/// Several quantiles of one sample in a single call, returned in the order
/// requested. Sorts once when that beats repeated selection.
///
/// # Panics
/// As [`quantile`].
pub fn quantiles(xs: &mut [f64], qs: &[f64]) -> Vec<f64> {
    // Repeated selection is O(k·n); a sort is O(n log n). For the small
    // k (2–4) the harnesses use, selection wins until k ~ log n.
    if qs.len() as f64 > (xs.len().max(2) as f64).log2() {
        assert!(!xs.is_empty(), "empty sample");
        crate::sortf64::sort_f64(xs);
        let n = xs.len();
        qs.iter().map(|&q| xs[nearest_rank(q, n) - 1]).collect()
    } else {
        qs.iter().map(|&q| quantile(xs, q)).collect()
    }
}

/// The sample median, in O(n).
pub fn median(xs: &mut [f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    fn lcg_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// The whole contract: selection must reproduce Ecdf::quantile exactly,
    /// for every rank, including edge qs and heavily tied samples.
    #[test]
    fn agrees_with_ecdf_quantile() {
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for n in [1usize, 2, 3, 10, 101, 1024] {
            for seed in [1u64, 42] {
                let sample = lcg_sample(n, seed);
                let tied: Vec<f64> = sample.iter().map(|x| (x * 4.0).round()).collect();
                for xs in [sample, tied] {
                    let e = Ecdf::new(xs.clone());
                    for &q in &qs {
                        let mut scratch = xs.clone();
                        assert_eq!(
                            quantile(&mut scratch, q).to_bits(),
                            e.quantile(q).to_bits(),
                            "n={n} seed={seed} q={q}"
                        );
                    }
                    let mut scratch = xs.clone();
                    let many = quantiles(&mut scratch, &qs);
                    for (&q, &v) in qs.iter().zip(&many) {
                        assert_eq!(v.to_bits(), e.quantile(q).to_bits(), "batched q={q}");
                    }
                }
            }
        }
    }

    /// The hardening contract: for every paper pXX (written as an exact
    /// decimal num/den) and every n up to 1000, the rank is the true
    /// decimal ceiling — no float product to drift one ulp across an
    /// exact boundary (q·n integral).
    #[test]
    fn nearest_rank_sweeps_paper_quantiles() {
        // (q literal, numerator, denominator) — q is the f64 nearest num/den.
        let paper_qs: [(f64, u128, u128); 10] = [
            (0.01, 1, 100),
            (0.05, 5, 100),
            (0.25, 25, 100),
            (0.5, 5, 10),
            (0.75, 75, 100),
            (0.9, 9, 10),
            (0.95, 95, 100),
            (0.99, 99, 100),
            (0.999, 999, 1000),
            (1.0, 1, 1),
        ];
        for n in 1usize..=1000 {
            assert_eq!(nearest_rank(0.0, n), 1, "q=0 n={n}");
            for &(q, num, den) in &paper_qs {
                let expected = ((num * n as u128).div_ceil(den) as usize).clamp(1, n);
                assert_eq!(nearest_rank(q, n), expected, "q={q} n={n}");
            }
        }
    }

    /// Ranks of arbitrary (non-decimal) qs are exact ceilings of the
    /// binary value: rank-1 < q·n <= rank, verified in integers.
    #[test]
    fn nearest_rank_is_exact_for_binary_qs() {
        for q in [
            1e-300_f64,
            2f64.powi(-80),
            0.1 + 1e-17,
            1.0 / 3.0,
            0.7654321,
        ] {
            for n in [1usize, 9, 10, 999, 1000, 1_000_000] {
                let r = nearest_rank(q, n);
                assert!((1..=n).contains(&r), "q={q} n={n} r={r}");
                // Compare q·n against r and r-1 without rounding:
                // q = m·2^-s, so q·n >= k  <=>  m·n >= k·2^s.
                let bits = q.to_bits();
                let exp = ((bits >> 52) & 0x7FF) as u32;
                let frac = bits & ((1u64 << 52) - 1);
                let (m, s) = if exp == 0 {
                    (frac, 1074u32)
                } else {
                    (frac | (1u64 << 52), 1075 - exp)
                };
                let prod = m as u128 * n as u128;
                if s < 128 {
                    assert!(prod <= (r as u128) << s, "q·n > rank: q={q} n={n} r={r}");
                    if r > 1 {
                        assert!(
                            prod > ((r - 1) as u128) << s,
                            "q·n <= rank-1: q={q} n={n} r={r}"
                        );
                    }
                } else {
                    assert_eq!(r, 1, "tiny q must rank 1: q={q} n={n}");
                }
            }
        }
    }

    #[test]
    fn median_of_odd_sample() {
        let mut xs = vec![9.0, 1.0, 5.0];
        assert_eq!(median(&mut xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        quantile(&mut [], 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_rejected() {
        quantile(&mut [1.0], 1.5);
    }
}
