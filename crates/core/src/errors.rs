//! Typed errors for the collection pipeline.
//!
//! The pipeline is a best-effort production service (§4.1): misconfiguration
//! and partial failure must surface as values the caller can route, log, or
//! degrade on — never as panics that would take the switch CPU's sampling
//! loop (or the collector tier) down with them.

use std::fmt;

use uburst_sim::time::Nanos;

/// Errors raised while configuring or running a [`crate::Poller`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollError {
    /// The campaign polls no counters.
    EmptyCampaign,
    /// The campaign's target interval is zero.
    ZeroInterval,
    /// `spawn` was asked for a campaign window with `stop <= start`.
    EmptyWindow {
        /// Requested campaign start.
        start: Nanos,
        /// Requested campaign stop.
        stop: Nanos,
    },
    /// A result accessor needed a [`crate::MemorySink`] output, but the
    /// poller ships to a channel (or a custom sink).
    NotMemorySink,
}

impl fmt::Display for PollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PollError::EmptyCampaign => write!(f, "campaign with no counters"),
            PollError::ZeroInterval => write!(f, "zero sampling interval"),
            PollError::EmptyWindow { start, stop } => {
                write!(f, "empty campaign window [{start}, {stop})")
            }
            PollError::NotMemorySink => {
                write!(f, "poller output is not a MemorySink")
            }
        }
    }
}

impl std::error::Error for PollError {}

/// Errors raised while starting or stopping a [`crate::Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectorError {
    /// `start` was asked for a pool of zero workers.
    NoWorkers,
    /// `start` was asked for a zero-capacity batch queue.
    ZeroCapacity,
    /// The OS refused to spawn a worker thread.
    Spawn(String),
    /// A worker could not be joined at shutdown. Contained panics inside
    /// the ingest loop do **not** produce this — the supervisor absorbs
    /// those and restarts the worker; this is the outer join failing.
    WorkerLost {
        /// Index of the unjoinable worker.
        worker: usize,
    },
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::NoWorkers => write!(f, "collector needs at least one worker"),
            CollectorError::ZeroCapacity => {
                write!(f, "collector queue needs nonzero capacity")
            }
            CollectorError::Spawn(e) => write!(f, "failed to spawn collector worker: {e}"),
            CollectorError::WorkerLost { worker } => {
                write!(f, "collector worker {worker} could not be joined")
            }
        }
    }
}

impl std::error::Error for CollectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        assert_eq!(
            PollError::EmptyCampaign.to_string(),
            "campaign with no counters"
        );
        let e = PollError::EmptyWindow {
            start: Nanos::from_micros(5),
            stop: Nanos::from_micros(5),
        };
        assert!(e.to_string().contains("empty campaign window"));
        assert!(CollectorError::Spawn("nope".into())
            .to_string()
            .contains("nope"));
        assert!(CollectorError::WorkerLost { worker: 3 }
            .to_string()
            .contains('3'));
    }
}
