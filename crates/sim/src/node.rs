//! Nodes and the dispatch context.
//!
//! Everything attached to the network — switches, hosts, the telemetry
//! poller running on a switch CPU — is a [`Node`]. The simulator owns the
//! nodes and dispatches events to them through a [`Ctx`], which exposes the
//! clock, timer scheduling, and packet transmission.

use std::any::Any;

use crate::arena::PacketArena;
use crate::events::{EventKind, EventQueue};
use crate::link::{DirectedLink, Wiring};
use crate::packet::Packet;
use crate::time::Nanos;

/// Identifies a node in the simulation. Assigned densely by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a port on a node. Port numbering is per-node and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

/// Behaviour attached to a [`NodeId`].
///
/// All methods take a [`Ctx`] giving access to the clock and scheduling.
/// Default implementations ignore the event, so leaf types only implement
/// what they react to.
pub trait Node: Any {
    /// A packet has fully arrived on ingress `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet);

    /// The serialization of the packet this node was transmitting on
    /// egress `port` has completed; the port is free again.
    fn on_tx_complete(&mut self, _ctx: &mut Ctx<'_>, _port: PortId) {}

    /// A timer previously set through [`Ctx::timer_in`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Applies any deferred hybrid-mode accounting up to `now` (see
    /// [`crate::fastfwd`]). The simulator calls this on every node when
    /// [`run_until`](crate::sim::Simulator::run_until) returns, so external
    /// readers of node state (statistics, queue depths) always observe
    /// values byte-identical to packet mode. Nodes without deferred state
    /// ignore it.
    fn settle_lazy(&mut self, _now: Nanos) {}

    /// Downcast support — implement as `self`.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support — implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Dispatch context handed to a node while it handles an event.
pub struct Ctx<'a> {
    pub(crate) now: Nanos,
    pub(crate) node: NodeId,
    pub(crate) queue: &'a mut EventQueue,
    pub(crate) wiring: &'a Wiring,
    pub(crate) arena: &'a mut PacketArena,
    pub(crate) hybrid: bool,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Whether the simulation runs in hybrid fast-forward mode (see
    /// [`crate::fastfwd`]). Fixed for the lifetime of a simulation; nodes
    /// with a lazy path branch on it per event.
    pub fn hybrid(&self) -> bool {
        self.hybrid
    }

    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Schedules `on_timer(token)` for this node after `delay`.
    pub fn timer_in(&mut self, delay: Nanos, token: u64) {
        self.timer_at(self.now + delay, token);
    }

    /// Schedules `on_timer(token)` for this node at absolute time `at`
    /// (which must not be in the past).
    pub fn timer_at(&mut self, at: Nanos, token: u64) {
        debug_assert!(at >= self.now, "timer scheduled in the past");
        self.queue.schedule(
            at,
            EventKind::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// The outgoing half-link on `port`, if wired.
    pub fn link(&self, port: PortId) -> Option<&DirectedLink> {
        self.wiring.link(self.node, port)
    }

    /// Begins transmitting `pkt` on `port`.
    ///
    /// Schedules the local `on_tx_complete` after the serialization time and
    /// the peer's `on_packet` after serialization + propagation
    /// (store-and-forward). Returns the serialization time so the caller can
    /// account for port busy time.
    ///
    /// The caller is responsible for only calling this when the port is idle
    /// — ports have no hidden hardware queue; queueing is the node's job.
    ///
    /// # Panics
    /// Panics if `port` is not wired.
    pub fn start_tx(&mut self, port: PortId, pkt: Packet) -> Nanos {
        let link = *self
            .wiring
            .link(self.node, port)
            .unwrap_or_else(|| panic!("node {:?} port {:?} is not wired", self.node, port));
        let ser = link.spec.ser_time(pkt.size);
        self.queue.schedule(
            self.now + ser,
            EventKind::TxComplete {
                node: self.node,
                port,
            },
        );
        let (peer_node, peer_port) = link.peer;
        self.schedule_arrival(
            self.now + ser + link.spec.propagation,
            peer_node,
            peer_port,
            pkt,
        );
        ser
    }

    /// Schedules `pkt` to arrive at `node` on ingress `port` at absolute
    /// time `at`, parking the payload in the simulator's packet arena.
    ///
    /// [`Ctx::start_tx`] is the store-and-forward path built on this; test
    /// traffic generators that model their own serialization discipline
    /// call it directly.
    pub fn schedule_arrival(&mut self, at: Nanos, node: NodeId, port: PortId, pkt: Packet) {
        let pkt = self.arena.alloc(pkt);
        self.queue
            .schedule(at, EventKind::PacketArrive { node, port, pkt });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::packet::{FlowId, PacketKind};

    fn ctx_fixture() -> (EventQueue, Wiring) {
        let mut wiring = Wiring::new();
        wiring.connect(
            (NodeId(0), PortId(0)),
            (NodeId(1), PortId(0)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
        (EventQueue::new(), wiring)
    }

    fn raw_packet(size: u32) -> Packet {
        Packet {
            flow: FlowId(1),
            kind: PacketKind::Raw { tag: 0 },
            src: NodeId(0),
            dst: NodeId(1),
            size,
            created: Nanos::ZERO,
            ce: false,
        }
    }

    #[test]
    fn start_tx_schedules_both_events() {
        let (mut queue, wiring) = ctx_fixture();
        let mut arena = PacketArena::new();
        let mut ctx = Ctx {
            now: Nanos(1000),
            node: NodeId(0),
            queue: &mut queue,
            wiring: &wiring,
            arena: &mut arena,
            hybrid: false,
        };
        let ser = ctx.start_tx(PortId(0), raw_packet(1500));
        assert_eq!(ser, Nanos(1216));

        // First event: local TxComplete at now + ser.
        let e1 = queue.pop_until(Nanos::MAX).unwrap();
        assert_eq!(e1.time, Nanos(2216));
        assert!(matches!(
            e1.kind,
            EventKind::TxComplete {
                node: NodeId(0),
                port: PortId(0)
            }
        ));

        // Second: arrival at peer after propagation, payload in the arena.
        let e2 = queue.pop_until(Nanos::MAX).unwrap();
        assert_eq!(e2.time, Nanos(2716));
        match e2.kind {
            EventKind::PacketArrive {
                node: NodeId(1),
                port: PortId(0),
                pkt,
            } => assert_eq!(arena.take(pkt).size, 1500),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    #[should_panic(expected = "not wired")]
    fn start_tx_on_unwired_port_panics() {
        let (mut queue, wiring) = ctx_fixture();
        let mut arena = PacketArena::new();
        let mut ctx = Ctx {
            now: Nanos::ZERO,
            node: NodeId(0),
            queue: &mut queue,
            wiring: &wiring,
            arena: &mut arena,
            hybrid: false,
        };
        ctx.start_tx(PortId(7), raw_packet(100));
    }

    #[test]
    fn timers_carry_token() {
        let (mut queue, wiring) = ctx_fixture();
        let mut arena = PacketArena::new();
        let mut ctx = Ctx {
            now: Nanos(10),
            node: NodeId(0),
            queue: &mut queue,
            wiring: &wiring,
            arena: &mut arena,
            hybrid: false,
        };
        ctx.timer_in(Nanos(90), 42);
        let e = queue.pop_until(Nanos::MAX).unwrap();
        assert_eq!(e.time, Nanos(100));
        assert!(matches!(
            e.kind,
            EventKind::Timer {
                node: NodeId(0),
                token: 42
            }
        ));
    }
}
