//! Point-to-point links.
//!
//! A link is two directed half-links; each half has a bandwidth and a
//! propagation delay. The simulator models store-and-forward: a packet's
//! transfer across a link takes its serialization time (which the sender
//! spends busy) plus the propagation delay (during which the sender is
//! already free to transmit the next packet).

use crate::node::{NodeId, PortId};
use crate::time::Nanos;

/// Per-frame overhead bytes that occupy the wire but no buffer: Ethernet
/// preamble (8) + inter-frame gap (12).
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// One direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: Nanos,
}

impl LinkSpec {
    /// Convenience constructor from gigabits per second.
    pub fn gbps(gbps: f64, propagation: Nanos) -> Self {
        assert!(gbps > 0.0);
        LinkSpec {
            bandwidth_bps: (gbps * 1e9) as u64,
            propagation,
        }
    }

    /// Time to put `bytes` of frame (plus preamble/IFG) on the wire.
    pub fn ser_time(&self, bytes: u32) -> Nanos {
        // bits * 1e9 / bps, rounded up so a busy port never "catches up"
        // beyond line rate. Every frame-sized input fits the u64 path;
        // u128 only backs up the (unreachable in practice) huge sizes.
        let bits = u64::from(bytes + WIRE_OVERHEAD_BYTES) * 8;
        match bits.checked_mul(1_000_000_000) {
            Some(num) => Nanos(num.div_ceil(self.bandwidth_bps)),
            None => {
                Nanos((bits as u128 * 1_000_000_000).div_ceil(self.bandwidth_bps as u128) as u64)
            }
        }
    }

    /// Bytes/second of usable frame capacity ignoring per-frame overhead;
    /// used when converting counter deltas to utilization.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_bps as f64 / 8.0
    }
}

/// A directed half-link from some (node, port) to `peer`.
#[derive(Debug, Clone, Copy)]
pub struct DirectedLink {
    /// Bandwidth and propagation of this direction.
    pub spec: LinkSpec,
    /// The (node, port) on the far end.
    pub peer: (NodeId, PortId),
}

/// The wiring table: who is connected to whom, indexed by (node, port).
#[derive(Debug, Default)]
pub struct Wiring {
    // links[node.0][port.0] — ports are dense and small, so nested Vecs beat
    // a hash map on the per-packet fast path.
    links: Vec<Vec<Option<DirectedLink>>>,
}

impl Wiring {
    /// An empty wiring table.
    pub fn new() -> Self {
        Wiring { links: Vec::new() }
    }

    /// Installs a bidirectional link with symmetric spec.
    pub fn connect(&mut self, a: (NodeId, PortId), b: (NodeId, PortId), spec: LinkSpec) {
        self.connect_asymmetric(a, b, spec, spec);
    }

    /// Installs a bidirectional link with per-direction specs
    /// (`ab` is used for traffic from `a` to `b`).
    pub fn connect_asymmetric(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        ab: LinkSpec,
        ba: LinkSpec,
    ) {
        self.set(a, DirectedLink { spec: ab, peer: b });
        self.set(b, DirectedLink { spec: ba, peer: a });
    }

    fn set(&mut self, from: (NodeId, PortId), link: DirectedLink) {
        let (n, p) = (from.0 .0 as usize, from.1 .0 as usize);
        if self.links.len() <= n {
            self.links.resize_with(n + 1, Vec::new);
        }
        let ports = &mut self.links[n];
        if ports.len() <= p {
            ports.resize(p + 1, None);
        }
        assert!(
            ports[p].is_none(),
            "port {p} of node {n} is already connected"
        );
        ports[p] = Some(link);
    }

    /// The outgoing half-link of `(node, port)`, if wired.
    pub fn link(&self, node: NodeId, port: PortId) -> Option<&DirectedLink> {
        self.links
            .get(node.0 as usize)?
            .get(port.0 as usize)?
            .as_ref()
    }

    /// Number of wired ports on a node.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.links
            .get(node.0 as usize)
            .map_or(0, |ps| ps.iter().filter(|l| l.is_some()).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ser_time_matches_line_rate() {
        let l = LinkSpec::gbps(10.0, Nanos(500));
        // 1500B frame + 20B overhead = 12160 bits at 10Gbps = 1216ns.
        assert_eq!(l.ser_time(1500), Nanos(1216));
        // 64B + 20B = 672 bits = 67.2ns, rounded up.
        assert_eq!(l.ser_time(64), Nanos(68));
    }

    #[test]
    fn ser_time_scales_with_bandwidth() {
        let slow = LinkSpec::gbps(10.0, Nanos::ZERO);
        let fast = LinkSpec::gbps(40.0, Nanos::ZERO);
        let b = 1500;
        assert_eq!(slow.ser_time(b).as_nanos(), fast.ser_time(b).as_nanos() * 4);
    }

    #[test]
    fn wiring_round_trip() {
        let mut w = Wiring::new();
        let spec = LinkSpec::gbps(10.0, Nanos(100));
        w.connect((NodeId(0), PortId(0)), (NodeId(1), PortId(3)), spec);
        let ab = w.link(NodeId(0), PortId(0)).unwrap();
        assert_eq!(ab.peer, (NodeId(1), PortId(3)));
        let ba = w.link(NodeId(1), PortId(3)).unwrap();
        assert_eq!(ba.peer, (NodeId(0), PortId(0)));
        assert!(w.link(NodeId(0), PortId(1)).is_none());
        assert!(w.link(NodeId(2), PortId(0)).is_none());
        assert_eq!(w.port_count(NodeId(0)), 1);
        assert_eq!(w.port_count(NodeId(9)), 0);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut w = Wiring::new();
        let spec = LinkSpec::gbps(10.0, Nanos(100));
        w.connect((NodeId(0), PortId(0)), (NodeId(1), PortId(0)), spec);
        w.connect((NodeId(0), PortId(0)), (NodeId(2), PortId(0)), spec);
    }
}
