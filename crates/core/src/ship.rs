//! Sequence-numbered batch shipping: at-least-once delivery with
//! receiver-side dedup, plus the per-source **gap ledger** that turns
//! transport loss into accounted, analysable coverage holes.
//!
//! The lossy-link model ([`crate::link`]) can drop, duplicate, reorder, and
//! delay batches between a switch and the collector tier. Raw [`Batch`]es
//! carry no identity, so a dropped batch is silent bias and a redelivered
//! one is a quarantine. This module gives every batch a per-source sequence
//! number ([`SeqBatch`]) and wraps the sending side in a [`Shipper`]:
//! a bounded in-flight window, cumulative acks, and go-back-N retransmit
//! on an ack timeout. The receiving side dedups by sequence number and
//! records what it has *not* seen in a [`GapLedger`], so analysis code can
//! distinguish "no burst" (data present, nothing hot) from "no data"
//! (an interval the pipeline lost).
//!
//! Sequence numbers start at 0 per source and every [`SeqBatch`] piggybacks
//! the source's transmit **watermark** (how many sequence numbers the
//! source has assigned so far), so a receiver that sees batch 7 with
//! watermark 9 knows batches 8 and 9 exist even if they never arrive.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::batch::{Batch, SourceId};
use crate::errors::ShipError;

/// A [`Batch`] wrapped with its transport identity.
#[derive(Debug, Clone)]
pub struct SeqBatch {
    /// Per-source sequence number, assigned at first transmission,
    /// starting at 0 and dense (no holes at the sender).
    pub seq: u64,
    /// Number of sequence numbers the source had assigned when this
    /// transmission was cut (always `> seq`). Receivers learn about
    /// in-flight batches they have not seen from this watermark.
    pub watermark: u64,
    /// The samples.
    pub batch: Batch,
}

/// A cumulative acknowledgement from the collector tier: every sequence
/// number below `cum` has been durably persisted and stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckMsg {
    /// The source being acknowledged.
    pub source: SourceId,
    /// Count of contiguous sequence numbers (from 0) durably received.
    pub cum: u64,
}

/// Tuning for a [`Shipper`].
#[derive(Debug, Clone, Copy)]
pub struct ShipperConfig {
    /// Maximum unacknowledged batches in flight before new offers queue.
    pub window: usize,
    /// Ticks without ack progress before the window is retransmitted.
    pub rto_ticks: u32,
    /// Cap on total outstanding batches (in-flight window **plus**
    /// untransmitted backlog). When an aggregator stalls, a go-back-N
    /// sender makes no ack progress and every offered batch queues; this
    /// cap turns that unbounded growth into a typed
    /// [`ShipError::WindowExhausted`] the caller must shed and account.
    /// Must be at least `window`.
    pub max_outstanding: usize,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig {
            window: 32,
            rto_ticks: 4,
            max_outstanding: 256,
        }
    }
}

/// Transmission accounting for one shipper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipperStats {
    /// First transmissions (one per assigned sequence number).
    pub transmissions: u64,
    /// Retransmissions triggered by ack timeouts.
    pub retransmits: u64,
    /// Highest cumulative ack received.
    pub acked: u64,
    /// Offers refused because the outstanding cap was reached
    /// ([`ShipError::WindowExhausted`]).
    pub refused: u64,
}

/// The sending half of the sequenced shipping protocol for one source.
///
/// Driven by an external clock: callers [`Shipper::offer`] batches as they
/// are cut, then call [`Shipper::tick`] once per transport round trip to
/// collect the messages to put on the wire (new transmissions, plus a
/// go-back-N retransmission of the whole window when no ack progress was
/// made for [`ShipperConfig::rto_ticks`] ticks). Acks arrive through
/// [`Shipper::on_ack`]. The shipper survives a collector crash unchanged:
/// its window still holds every unacknowledged batch, so once the
/// collector recovers, the normal timeout path re-sends exactly what the
/// crash lost.
#[derive(Debug)]
pub struct Shipper {
    source: SourceId,
    cfg: ShipperConfig,
    next_seq: u64,
    cum_acked: u64,
    /// Transmitted but unacknowledged, in sequence order.
    window: VecDeque<(u64, Batch)>,
    /// Offered but not yet transmitted (window was full).
    backlog: VecDeque<Batch>,
    ticks_since_progress: u32,
    stats: ShipperStats,
}

impl Shipper {
    /// A shipper for `source`.
    pub fn new(source: SourceId, cfg: ShipperConfig) -> Self {
        assert!(cfg.window > 0, "zero shipping window");
        assert!(cfg.rto_ticks > 0, "zero retransmit timeout");
        assert!(
            cfg.max_outstanding >= cfg.window,
            "outstanding cap below the window"
        );
        Shipper {
            source,
            cfg,
            next_seq: 0,
            cum_acked: 0,
            window: VecDeque::new(),
            backlog: VecDeque::new(),
            ticks_since_progress: 0,
            stats: ShipperStats::default(),
        }
    }

    /// The source this shipper speaks for.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Sequence numbers assigned so far (the transmit watermark).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest cumulative ack received.
    pub fn cum_acked(&self) -> u64 {
        self.cum_acked
    }

    /// Transmission accounting so far.
    pub fn stats(&self) -> ShipperStats {
        self.stats
    }

    /// Queues one batch for transmission, or refuses it with
    /// [`ShipError::WindowExhausted`] when the outstanding cap
    /// ([`ShipperConfig::max_outstanding`]) is already reached. A refused
    /// batch is the caller's to shed and account — the shipper holds no
    /// reference to it.
    pub fn offer(&mut self, batch: Batch) -> Result<(), ShipError> {
        let outstanding = self.outstanding();
        if outstanding >= self.cfg.max_outstanding {
            self.stats.refused += 1;
            uburst_obs::counter_add("uburst_ship_refused_total", 1);
            return Err(ShipError::WindowExhausted {
                source: self.source,
                outstanding,
            });
        }
        self.backlog.push_back(batch);
        Ok(())
    }

    /// True when every offered batch has been acknowledged.
    pub fn done(&self) -> bool {
        self.window.is_empty() && self.backlog.is_empty()
    }

    /// Batches currently in flight (transmitted, unacknowledged).
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Total unfinished batches: in flight plus backlog — the memory the
    /// outstanding cap bounds.
    pub fn outstanding(&self) -> usize {
        self.window.len() + self.backlog.len()
    }

    /// Processes one cumulative ack. An ack beyond the transmit watermark
    /// (acknowledging sequence numbers never assigned) is a receiver-side
    /// protocol violation; it is clamped to the watermark so a corrupt ack
    /// cannot teleport `next_seq` accounting out of range.
    pub fn on_ack(&mut self, ack: AckMsg) {
        debug_assert_eq!(ack.source, self.source, "ack routed to wrong shipper");
        let ack = AckMsg {
            source: ack.source,
            cum: ack.cum.min(self.next_seq),
        };
        if ack.cum > self.cum_acked {
            uburst_obs::counter_add("uburst_ship_acked_total", ack.cum - self.cum_acked);
            self.cum_acked = ack.cum;
            self.stats.acked = ack.cum;
            self.ticks_since_progress = 0;
            while self.window.front().is_some_and(|&(seq, _)| seq < ack.cum) {
                self.window.pop_front();
            }
        }
    }

    /// Advances the shipper's clock by one tick and returns the messages to
    /// transmit: backlog admitted into the window (first transmissions) and,
    /// on an ack timeout, a go-back-N retransmission of the whole window.
    pub fn tick(&mut self) -> Vec<SeqBatch> {
        let mut out = Vec::new();
        self.tick_into(&mut out);
        out
    }

    /// [`Shipper::tick`] writing into a caller-owned buffer (cleared
    /// first), so per-tick pump loops can recycle one allocation across a
    /// whole campaign instead of allocating a fresh `Vec` per lane per
    /// tick.
    pub fn tick_into(&mut self, out: &mut Vec<SeqBatch>) {
        let recycled_cap = out.capacity();
        out.clear();
        // Admit backlog into the window.
        while self.window.len() < self.cfg.window {
            let Some(batch) = self.backlog.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.window.push_back((seq, batch.clone()));
            self.stats.transmissions += 1;
            uburst_obs::counter_add("uburst_ship_transmissions_total", 1);
            out.push(SeqBatch {
                seq,
                watermark: self.next_seq,
                batch,
            });
        }
        uburst_obs::gauge_max("uburst_ship_window_peak", self.window.len() as u64);
        // Retransmit on timeout.
        if !self.window.is_empty() {
            self.ticks_since_progress += 1;
            if self.ticks_since_progress >= self.cfg.rto_ticks {
                self.ticks_since_progress = 0;
                for (seq, batch) in &self.window {
                    // First transmissions this tick are not re-sent again.
                    if out.iter().any(|sb| sb.seq == *seq) {
                        continue;
                    }
                    self.stats.retransmits += 1;
                    uburst_obs::counter_add("uburst_ship_retransmits_total", 1);
                    out.push(SeqBatch {
                        seq: *seq,
                        watermark: self.next_seq,
                        batch: batch.clone(),
                    });
                }
            }
        }
        // Every message leaving this tick carries the tick's final
        // watermark: the receiver learns the full assigned range even when
        // earlier copies are dropped.
        for sb in out.iter_mut() {
            sb.watermark = self.next_seq;
        }
        // A tick whose transmissions fit a previously-grown buffer cost no
        // allocation — the reuse the fleet pump loop is built around.
        if recycled_cap > 0 && !out.is_empty() && out.capacity() == recycled_cap {
            uburst_obs::counter_add("uburst_ship_buffer_reuse_total", 1);
        }
    }
}

/// Per-source record of which sequence numbers have been received, which
/// are known missing, and how many redeliveries were deduplicated.
#[derive(Debug, Clone, Default)]
struct SourceLedger {
    /// Sorted, disjoint, **inclusive** ranges of received sequence numbers.
    received: Vec<(u64, u64)>,
    /// Highest transmit watermark seen (sequence numbers known assigned).
    watermark: u64,
    /// Redeliveries dropped by sequence-number dedup.
    duplicates: u64,
}

impl SourceLedger {
    /// Marks `seq` received; false if it already was (a duplicate).
    fn note(&mut self, seq: u64) -> bool {
        let i = self.received.partition_point(|&(_, hi)| hi < seq);
        if let Some(&(lo, hi)) = self.received.get(i) {
            if lo <= seq && seq <= hi {
                self.duplicates += 1;
                return false;
            }
        }
        // Insert, merging with neighbours where adjacent.
        let glue_left = i > 0 && self.received[i - 1].1 + 1 == seq;
        let glue_right = self.received.get(i).is_some_and(|&(lo, _)| seq + 1 == lo);
        match (glue_left, glue_right) {
            (true, true) => {
                self.received[i - 1].1 = self.received[i].1;
                self.received.remove(i);
            }
            (true, false) => self.received[i - 1].1 = seq,
            (false, true) => self.received[i].0 = seq,
            (false, false) => self.received.insert(i, (seq, seq)),
        }
        true
    }

    /// Marks every sequence number below `upto` received without counting
    /// duplicates — stream adoption after a regional handoff, where the
    /// prefix is known durable elsewhere and must not reappear as a gap
    /// (or inflate dedup counts) here.
    fn adopt_prefix(&mut self, upto: u64) {
        if upto == 0 {
            return;
        }
        let mut hi = upto - 1;
        // Swallow every range the prefix overlaps or abuts (lo <= upto).
        while let Some(&(lo0, hi0)) = self.received.first() {
            if lo0 > upto {
                break;
            }
            hi = hi.max(hi0);
            self.received.remove(0);
        }
        self.received.insert(0, (0, hi));
        self.watermark = self.watermark.max(upto);
    }

    /// Contiguous received prefix length (the cumulative ack value).
    fn contiguous(&self) -> u64 {
        match self.received.first() {
            Some(&(0, hi)) => hi + 1,
            _ => 0,
        }
    }

    /// Known-missing sequence ranges (inclusive) below the watermark.
    fn gaps(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut next = 0u64;
        for &(lo, hi) in &self.received {
            if lo > next {
                out.push((next, lo - 1));
            }
            next = hi + 1;
        }
        if next < self.watermark {
            out.push((next, self.watermark - 1));
        }
        out
    }
}

/// Receiver-side coverage accounting for every source shipping into a
/// store: which sequence numbers arrived, which are known missing (below
/// the source's announced transmit watermark), and how many redeliveries
/// were deduplicated.
#[derive(Debug, Clone, Default)]
pub struct GapLedger {
    sources: BTreeMap<SourceId, SourceLedger>,
}

impl GapLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        GapLedger::default()
    }

    /// Records one received sequence number. Returns `false` (and counts a
    /// duplicate) when `seq` was already received — the dedup decision.
    pub fn note_received(&mut self, source: SourceId, seq: u64) -> bool {
        self.sources.entry(source).or_default().note(seq)
    }

    /// Whether `seq` has already been received from `source`, without
    /// counting anything — the read-only probe a receiver uses to decide
    /// "re-ack, don't re-persist" before touching durable storage.
    pub fn is_received(&self, source: SourceId, seq: u64) -> bool {
        self.sources.get(&source).is_some_and(|s| {
            let i = s.received.partition_point(|&(_, hi)| hi < seq);
            s.received
                .get(i)
                .is_some_and(|&(lo, hi)| lo <= seq && seq <= hi)
        })
    }

    /// Adopts `source` at sequence `upto`: every number below it is marked
    /// received (without counting duplicates) and the watermark is raised
    /// to cover the adopted range. Used when a receiver takes over a
    /// stream mid-flight — a regional handoff after an aggregator crash —
    /// and the prefix is durably owned by the previous receiver: the new
    /// one must neither report it as a gap nor wait for a retransmit the
    /// shipper (whose acked prefix is exactly `upto`) will never send.
    pub fn adopt_prefix(&mut self, source: SourceId, upto: u64) {
        self.sources.entry(source).or_default().adopt_prefix(upto);
    }

    /// Raises the source's known transmit watermark (never lowers it).
    pub fn note_watermark(&mut self, source: SourceId, watermark: u64) {
        let s = self.sources.entry(source).or_default();
        s.watermark = s.watermark.max(watermark);
    }

    /// Contiguous received prefix for `source` — the cumulative ack value.
    pub fn contiguous(&self, source: SourceId) -> u64 {
        self.sources
            .get(&source)
            .map_or(0, SourceLedger::contiguous)
    }

    /// Known-missing sequence ranges (inclusive) for `source`: assigned
    /// below the watermark but never received. Analysis reads this to
    /// distinguish "no burst" from "no data".
    pub fn gaps(&self, source: SourceId) -> Vec<(u64, u64)> {
        self.sources
            .get(&source)
            .map_or_else(Vec::new, |s| s.gaps())
    }

    /// Total known-missing batches across all sources.
    pub fn missing_total(&self) -> u64 {
        self.sources
            .values()
            .map(|s| s.gaps().iter().map(|&(lo, hi)| hi - lo + 1).sum::<u64>())
            .sum()
    }

    /// Total deduplicated redeliveries across all sources.
    pub fn duplicates_total(&self) -> u64 {
        self.sources.values().map(|s| s.duplicates).sum()
    }

    /// Batches received for `source`.
    pub fn received_count(&self, source: SourceId) -> u64 {
        self.sources
            .get(&source)
            .map_or(0, |s| s.received.iter().map(|&(lo, hi)| hi - lo + 1).sum())
    }

    /// Highest transmit watermark seen for `source`.
    pub fn watermark(&self, source: SourceId) -> u64 {
        self.sources.get(&source).map_or(0, |s| s.watermark)
    }

    /// Sources the ledger has seen, sorted.
    pub fn sources(&self) -> Vec<SourceId> {
        self.sources.keys().copied().collect()
    }
}

impl fmt::Display for GapLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (source, s) in &self.sources {
            writeln!(
                f,
                "source {}: {} received, watermark {}, {} dup, gaps {:?}",
                source.0,
                s.received.iter().map(|&(lo, hi)| hi - lo + 1).sum::<u64>(),
                s.watermark,
                s.duplicates,
                s.gaps()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    fn batch(t: u64) -> Batch {
        let mut s = Series::new();
        s.push(Nanos(t), t);
        Batch {
            source: SourceId(0),
            campaign: "t".into(),
            counter: CounterId::TxBytes(PortId(0)),
            samples: s,
        }
    }

    #[test]
    fn shipper_assigns_dense_seqs_and_watermarks() {
        let mut sh = Shipper::new(SourceId(0), ShipperConfig::default());
        for t in 1..=3 {
            sh.offer(batch(t)).unwrap();
        }
        let out = sh.tick();
        assert_eq!(out.len(), 3);
        for (i, sb) in out.iter().enumerate() {
            assert_eq!(sb.seq, i as u64);
            assert_eq!(sb.watermark, 3);
        }
        assert_eq!(sh.in_flight(), 3);
        assert!(!sh.done());
        sh.on_ack(AckMsg {
            source: SourceId(0),
            cum: 3,
        });
        assert!(sh.done());
        assert_eq!(sh.stats().transmissions, 3);
        assert_eq!(sh.stats().retransmits, 0);
    }

    #[test]
    fn shipper_window_limits_inflight() {
        let mut sh = Shipper::new(
            SourceId(0),
            ShipperConfig {
                window: 2,
                rto_ticks: 100,
                ..ShipperConfig::default()
            },
        );
        for t in 1..=5 {
            sh.offer(batch(t)).unwrap();
        }
        assert_eq!(sh.tick().len(), 2);
        assert_eq!(sh.tick().len(), 0, "window full, nothing new");
        sh.on_ack(AckMsg {
            source: SourceId(0),
            cum: 1,
        });
        assert_eq!(sh.tick().len(), 1, "one slot freed");
    }

    #[test]
    fn shipper_retransmits_window_after_rto() {
        let mut sh = Shipper::new(
            SourceId(0),
            ShipperConfig {
                window: 8,
                rto_ticks: 3,
                ..ShipperConfig::default()
            },
        );
        sh.offer(batch(1)).unwrap();
        sh.offer(batch(2)).unwrap();
        assert_eq!(sh.tick().len(), 2); // first transmissions
        assert_eq!(sh.tick().len(), 0);
        let r = sh.tick(); // third tick without progress: RTO fires
        assert_eq!(r.len(), 2, "whole window retransmitted");
        assert_eq!(r[0].seq, 0);
        assert_eq!(sh.stats().retransmits, 2);
        // Ack progress resets the timer.
        sh.on_ack(AckMsg {
            source: SourceId(0),
            cum: 1,
        });
        assert_eq!(sh.tick().len(), 0);
        assert_eq!(sh.tick().len(), 0);
        assert_eq!(sh.tick().len(), 1, "remaining batch retransmitted");
    }

    #[test]
    fn stale_and_duplicate_acks_are_ignored() {
        let mut sh = Shipper::new(SourceId(3), ShipperConfig::default());
        for t in 1..=4 {
            sh.offer(batch(t)).unwrap();
        }
        sh.tick();
        sh.on_ack(AckMsg {
            source: SourceId(3),
            cum: 3,
        });
        sh.on_ack(AckMsg {
            source: SourceId(3),
            cum: 1,
        }); // stale
        assert_eq!(sh.cum_acked(), 3);
        assert_eq!(sh.in_flight(), 1);
    }

    #[test]
    fn ledger_tracks_gaps_and_dedups() {
        let mut l = GapLedger::new();
        let s = SourceId(1);
        assert!(l.note_received(s, 0));
        assert!(l.note_received(s, 1));
        assert!(l.note_received(s, 4));
        assert!(!l.note_received(s, 1), "duplicate detected");
        l.note_watermark(s, 7);
        assert_eq!(l.contiguous(s), 2);
        assert_eq!(l.gaps(s), vec![(2, 3), (5, 6)]);
        assert_eq!(l.missing_total(), 4);
        assert_eq!(l.duplicates_total(), 1);
        assert_eq!(l.received_count(s), 3);
        // Filling a hole merges ranges.
        assert!(l.note_received(s, 2));
        assert!(l.note_received(s, 3));
        assert_eq!(l.contiguous(s), 5);
        assert_eq!(l.gaps(s), vec![(5, 6)]);
    }

    #[test]
    fn ledger_watermark_never_lowers() {
        let mut l = GapLedger::new();
        let s = SourceId(0);
        l.note_watermark(s, 9);
        l.note_watermark(s, 4);
        assert_eq!(l.watermark(s), 9);
        assert_eq!(l.gaps(s), vec![(0, 8)]);
    }

    #[test]
    fn offer_refused_at_outstanding_cap() {
        let mut sh = Shipper::new(
            SourceId(0),
            ShipperConfig {
                window: 2,
                rto_ticks: 100,
                max_outstanding: 4,
            },
        );
        for t in 1..=4 {
            sh.offer(batch(t)).unwrap();
        }
        // Cap reached with no ack progress: the fifth offer is refused
        // with a typed error instead of growing the backlog.
        let err = sh.offer(batch(5)).unwrap_err();
        assert_eq!(
            err,
            ShipError::WindowExhausted {
                source: SourceId(0),
                outstanding: 4,
            }
        );
        assert_eq!(sh.outstanding(), 4, "refused batch was not buffered");
        assert_eq!(sh.stats().refused, 1);
        // Ticking transmits but frees nothing (window 2, backlog 2).
        sh.tick();
        assert!(sh.offer(batch(6)).is_err());
        // Ack progress frees outstanding slots and offers flow again.
        sh.on_ack(AckMsg {
            source: SourceId(0),
            cum: 2,
        });
        sh.offer(batch(7)).unwrap();
        assert_eq!(sh.stats().refused, 2);
    }

    #[test]
    fn stalled_aggregator_cannot_grow_shipper_memory() {
        // A dead receiver: never an ack. Memory must plateau at the cap
        // however long the stall lasts.
        let cfg = ShipperConfig {
            window: 8,
            rto_ticks: 2,
            max_outstanding: 32,
        };
        let mut sh = Shipper::new(SourceId(9), cfg);
        let mut refused = 0u64;
        for t in 1..=1_000 {
            if sh.offer(batch(t)).is_err() {
                refused += 1;
            }
            sh.tick();
            assert!(sh.outstanding() <= cfg.max_outstanding);
        }
        assert_eq!(sh.outstanding(), 32);
        assert_eq!(refused, 1_000 - 32);
        assert_eq!(sh.stats().refused, refused);
    }

    #[test]
    fn ack_beyond_watermark_is_clamped() {
        let mut sh = Shipper::new(SourceId(2), ShipperConfig::default());
        sh.offer(batch(1)).unwrap();
        sh.offer(batch(2)).unwrap();
        sh.tick(); // assigns seqs 0 and 1; watermark 2
        sh.on_ack(AckMsg {
            source: SourceId(2),
            cum: 99,
        });
        assert_eq!(
            sh.cum_acked(),
            2,
            "ack past the watermark acknowledges only assigned seqs"
        );
        assert!(sh.done());
        // Subsequent offers assign fresh sequence numbers from where the
        // sender actually is, not from the corrupt ack.
        sh.offer(batch(3)).unwrap();
        let out = sh.tick();
        assert_eq!(out[0].seq, 2);
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut sh = Shipper::new(SourceId(1), ShipperConfig::default());
        for t in 1..=3 {
            sh.offer(batch(t)).unwrap();
        }
        sh.tick();
        let ack = AckMsg {
            source: SourceId(1),
            cum: 2,
        };
        sh.on_ack(ack);
        let after_first = (sh.cum_acked(), sh.in_flight(), sh.stats());
        // The same cumulative ack again (a retransmitted ack) changes
        // nothing — not even the progress timer's effect on retransmits.
        sh.on_ack(ack);
        sh.on_ack(ack);
        assert_eq!((sh.cum_acked(), sh.in_flight(), sh.stats()), after_first);
    }

    #[test]
    fn empty_ledger_tiles_exactly_to_the_watermark() {
        // Nothing received at all: the gap list must tile [0, watermark)
        // exactly — one range, no off-by-one at either end.
        let mut l = GapLedger::new();
        let s = SourceId(4);
        l.note_watermark(s, 5);
        assert_eq!(l.gaps(s), vec![(0, 4)]);
        assert_eq!(l.missing_total(), 5);
        assert_eq!(l.received_count(s), 0);
        assert_eq!(l.contiguous(s), 0);
        // Received ranges + gaps together tile the watermark exactly.
        assert!(l.note_received(s, 0));
        assert!(l.note_received(s, 3));
        let gaps = l.gaps(s);
        let covered: u64 =
            gaps.iter().map(|&(lo, hi)| hi - lo + 1).sum::<u64>() + l.received_count(s);
        assert_eq!(covered, l.watermark(s), "gaps + received tile exactly");
        assert_eq!(gaps, vec![(1, 2), (4, 4)]);
        // A watermark equal to the received count leaves no gap.
        let mut full = GapLedger::new();
        for seq in 0..5 {
            assert!(full.note_received(s, seq));
        }
        full.note_watermark(s, 5);
        assert!(full.gaps(s).is_empty());
        assert_eq!(full.missing_total(), 0);
    }

    #[test]
    fn ledger_duplicate_watermarks_and_acks_at_watermark() {
        // Duplicate watermark announcements are idempotent, and a
        // contiguous prefix that reaches the watermark means "complete".
        let mut l = GapLedger::new();
        let s = SourceId(6);
        for _ in 0..3 {
            l.note_watermark(s, 4);
        }
        assert_eq!(l.missing_total(), 4);
        for seq in [1u64, 0, 2, 3] {
            assert!(l.note_received(s, seq));
        }
        assert_eq!(l.contiguous(s), 4);
        assert_eq!(l.contiguous(s), l.watermark(s));
        assert!(l.gaps(s).is_empty());
        assert_eq!(l.duplicates_total(), 0);
    }

    #[test]
    fn ledger_out_of_order_arrival_converges() {
        let mut l = GapLedger::new();
        let s = SourceId(2);
        for seq in [5u64, 3, 1, 0, 2, 4] {
            assert!(l.note_received(s, seq));
        }
        l.note_watermark(s, 6);
        assert_eq!(l.contiguous(s), 6);
        assert!(l.gaps(s).is_empty());
        assert_eq!(l.missing_total(), 0);
    }

    #[test]
    fn ledger_adopt_prefix_merges_without_counting_duplicates() {
        let mut l = GapLedger::new();
        let s = SourceId(4);
        // Pre-existing ranges straddling the adoption point: [2,3], [7,8].
        for seq in [2u64, 3, 7, 8] {
            assert!(l.note_received(s, seq));
        }
        l.adopt_prefix(s, 5);
        assert_eq!(l.contiguous(s), 5, "prefix [0,5) adopted");
        assert_eq!(l.watermark(s), 5, "adoption raises the watermark");
        assert_eq!(l.duplicates_total(), 0, "adoption is not a redelivery");
        assert_eq!(l.received_count(s), 7, "[0,4] + [7,8]");
        assert_eq!(l.gaps(s), vec![(5, 6)]);
        // Adoption glues with an abutting range: [0,4] ∪ adopt(7) where
        // [7,8] starts exactly at upto: [5,6] filled, all contiguous.
        l.adopt_prefix(s, 7);
        assert_eq!(l.contiguous(s), 9);
        assert!(l.gaps(s).is_empty());
        // Adopting behind current progress is a no-op.
        l.adopt_prefix(s, 1);
        assert_eq!(l.contiguous(s), 9);
        assert_eq!(l.duplicates_total(), 0);
        // Zero adoption on a fresh source changes nothing.
        l.adopt_prefix(SourceId(5), 0);
        assert_eq!(l.contiguous(SourceId(5)), 0);
        assert_eq!(l.received_count(SourceId(5)), 0);
    }

    #[test]
    fn ledger_note_after_adoption_deduplicates_inside_prefix() {
        let mut l = GapLedger::new();
        let s = SourceId(6);
        l.adopt_prefix(s, 10);
        assert!(!l.note_received(s, 3), "inside the adopted prefix");
        assert_eq!(l.duplicates_total(), 1, "a real redelivery still counts");
        assert!(l.note_received(s, 10), "first number past the prefix");
        assert_eq!(l.contiguous(s), 11);
    }
}
