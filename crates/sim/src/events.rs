//! The discrete-event calendar.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number makes
//! ordering total and deterministic: two events scheduled for the same
//! instant fire in the order they were scheduled, which keeps simulations
//! bit-reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{NodeId, PortId};
use crate::packet::Packet;
use crate::time::Nanos;

/// Everything that can happen in the simulator.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at `node` on ingress `port`.
    PacketArrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on the receiving node.
        port: PortId,
        /// The packet itself.
        pkt: Packet,
    },
    /// `node` finishes serializing a packet out of egress `port`.
    TxComplete {
        /// Transmitting node.
        node: NodeId,
        /// The egress port that became free.
        port: PortId,
    },
    /// A timer set by `node` fires; `token` is the node's own cookie.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// Opaque cookie chosen by the node.
        token: u64,
    },
}

/// A scheduled occurrence: a time plus what happens then.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: Nanos,
    seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event set.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    /// An empty calendar with a small default capacity.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// An empty calendar pre-sized for `cap` pending events.
    ///
    /// Busy scenarios keep tens of thousands of events in flight; sizing
    /// the heap up front avoids the doubling reallocations (and copies of
    /// every pending [`Event`]) the growth path would otherwise pay.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Adds an event firing at `time`.
    pub fn schedule(&mut self, time: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the next event if it fires at or before `until`.
    pub fn pop_until(&mut self, until: Nanos) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.time <= until) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled; used by throughput benchmarks.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), timer(0, 3));
        q.schedule(Nanos(10), timer(0, 1));
        q.schedule(Nanos(20), timer(0, 2));
        let mut tokens = Vec::new();
        while let Some(e) = q.pop_until(Nanos::MAX) {
            if let EventKind::Timer { token, .. } = e.kind {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), timer(0, i));
        }
        let mut tokens = Vec::new();
        while let Some(e) = q.pop_until(Nanos::MAX) {
            if let EventKind::Timer { token, .. } = e.kind {
                tokens.push(token);
            }
        }
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), timer(0, 1));
        q.schedule(Nanos(20), timer(0, 2));
        assert!(q.pop_until(Nanos(5)).is_none());
        assert!(q.pop_until(Nanos(10)).is_some());
        assert!(q.pop_until(Nanos(15)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
    }

    #[test]
    fn counts_scheduled() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos(1), timer(0, 0));
        q.schedule(Nanos(2), timer(0, 0));
        q.pop_until(Nanos::MAX);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
    }
}
