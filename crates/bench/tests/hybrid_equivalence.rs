//! Byte-identity of the hybrid fast-forward engine.
//!
//! The contract of `uburst_sim::fastfwd` is *exactness*, not
//! approximation: every counter readout at every poll instant — and every
//! post-run statistic a figure is built from — must be byte-identical
//! between per-packet and hybrid execution. These tests run full
//! measurement campaigns for every rack type in both modes (forced
//! in-process via `ScenarioConfig::hybrid`, independent of the
//! `UBURST_HYBRID` environment) and diff everything a harness can observe:
//! sampled timelines (timestamps and values), poller behaviour, switch
//! totals, per-port drop registers, and transport diagnostics.
//!
//! Scenarios the engine cannot fast-forward exactly (paced NICs) are not
//! approximated — the NIC keeps its per-packet event path — so they are in
//! the matrix too and must likewise be identical.

use uburst_asic::CounterId;
use uburst_bench::campaign::{buffer_and_ports_spec, single_port_spec, CampaignRun, CampaignSpec};
use uburst_sim::bufpolicy::BufferPolicyCfg;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

/// Runs `spec` in both execution modes and asserts every observable is
/// byte-identical. Returns the packet-mode run for extra assertions.
fn assert_modes_identical(spec: CampaignSpec, label: &str) -> CampaignRun {
    let mut packet_spec = spec.clone();
    packet_spec.cfg.hybrid = Some(false);
    let mut hybrid_spec = spec;
    hybrid_spec.cfg.hybrid = Some(true);
    let packet = packet_spec.run();
    let hybrid = hybrid_spec.run();

    assert_eq!(
        packet.series.len(),
        hybrid.series.len(),
        "{label}: series count"
    );
    for ((pc, ps), (hc, hs)) in packet.series.iter().zip(hybrid.series.iter()) {
        assert_eq!(pc, hc, "{label}: counter order");
        assert_eq!(ps.ts, hs.ts, "{label}: {pc:?} poll timestamps");
        assert_eq!(ps.vs, hs.vs, "{label}: {pc:?} sampled values");
    }
    assert_eq!(
        packet.poller_stats, hybrid.poller_stats,
        "{label}: poller stats"
    );
    assert_eq!(packet.fault_stats, hybrid.fault_stats, "{label}: faults");
    assert_eq!(packet.net.tor, hybrid.net.tor, "{label}: ToR totals");
    assert_eq!(
        packet.net.port_drops, hybrid.net.port_drops,
        "{label}: per-port drops"
    );
    assert_eq!(
        packet.net.transport, hybrid.net.transport,
        "{label}: transport diagnostics"
    );
    packet
}

#[test]
fn single_port_timeline_identical_web() {
    let cfg = ScenarioConfig::new(RackType::Web, 42);
    let (spec, _) = single_port_spec(cfg, Some(3), Nanos::from_micros(25), Nanos::from_millis(15));
    let run = assert_modes_identical(spec, "web/25us");
    assert!(run.net.tor.tx_bytes > 0, "campaign must see traffic");
}

#[test]
fn single_port_timeline_identical_cache() {
    let cfg = ScenarioConfig::new(RackType::Cache, 7);
    let (spec, _) = single_port_spec(cfg, None, Nanos::from_micros(50), Nanos::from_millis(15));
    assert_modes_identical(spec, "cache/50us");
}

#[test]
fn single_port_timeline_identical_hadoop() {
    let cfg = ScenarioConfig::new(RackType::Hadoop, 9);
    let (spec, _) = single_port_spec(cfg, Some(1), Nanos::from_micros(25), Nanos::from_millis(15));
    let run = assert_modes_identical(spec, "hadoop/25us");
    // Hadoop is the bulk rack: the campaign must exercise real congestion
    // or the equivalence is vacuous.
    assert!(
        run.net.tor.dropped_packets > 0,
        "hadoop campaign saw no congestion"
    );
}

#[test]
fn buffer_peak_register_identical_under_congestion() {
    // BufferPeak is the destructive (read-and-clear) register: the lazy
    // settlement path must reproduce its exact read/re-seed sequence, not
    // just final totals.
    let cfg = ScenarioConfig::new(RackType::Hadoop, 21);
    let (spec, _) = buffer_and_ports_spec(cfg, Nanos::from_micros(100), Nanos::from_millis(15));
    let run = assert_modes_identical(spec, "hadoop/buffer-peak");
    let peak = run.series_for(CounterId::BufferPeak);
    assert!(
        peak.vs.iter().any(|&v| v > 0),
        "peak register never engaged"
    );
}

#[test]
fn every_buffer_policy_identical_across_engines() {
    // The BufferPolicy contract is that admission decisions are pure in
    // admission-time state (held, buffered, pool), which is exactly what
    // the settle-then-admit invariant of DESIGN §4l guarantees both
    // engines agree on. Sweep every policy under real congestion and
    // require byte-identity, so a future stateful policy that silently
    // breaks the contract fails here rather than in a figure.
    let policies = [
        BufferPolicyCfg::dt(0.5),
        BufferPolicyCfg::StaticPartition,
        BufferPolicyCfg::BShare {
            target_delay: Nanos::from_micros(100),
            drain_bps: 10_000_000_000,
        },
        BufferPolicyCfg::FlexibleBuffering {
            reserved_bytes: 24 << 10,
        },
    ];
    for policy in policies {
        let mut cfg = ScenarioConfig::new(RackType::Hadoop, 21);
        cfg.clos.tor_switch.policy = policy;
        let (spec, _) = buffer_and_ports_spec(cfg, Nanos::from_micros(100), Nanos::from_millis(12));
        let run = assert_modes_identical(spec, &format!("hadoop/{}", policy.label()));
        assert!(
            run.net.tor.rx_packets > 0,
            "{}: campaign saw no traffic",
            policy.label()
        );
    }
}

#[test]
fn paced_nics_fall_back_without_divergence() {
    // Pacing makes per-packet timing load-bearing on the hosts, so the
    // hybrid engine refuses to fast-forward those NICs (they keep the
    // event path) rather than approximating. Everything must still match.
    let mut cfg = ScenarioConfig::new(RackType::Web, 5);
    cfg.nic_pace_bps = Some(5_000_000_000);
    let (spec, _) = single_port_spec(cfg, Some(2), Nanos::from_micros(50), Nanos::from_millis(10));
    assert_modes_identical(spec, "web/paced");
}

#[test]
fn instrumented_fabric_tier_identical() {
    // Fabric switches get their own counter banks here: their flush hooks
    // must settle independently of the ToR's.
    let mut cfg = ScenarioConfig::new(RackType::Cache, 33);
    cfg.instrument_fabric = true;
    let (spec, _) = single_port_spec(
        cfg,
        Some(PortId(0).0 as usize),
        Nanos::from_micros(100),
        Nanos::from_millis(10),
    );
    assert_modes_identical(spec, "cache/fabric-instrumented");
}
