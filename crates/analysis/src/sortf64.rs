//! Linear-time sorting of finite `f64` samples.
//!
//! Every distribution the paper reports (Figs. 3, 4, 6, 7; the KS test of
//! §5.2) starts by sorting a campaign-sized sample — millions of values
//! for a 2-minute 25 µs campaign. A comparison sort is O(n log n) with a
//! branch per compare; this module sorts in O(n) passes with a radix sort
//! over the order-preserving `u64` image of each float, the standard
//! trick for IEEE-754 keys:
//!
//! * for `x >= 0.0`, `key = bits(x) ^ SIGN_BIT` (sets the top bit, so
//!   positives sort above negatives);
//! * for `x < 0.0`, `key = !bits(x)` (flips everything: more-negative
//!   values get smaller keys).
//!
//! The map is strictly monotone on finite floats, so sorting keys sorts
//! values. `-0.0` is first normalized to `+0.0` *in the key only*
//! (`x + 0.0`), because `partial_cmp` calls the two zeros equal while
//! their raw bit patterns differ.
//!
//! The workhorse is an **MSD radix sort over the keys themselves**: the
//! prescan computes each key once into a scratch buffer (fusing the NaN
//! check and a histogram of the top 16 bits), a single wide scatter
//! buckets the keys by those top bits, and each bucket — already
//! small and cache-resident for measurement-shaped data — finishes with
//! a branchless comparison sort (byte-wise MSD recursion for the rare
//! oversized bucket). A final pass, fused into the bucket walk, inverts
//! the sorted keys back to floats; the inversion is exact because
//! without `-0.0` the key map is a bijection. Two properties make the
//! result **bit-identical** to the stable `sort_by(partial_cmp)` it
//! replaces:
//!
//! * distinct keys are ordered exactly as `partial_cmp` orders the
//!   values (monotone map), and
//! * equal keys mean bit-identical values — so the unstable base case
//!   cannot produce an observable reordering — **except** for mixed
//!   `-0.0`/`+0.0`, which share a key but differ in bits. Samples
//!   containing `-0.0` (checked in the prescan) take a stable LSD
//!   radix over `(key, value)` pairs instead, which preserves input
//!   order of equals just like the stable comparison sort.
//!
//! On campaign-like samples (1 M exponential gaps) the MSD path runs
//! ~3× faster than the stable comparison sort it replaces.

/// Sorts `xs` ascending by `partial_cmp`, bit-identically to
/// `xs.sort_by(|a, b| a.partial_cmp(b).unwrap())`.
///
/// # Panics
/// Panics if any value is NaN (infinities order fine and are accepted;
/// callers that reject non-finite input do so before sorting).
pub fn sort_f64(xs: &mut [f64]) {
    // Below this, comparison sort wins on constants (no key buffers).
    const RADIX_THRESHOLD: usize = 4096;
    if xs.len() < RADIX_THRESHOLD {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        return;
    }
    radix_sort_f64(xs);
}

const SIGN: u64 = 1u64 << 63;

/// The order-preserving key. `+ 0.0` collapses `-0.0` onto `+0.0` so the
/// two zeros — equal under `partial_cmp` — share a key. Branchless: the
/// arithmetic shift smears the sign bit into an all-ones mask for
/// negatives (flip everything) and all-zeros for non-negatives (flip the
/// sign bit only).
#[inline]
fn key_of(x: f64) -> u64 {
    let b = (x + 0.0).to_bits();
    b ^ ((((b as i64) >> 63) as u64) | SIGN)
}

/// Inverse of [`key_of`] (exact: without `-0.0` the key map is a
/// bijection). Keys of originally non-negative values carry a set top
/// bit, so the mask reconstruction mirrors the forward transform.
#[inline]
fn val_of(k: u64) -> u64 {
    k ^ ((((!k as i64) >> 63) as u64) | SIGN)
}

/// Byte `shift/8` of a key, as a bucket index.
#[inline]
fn digit(k: u64, shift: u32) -> usize {
    ((k >> shift) & 0xFF) as usize
}

/// Number of top bits consumed by the first (wide) scatter level.
const TOP_BITS: u32 = 16;
const TOP_BUCKETS: usize = 1 << TOP_BITS;

/// Buckets at or below this size finish with `sort_unstable` (branchless
/// pdqsort over bare `u64`s, in-cache at these sizes) instead of another
/// counting level. Another radix level only pays off once a bucket is
/// large enough that its n·log n comparisons outweigh two more full
/// passes plus per-bucket bookkeeping.
const BUCKET_SORT_CUTOFF: usize = 1024;

/// Second-level digit: 14 bits immediately below the top 16. An
/// oversized top-level bucket (tens of thousands of keys sharing one
/// exponent window) lands here; 14 more bits cut expected run lengths to
/// one or two elements each, so almost all the sorting work is done by
/// the counting scatter itself. (Constants tuned empirically on the
/// 1 M-sample bench shapes; the 64 KiB counts array still fits L2.)
const MID_BITS: u32 = 14;
const MID_SHIFT: u32 = 64 - TOP_BITS - MID_BITS;
const MID_BUCKETS: usize = 1 << MID_BITS;

/// Sorts an oversized top-level bucket (all keys share their top
/// [`TOP_BITS`] bits), leaving the result in `scratch` — the caller
/// reads it from there, which spares a copy back. One [`MID_BITS`]-wide counting
/// scatter, then insertion over the tiny runs (byte-wise MSD for the
/// rare skewed run).
fn sort_oversized(bucket: &mut [u64], scratch: &mut [u64]) {
    let mut counts = [0u32; MID_BUCKETS];
    for &k in bucket.iter() {
        counts[((k >> MID_SHIFT) as usize) & (MID_BUCKETS - 1)] += 1;
    }
    let mut running = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = running;
        running += n;
    }
    for &k in bucket.iter() {
        let d = ((k >> MID_SHIFT) as usize) & (MID_BUCKETS - 1);
        scratch[counts[d] as usize] = k;
        counts[d] += 1;
    }
    // counts[d] is now run d's exclusive end.
    let mut start = 0usize;
    for &end in counts.iter() {
        let end = end as usize;
        let run = end - start;
        if run > SMALL {
            // Bits below the mid digit are still unsorted; the next byte
            // boundary (shift 32) re-examines four already-equal bits,
            // which is harmless. Result stays in `scratch`.
            msd_in_place(&mut scratch[start..end], &mut bucket[start..end], 32);
        } else if run > 1 {
            smallsort(&mut scratch[start..end]);
        }
        start = end;
    }
}

/// Radix entry point: one fused prescan (NaN check, `-0.0` detection,
/// key computation, top-16-bit histogram), a single wide scatter that
/// buckets keys by their top 16 bits — sign, most of the exponent — then
/// an in-cache `sort_unstable` per bucket (byte-wise MSD recursion for
/// the rare oversized bucket), and inversion back to floats fused into
/// the bucket walk. Samples containing `-0.0` take the stable pair
/// fallback instead.
///
/// The wide first level is what makes this fast on measurement-shaped
/// data: a campaign sample spans a few dozen exponents, so the top 16
/// bits split a million elements into a few thousand buckets of a few
/// hundred — small enough that one branchless comparison sort per bucket
/// beats six more counting passes over the whole array.
fn radix_sort_f64(xs: &mut [f64]) {
    let mut has_neg_zero = false;
    with_scratch(xs.len(), |keys, tmp, hist| {
        // Fixed-size view so `hist[key >> 48]` needs no bounds check.
        let hist: &mut [u32; TOP_BUCKETS] = hist.try_into().expect("scratch histogram size");
        hist.fill(0);
        for &x in xs.iter() {
            assert!(!x.is_nan(), "NaN observation");
            has_neg_zero |= x.to_bits() == SIGN;
            hist[(key_of(x) >> (64 - TOP_BITS)) as usize] += 1;
        }
        if has_neg_zero {
            // Mixed zeros differ in bits but compare equal: only a
            // stable order is bit-identical to the reference sort.
            return;
        }
        // Exclusive prefix sum -> per-bucket write cursors.
        let mut running = 0u32;
        for h in hist.iter_mut() {
            let c = *h;
            *h = running;
            running += c;
        }
        // Recomputing the key here (a handful of ALU ops) is cheaper
        // than streaming a million precomputed keys back from memory.
        for &x in xs.iter() {
            let k = key_of(x);
            let d = (k >> (64 - TOP_BITS)) as usize;
            tmp[hist[d] as usize] = k;
            hist[d] += 1;
        }
        // After the scatter, hist[d] is bucket d's exclusive end.
        let mut start = 0usize;
        for &end in hist.iter() {
            let end = end as usize;
            if end > start {
                let sorted: &[u64] = if end - start <= BUCKET_SORT_CUTOFF {
                    let bucket = &mut tmp[start..end];
                    if bucket.len() > 1 {
                        bucket.sort_unstable();
                    }
                    bucket
                } else {
                    sort_oversized(&mut tmp[start..end], &mut keys[start..end]);
                    &keys[start..end]
                };
                // Invert while the bucket is still cache-hot.
                for (x, &k) in xs[start..end].iter_mut().zip(sorted.iter()) {
                    *x = f64::from_bits(val_of(k));
                }
            }
            start = end;
        }
    });
    if has_neg_zero {
        lsd_stable_pairs(xs);
    }
}

thread_local! {
    /// Key/scatter buffers and the top-level histogram, reused across
    /// calls so repeated campaign-sized sorts pay the allocation and
    /// page-zeroing once per thread.
    static SCRATCH: std::cell::RefCell<(Vec<u64>, Vec<u64>, Vec<u32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Runs `f` with two `n`-element scratch slices (keys, scatter space) and
/// the `TOP_BUCKETS`-entry histogram. `sort_f64` never re-enters itself,
/// so the thread-local borrow cannot conflict.
fn with_scratch(n: usize, f: impl FnOnce(&mut [u64], &mut [u64], &mut [u32])) {
    SCRATCH.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let (keys, tmp, hist) = &mut *bufs;
        if keys.len() < n {
            keys.resize(n, 0);
            tmp.resize(n, 0);
        }
        if hist.is_empty() {
            hist.resize(TOP_BUCKETS, 0);
        }
        f(&mut keys[..n], &mut tmp[..n], hist);
    });
}

/// Below this, an in-cache comparison sort beats another scatter pass.
const SMALL: usize = 64;

/// Base case: insertion sort on keys. The buckets reaching here are a
/// few dozen elements, where a general-purpose sort's dispatch overhead
/// (tens of thousands of calls per campaign sample) costs more than the
/// sort; a bare insertion loop stays in registers. Key order is
/// `partial_cmp` order of the values (monotone map).
fn smallsort(xs: &mut [u64]) {
    for i in 1..xs.len() {
        let v = xs[i];
        let mut j = i;
        while j > 0 && xs[j - 1] > v {
            xs[j] = xs[j - 1];
            j -= 1;
        }
        xs[j] = v;
    }
}

/// Counting histogram of byte `shift/8` over `xs`.
#[inline]
fn count_digits(xs: &[u64], shift: u32) -> [u32; 256] {
    let mut counts = [0u32; 256];
    for &k in xs.iter() {
        counts[digit(k, shift)] += 1;
    }
    counts
}

/// Stable counting scatter of `src` into `dst` by byte `shift/8`.
fn scatter(src: &[u64], dst: &mut [u64], shift: u32, counts: &[u32; 256]) {
    let mut offsets = [0u32; 256];
    let mut running = 0u32;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = running;
        running += c;
    }
    for &k in src {
        let d = digit(k, shift);
        dst[offsets[d] as usize] = k;
        offsets[d] += 1;
    }
}

/// Sorts `a`, leaving the result in `a`; `b` is same-length scratch.
fn msd_in_place(a: &mut [u64], b: &mut [u64], shift: u32) {
    if a.len() <= SMALL {
        smallsort(a);
        return;
    }
    let counts = count_digits(a, shift);
    msd_counted(a, b, shift, &counts);
}

/// [`msd_in_place`] with the digit histogram already taken (the entry
/// point fuses it into the validation prescan).
fn msd_counted(a: &mut [u64], b: &mut [u64], shift: u32, counts: &[u32; 256]) {
    if counts.iter().any(|&c| c as usize == a.len()) {
        // Constant byte: nothing to permute at this level.
        if shift > 0 {
            msd_in_place(a, b, shift - 8);
        }
        return;
    }
    scatter(a, b, shift, counts);
    let mut start = 0usize;
    for &c in counts.iter() {
        let end = start + c as usize;
        if c > 0 {
            if shift == 0 {
                // Keys fully consumed: bucket elements are identical.
                a[start..end].copy_from_slice(&b[start..end]);
            } else {
                msd_into(&mut b[start..end], &mut a[start..end], shift - 8);
            }
        }
        start = end;
    }
}

/// Sorts `src` (clobbering it), leaving the result in `dst`.
fn msd_into(src: &mut [u64], dst: &mut [u64], shift: u32) {
    if src.len() <= SMALL {
        smallsort(src);
        dst.copy_from_slice(src);
        return;
    }
    let counts = count_digits(src, shift);
    if counts.iter().any(|&c| c as usize == src.len()) {
        if shift > 0 {
            msd_into(src, dst, shift - 8);
        } else {
            dst.copy_from_slice(src);
        }
        return;
    }
    scatter(src, dst, shift, &counts);
    if shift == 0 {
        return; // buckets are key-equal: scatter order is final
    }
    let mut start = 0usize;
    for c in counts {
        let end = start + c as usize;
        if c > 0 {
            msd_in_place(&mut dst[start..end], &mut src[start..end], shift - 8);
        }
        start = end;
    }
}

/// Stable 8-pass LSD radix on `(key, value)` pairs with uniform-byte pass
/// skipping — the `-0.0`-safe path. Counting sort per byte is stable, so
/// `partial_cmp`-equal elements keep their input order exactly like the
/// stable comparison sort.
fn lsd_stable_pairs(xs: &mut [f64]) {
    let n = xs.len();
    let mut counts = [[0usize; 256]; 8];
    let mut a: Vec<(u64, f64)> = Vec::with_capacity(n);
    for &x in xs.iter() {
        let k = key_of(x);
        for (pass, c) in counts.iter_mut().enumerate() {
            c[((k >> (8 * pass)) & 0xFF) as usize] += 1;
        }
        a.push((k, x));
    }
    let mut b: Vec<(u64, f64)> = vec![(0, 0.0); n];
    let mut src_is_a = true;
    for (pass, c) in counts.iter().enumerate() {
        // A byte that is the same for every element permutes nothing.
        if c.contains(&n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut running = 0usize;
        for (o, &cnt) in offsets.iter_mut().zip(c.iter()) {
            *o = running;
            running += cnt;
        }
        let (src, dst) = if src_is_a {
            (&a[..], &mut b[..])
        } else {
            (&b[..], &mut a[..])
        };
        let shift = 8 * pass;
        for &(k, x) in src {
            let byte = ((k >> shift) & 0xFF) as usize;
            dst[offsets[byte]] = (k, x);
            offsets[byte] += 1;
        }
        src_is_a = !src_is_a;
    }
    let sorted = if src_is_a { &a } else { &b };
    for (out, &(_, x)) in xs.iter_mut().zip(sorted.iter()) {
        *out = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, seed: u64) -> impl Iterator<Item = u64> {
        let mut state = seed;
        (0..n).map(move |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
    }

    fn reference_sort(mut xs: Vec<f64>) -> Vec<f64> {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs
    }

    fn assert_bit_identical(xs: Vec<f64>) {
        let expected = reference_sort(xs.clone());
        let mut got = xs;
        // Exercise the radix path directly regardless of threshold.
        radix_sort_f64(&mut got);
        assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "index {i}: radix {g} vs comparison {e}"
            );
        }
    }

    #[test]
    fn key_transform_is_monotone() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-308,
            0.0,
            1e-308,
            0.5,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(key_of(w[0]) < key_of(w[1]), "{} !< {}", w[0], w[1]);
        }
        // The two zeros share a key (partial_cmp calls them equal).
        assert_eq!(key_of(-0.0), key_of(0.0));
    }

    #[test]
    fn key_transform_round_trips() {
        // val_of inverts key_of on every non-(-0.0) bit pattern class.
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1e-308,
            0.0,
            1e-308,
            0.5,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for &v in &vals {
            assert_eq!(val_of(key_of(v)), v.to_bits(), "round trip of {v}");
        }
        for u in lcg(10_000, 77) {
            let v = f64::from_bits(u >> 2); // clear top bits: finite, positive
            assert_eq!(val_of(key_of(v)), v.to_bits());
            let w = -v;
            if w.to_bits() != SIGN {
                assert_eq!(val_of(key_of(w)), w.to_bits());
            }
        }
    }

    #[test]
    fn sorts_mixed_signs_and_magnitudes() {
        let xs: Vec<f64> = lcg(10_000, 7)
            .map(|u| {
                let mag = (u >> 11) as f64 / (1u64 << 53) as f64;
                if u & 1 == 0 {
                    mag * 1e6
                } else {
                    -mag * 1e-6
                }
            })
            .collect();
        assert_bit_identical(xs);
    }

    #[test]
    fn sorts_nonnegative_samples() {
        // The common case: durations/utilizations, all >= 0, narrow range.
        let xs: Vec<f64> = lcg(50_000, 13)
            .map(|u| (u >> 11) as f64 / (1u64 << 53) as f64 * 300.0)
            .collect();
        assert_bit_identical(xs);
    }

    #[test]
    fn sorts_exponential_like_samples() {
        // Wide exponent spread, like inter-burst gaps.
        let xs: Vec<f64> = lcg(100_000, 17)
            .map(|u| {
                let uniform = (u >> 11) as f64 / (1u64 << 53) as f64;
                -100.0 * (1.0 - uniform).ln()
            })
            .collect();
        assert_bit_identical(xs);
    }

    #[test]
    fn handles_ties_zeros_and_infinities() {
        let mut xs = vec![0.0, -0.0, 1.0, -0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY];
        // Pad with duplicates to exercise counting ties.
        for u in lcg(1000, 3) {
            xs.push(f64::from(((u >> 13) % 7) as u32));
        }
        assert_bit_identical(xs);
    }

    #[test]
    fn negative_zeros_keep_stable_order() {
        // Interleave -0.0/+0.0 among other values; the stable fallback
        // must reproduce the comparison sort's bit pattern exactly.
        let xs: Vec<f64> = lcg(20_000, 29)
            .map(|u| match u % 5 {
                0 => -0.0,
                1 => 0.0,
                2 => ((u >> 20) % 100) as f64,
                _ => -(((u >> 20) % 100) as f64) - 1.0,
            })
            .collect();
        assert_bit_identical(xs);
    }

    #[test]
    fn all_equal_sample_is_untouched() {
        let mut xs = vec![42.5; 5000];
        radix_sort_f64(&mut xs);
        assert!(xs.iter().all(|&x| x == 42.5));
    }

    #[test]
    fn small_inputs_use_comparison_path() {
        let mut xs = vec![3.0, 1.0, 2.0];
        sort_f64(&mut xs);
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
        let mut empty: Vec<f64> = Vec::new();
        sort_f64(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn large_inputs_use_radix_path() {
        let mut xs: Vec<f64> = lcg(10_000, 21)
            .map(|u| (u >> 11) as f64 / (1u64 << 53) as f64)
            .collect();
        let expected = reference_sort(xs.clone());
        sort_f64(&mut xs);
        assert_eq!(xs, expected);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected_on_comparison_path() {
        let mut xs = vec![1.0, f64::NAN, 2.0];
        sort_f64(&mut xs);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected_on_radix_path() {
        let mut xs: Vec<f64> = (0..5000).map(f64::from).collect();
        xs[4321] = f64::NAN;
        radix_sort_f64(&mut xs);
    }
}
