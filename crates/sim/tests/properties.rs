//! Property-based tests for the simulator's core invariants.

use proptest::prelude::*;
use uburst_sim::events::{EventKind, EventQueue};
use uburst_sim::link::LinkSpec;
use uburst_sim::node::{NodeId, PortId};
use uburst_sim::packet::{segment_wire_size, segments_for, ACK_BYTES, HEADER_BYTES, MSS, MTU_FRAME};
use uburst_sim::rng::Rng;
use uburst_sim::routing::{Route, RoutingTable};
use uburst_sim::time::Nanos;

proptest! {
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), EventKind::Timer { node: NodeId(0), token: i as u64 });
        }
        let mut last = Nanos::ZERO;
        let mut popped = 0;
        while let Some(e) = q.pop_until(Nanos::MAX) {
            prop_assert!(e.time >= last, "time went backwards");
            last = e.time;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_ties_preserve_fifo(n in 1usize..200) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Nanos(42), EventKind::Timer { node: NodeId(0), token: i as u64 });
        }
        let mut expected = 0u64;
        while let Some(e) = q.pop_until(Nanos::MAX) {
            if let EventKind::Timer { token, .. } = e.kind {
                prop_assert_eq!(token, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn segmentation_covers_every_byte(bytes in 0u64..50_000_000) {
        let total = segments_for(bytes);
        // Segments carry the whole flow, no more than MSS each.
        let covered = u64::from(total) * u64::from(MSS);
        prop_assert!(covered >= bytes);
        prop_assert!(covered < bytes + u64::from(MSS) || bytes == 0);
        // Every segment's wire size is a valid frame.
        for seq in 0..total.min(3) {
            let w = segment_wire_size(bytes, seq);
            prop_assert!(w >= ACK_BYTES && w <= MTU_FRAME);
        }
        let last = segment_wire_size(bytes, total - 1);
        prop_assert!(last >= ACK_BYTES && last <= MTU_FRAME);
        // Payload accounting: total wire bytes minus per-segment headers
        // equals the application bytes (modulo minimum-frame padding on a
        // tiny final segment).
        if bytes > 0 && bytes % u64::from(MSS) == 0 {
            let wire: u64 = (0..total).map(|s| u64::from(segment_wire_size(bytes, s))).sum();
            prop_assert_eq!(wire - u64::from(total) * u64::from(HEADER_BYTES), bytes);
        }
    }

    #[test]
    fn serialization_time_is_monotone_in_size_and_speed(
        bytes_a in 64u32..9000,
        bytes_b in 64u32..9000,
        gbps in 1u32..100,
    ) {
        let slow = LinkSpec::gbps(f64::from(gbps), Nanos::ZERO);
        let fast = LinkSpec::gbps(f64::from(gbps) * 2.0, Nanos::ZERO);
        let (lo, hi) = if bytes_a < bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(slow.ser_time(lo) <= slow.ser_time(hi));
        prop_assert!(fast.ser_time(hi) <= slow.ser_time(hi));
        prop_assert!(slow.ser_time(lo) > Nanos::ZERO);
    }

    #[test]
    fn ecmp_hash_is_consistent_and_complete(
        seed in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
        width in 2u16..16,
    ) {
        let mut t = RoutingTable::new(seed);
        let ports: Vec<PortId> = (0..width).map(PortId).collect();
        let g = t.add_group(ports.clone());
        t.set_default(Route::Group(g));
        for &k in &keys {
            let p1 = t.lookup(NodeId(99), k, Nanos::ZERO).unwrap();
            let p2 = t.lookup(NodeId(99), k, Nanos::ZERO).unwrap();
            prop_assert_eq!(p1, p2, "flow hashing must be consistent");
            prop_assert!(ports.contains(&p1));
        }
    }

    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_sample_indices_distinct(seed in any::<u64>(), n in 1usize..64, frac in 0.0f64..1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "duplicates produced");
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn nanos_arithmetic_consistency(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (Nanos(a), Nanos(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).saturating_sub(y), x);
        prop_assert_eq!(x.min(y) + x.max(y), x + y);
        if b > 0 {
            prop_assert_eq!((x / b) * b + Nanos(a % b), x);
        }
    }
}
