//! Data collection shared by the figure harnesses.

use uburst_asic::CounterId;
use uburst_core::series::UtilSample;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

use crate::campaign::{port_bps, representative_port, single_port_spec};
use crate::pool::run_jobs;
use crate::scale::Scale;

/// One rack instance's single-port utilization samples.
pub struct PortUtilRun {
    /// Rack instance seed.
    pub seed: u64,
    /// Diurnal hour the campaign ran at.
    pub hour: f64,
    /// Per-interval utilization of the measured port.
    pub utils: Vec<UtilSample>,
}

/// Runs the paper's highest-resolution methodology for one rack type:
/// one representative port per rack instance, single byte counter at
/// `interval`, across the scale's rack count and sampled hours.
pub fn collect_single_port_utils(
    scale: Scale,
    rack_type: RackType,
    interval: Nanos,
) -> Vec<PortUtilRun> {
    collect_single_port_utils_spanned(
        scale.racks_per_type(),
        &scale.hours(),
        rack_type,
        interval,
        scale.campaign_span(),
    )
}

/// [`collect_single_port_utils`] with every knob explicit (used by tests
/// and ablations).
pub fn collect_single_port_utils_spanned(
    racks: usize,
    hours: &[f64],
    rack_type: RackType,
    interval: Nanos,
    span: Nanos,
) -> Vec<PortUtilRun> {
    // One job per (hour, rack instance); the engine preserves this order.
    let mut jobs = Vec::with_capacity(hours.len() * racks);
    for (i, &hour) in hours.iter().enumerate() {
        for r in 0..racks {
            jobs.push((1000 * (i as u64 + 1) + r as u64, hour));
        }
    }
    run_jobs(jobs, move |(seed, hour)| {
        let mut cfg = ScenarioConfig::new(rack_type, seed);
        cfg.hour = hour;
        let port = representative_port(&cfg);
        let bps = port_bps(&cfg, port);
        let (spec, port) = single_port_spec(cfg, Some(port.0 as usize), interval, span);
        PortUtilRun {
            seed,
            hour,
            utils: spec.run().utilization(CounterId::TxBytes(port), bps),
        }
    })
}

/// Flattens burst durations (µs) across rack instances.
pub fn all_burst_durations_us(runs: &[PortUtilRun], threshold: f64) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| {
            uburst_analysis::extract_bursts(&r.utils, threshold)
                .durations()
                .into_iter()
                .map(|d| d.as_micros_f64())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Flattens inter-burst gaps (µs) across rack instances.
pub fn all_gaps_us(runs: &[PortUtilRun], threshold: f64) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| {
            uburst_analysis::extract_bursts(&r.utils, threshold)
                .gaps
                .iter()
                .map(|g| g.as_micros_f64())
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_analysis::HOT_THRESHOLD;

    #[test]
    fn collects_runs_across_hours_and_racks() {
        let runs = collect_single_port_utils_spanned(
            2,
            &[20.0],
            RackType::Hadoop,
            Nanos::from_micros(25),
            Nanos::from_millis(30),
        );
        assert_eq!(runs.len(), 2);
        for r in &runs {
            assert!(r.utils.len() > 800, "run {} too short", r.seed);
        }
        let durations = all_burst_durations_us(&runs, HOT_THRESHOLD);
        assert!(!durations.is_empty(), "hadoop must burst");
        let gaps = all_gaps_us(&runs, HOT_THRESHOLD);
        assert!(gaps.len() + runs.len() >= durations.len());
    }
}
