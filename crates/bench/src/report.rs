//! Plain-text reporting helpers shared by the figure harnesses.

use uburst_analysis::Ecdf;

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an ECDF as `x  F(x)` rows at the given evaluation points, plus
/// headline quantiles — the text equivalent of one CDF curve in a figure.
pub fn print_cdf_table(name: &str, ecdf: &Ecdf, points: &[f64], unit: &str) {
    println!("{name}  (n={})", ecdf.len());
    let mut t = Table::new(&[&format!("x [{unit}]"), "F(x)"]);
    for &(x, f) in &ecdf.curve(points) {
        t.row(&[format!("{x:.0}"), format!("{f:.3}")]);
    }
    t.print();
    println!(
        "p50={:.1}{unit}  p90={:.1}{unit}  p99={:.1}{unit}  max={:.1}{unit}",
        ecdf.quantile(0.5),
        ecdf.quantile(0.9),
        ecdf.quantile(0.99),
        ecdf.max()
    );
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Percentage with one decimal.
pub fn fmt_fraction(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
        assert_eq!(fmt_fraction(0.123), "12.3%");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
