//! Property-style tests for the analysis library's invariants, driven by
//! a seeded `Rng` — deterministic across runs, no external dependencies.

use uburst_analysis::*;
use uburst_core::{Series, UtilSample};
use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

const CASES: u64 = 48;

fn random_utils(rng: &mut Rng, max_len: u64) -> Vec<UtilSample> {
    let n = rng.range(1, max_len) as usize;
    let dt = Nanos::from_micros(25);
    (0..n)
        .map(|i| UtilSample {
            t: dt * (i as u64 + 1),
            dt,
            util: rng.range_f64(0.0, 1.2),
        })
        .collect()
}

#[test]
fn burst_extraction_invariants() {
    let mut rng = Rng::new(0xa4_a1_01);
    for _ in 0..CASES {
        let samples = random_utils(&mut rng, 500);
        let thr = rng.range_f64(0.1, 0.9);
        let a = extract_bursts(&samples, thr);
        // Hot-sample accounting is exact.
        let hot_direct = samples.iter().filter(|s| s.util > thr).count();
        assert_eq!(a.hot_samples, hot_direct);
        assert_eq!(a.total_samples, samples.len());
        let in_bursts: usize = a.bursts.iter().map(|b| b.samples).sum();
        assert_eq!(in_bursts, hot_direct);
        // Structure: gaps fit between bursts; everything is ordered and positive.
        assert_eq!(a.gaps.len(), a.bursts.len().saturating_sub(1));
        for b in &a.bursts {
            assert!(b.end > b.start);
            assert!(b.samples >= 1);
        }
        for w in a.bursts.windows(2) {
            assert!(w[1].start >= w[0].end);
        }
        // Hot fraction is a fraction.
        assert!((0.0..=1.0).contains(&a.hot_fraction()));
    }
}

#[test]
fn hot_chain_matches_extraction() {
    let mut rng = Rng::new(0xa4_a1_02);
    for _ in 0..CASES {
        let samples = random_utils(&mut rng, 500);
        let thr = rng.range_f64(0.1, 0.9);
        let chain = hot_chain(&samples, thr);
        assert_eq!(chain.len(), samples.len());
        let hot = chain.iter().filter(|&&h| h).count();
        assert_eq!(hot, extract_bursts(&samples, thr).hot_samples);
    }
}

#[test]
fn markov_probabilities_are_probabilities() {
    let mut rng = Rng::new(0xa4_a1_03);
    for _ in 0..CASES {
        let n = rng.range(2, 400) as usize;
        let chain: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let m = fit_transition_matrix(&chain);
        if m.from0 > 0 {
            assert!((0.0..=1.0).contains(&m.p01));
            assert!(((m.p01 + m.p00()) - 1.0).abs() < 1e-12);
        }
        if m.from1 > 0 {
            assert!((0.0..=1.0).contains(&m.p11));
            assert!(((m.p11 + m.p10()) - 1.0).abs() < 1e-12);
        }
        assert_eq!(m.from0 + m.from1, chain.len() as u64 - 1);
    }
}

#[test]
fn ecdf_is_monotone() {
    let mut rng = Rng::new(0xa4_a1_04);
    for _ in 0..CASES {
        let n = rng.range(1, 300) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let e = Ecdf::new(xs);
        // Quantiles increase with q.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = e.quantile(i as f64 / 10.0);
            assert!(q >= last);
            last = q;
        }
        // CDF increases with x and brackets [0,1].
        let lo = e.fraction_at_or_below(e.min() - 1.0);
        let hi = e.fraction_at_or_below(e.max());
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
        assert!(e.fraction_at_or_below(e.quantile(0.5)) >= 0.5);
    }
}

#[test]
fn pearson_bounded_and_symmetric() {
    let mut rng = Rng::new(0xa4_a1_05);
    for _ in 0..CASES {
        let nx = rng.range(3, 100) as usize;
        let ny = rng.range(3, 100) as usize;
        let xs: Vec<f64> = (0..nx).map(|_| rng.range_f64(-1e3, 1e3)).collect();
        let ys: Vec<f64> = (0..ny).map(|_| rng.range_f64(-1e3, 1e3)).collect();
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        assert!((-1.0..=1.0).contains(&r));
        let r2 = pearson(&ys[..n], &xs[..n]);
        assert!((r - r2).abs() < 1e-12);
        // Perfect self-correlation unless degenerate.
        let self_r = pearson(&xs[..n], &xs[..n]);
        assert!(self_r == 0.0 || (self_r - 1.0).abs() < 1e-9);
    }
}

#[test]
fn relative_mad_properties() {
    let mut rng = Rng::new(0xa4_a1_06);
    for _ in 0..CASES {
        let n = rng.range(1, 32) as usize;
        let vals: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 10.0)).collect();
        let scale = rng.range_f64(0.1, 100.0);
        let m = relative_mad(&vals);
        assert!(m >= 0.0);
        // Scale invariance.
        let scaled: Vec<f64> = vals.iter().map(|v| v * scale).collect();
        assert!((relative_mad(&scaled) - m).abs() < 1e-9);
        // Perfectly balanced input has (numerically) zero MAD.
        let flat = vec![vals[0]; vals.len()];
        assert!(relative_mad(&flat) < 1e-9);
    }
}

#[test]
fn summary_is_ordered() {
    let mut rng = Rng::new(0xa4_a1_07);
    for _ in 0..CASES {
        let n = rng.range(1, 200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let s = Summary::of(&xs);
        assert!(s.min <= s.q1 + 1e-9);
        assert!(s.q1 <= s.median + 1e-9);
        assert!(s.median <= s.q3 + 1e-9);
        assert!(s.q3 <= s.max + 1e-9);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert_eq!(s.n, xs.len());
    }
}

#[test]
fn windows_conserve_deltas() {
    let mut rng = Rng::new(0xa4_a1_08);
    for _ in 0..CASES {
        let n = rng.range(2, 200) as usize;
        let deltas: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let width_us = rng.range(1, 500);
        // Build a cumulative series at 25us spacing.
        let mut series = Series::new();
        let mut total = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            total += d;
            series.push(Nanos(25_000 * (i as u64 + 1)), total);
        }
        let origin = Nanos(series.ts[0]);
        let end = Nanos(*series.ts.last().unwrap());
        if end > origin {
            let w = to_windows(&series, origin, Nanos::from_micros(width_us), end);
            let windowed: u64 = w.iter().map(|x| x.delta).sum();
            let expected: u64 = deltas[1..].iter().sum();
            assert_eq!(windowed, expected);
        }
    }
}

#[test]
fn kolmogorov_sf_is_decreasing() {
    let mut rng = Rng::new(0xa4_a1_09);
    for _ in 0..CASES {
        let a = rng.range_f64(0.0, 5.0);
        let b = rng.range_f64(0.0, 5.0);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(kolmogorov_sf(lo) >= kolmogorov_sf(hi));
        assert!((0.0..=1.0).contains(&kolmogorov_sf(a)));
    }
}

#[test]
fn hot_port_counts_bounded() {
    let mut rng = Rng::new(0xa4_a1_0a);
    for _ in 0..CASES {
        let n_ports = rng.range(1, 8) as usize;
        let dt = Nanos::from_micros(300);
        let series: Vec<Vec<UtilSample>> = (0..n_ports)
            .map(|_| {
                (0..50)
                    .map(|i| UtilSample {
                        t: dt * (i as u64 + 1),
                        dt,
                        util: rng.f64(),
                    })
                    .collect()
            })
            .collect();
        let counts = hot_port_counts(&series, 0.5);
        assert_eq!(counts.len(), 50);
        for c in counts {
            assert!(c <= series.len());
        }
    }
}
