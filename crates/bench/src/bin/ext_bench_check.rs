//! Bench-regression gate: compares a fresh set of `BENCH_*.json` results
//! against the committed baselines and fails on significant slowdowns.
//!
//! Usage:
//!
//! ```text
//! ext_bench_check <baseline_dir> <fresh_dir> [max_ratio]
//! ```
//!
//! For every harness (`analysis`, `framework`, `simulation`) the gate loads
//! `BENCH_<name>.json` from both directories and compares medians case by
//! case. A case whose fresh median exceeds `max_ratio` × its baseline
//! median (default 1.3) is a regression and fails the run. Cases present
//! only in the fresh results are new benchmarks (informational); cases
//! present only in the baseline mean coverage was lost and also fail —
//! a silently deleted benchmark is how regressions go unwatched.
//!
//! The threshold is deliberately loose: it is a tripwire for order-of-A
//! slowdowns (an accidental O(n log n) → O(n²), a lost fast path), not a
//! microbenchmark referee. Host-to-host variance on shared CI runners is
//! well inside 1.3×.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uburst_bench::benchjson::{parse_rows, BenchRow};

/// Harnesses the gate expects results for (one `BENCH_<name>.json` each).
const HARNESSES: &[&str] = &["analysis", "framework", "simulation"];

/// Default failure threshold: fresh median / baseline median.
const DEFAULT_MAX_RATIO: f64 = 1.3;

fn load(dir: &Path, name: &str) -> Result<Vec<BenchRow>, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_rows(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn check_harness(name: &str, baseline: &[BenchRow], fresh: &[BenchRow], max_ratio: f64) -> usize {
    println!("== BENCH_{name}.json ==");
    println!(
        "  {:<28} {:>12} {:>12} {:>8}",
        "case", "baseline ms", "fresh ms", "ratio"
    );
    let mut failures = 0;
    for base in baseline {
        let Some(new) = fresh.iter().find(|r| r.case == base.case) else {
            println!(
                "  {:<28} {:>12.4} {:>12} {:>8}  LOST",
                base.case, base.median_ms, "-", "-"
            );
            failures += 1;
            continue;
        };
        let ratio = new.median_ms / base.median_ms;
        let verdict = if ratio > max_ratio { "REGRESSED" } else { "ok" };
        println!(
            "  {:<28} {:>12.4} {:>12.4} {:>7.2}x  {verdict}",
            base.case, base.median_ms, new.median_ms, ratio
        );
        if ratio > max_ratio {
            failures += 1;
        }
    }
    for new in fresh {
        if !baseline.iter().any(|r| r.case == new.case) {
            println!(
                "  {:<28} {:>12} {:>12.4} {:>8}  new",
                new.case, "-", new.median_ms, "-"
            );
        }
    }
    failures
}

/// Cross-case invariant inside the fresh analysis results: the pooled
/// Pearson driver must not be slower than the serial one. On a one-core
/// host the pooled path degenerates to the serial kernel plus fixed
/// chunking overhead, so "pooled ≤ serial" holds whenever that overhead
/// is negligible — this gate is what catches it creeping back (as it did
/// when the pair-chunk fan-out shipped with a latency-bound dot kernel).
/// A small tolerance absorbs run-to-run noise between the two rows.
const POOLED_CASE: &str = "pearson_pooled_24x100k";
const SERIAL_CASE: &str = "pearson_matrix_24x100k";
const POOLED_TOLERANCE: f64 = 1.10;

fn check_pooled_not_slower(fresh: &[BenchRow]) -> usize {
    let (Some(pooled), Some(serial)) = (
        fresh.iter().find(|r| r.case == POOLED_CASE),
        fresh.iter().find(|r| r.case == SERIAL_CASE),
    ) else {
        println!("  pooled-vs-serial: rows missing, skipped");
        return 0;
    };
    let ratio = pooled.median_ms / serial.median_ms;
    let verdict = if ratio > POOLED_TOLERANCE {
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "  pooled-vs-serial: {:.4} / {:.4} = {ratio:.2}x  {verdict}",
        pooled.median_ms, serial.median_ms
    );
    usize::from(ratio > POOLED_TOLERANCE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: ext_bench_check <baseline_dir> <fresh_dir> [max_ratio]");
        return ExitCode::from(2);
    }
    let baseline_dir = PathBuf::from(&args[0]);
    let fresh_dir = PathBuf::from(&args[1]);
    let max_ratio = match args.get(2) {
        None => DEFAULT_MAX_RATIO,
        Some(s) => match s.parse::<f64>() {
            Ok(r) if r.is_finite() && r > 0.0 => r,
            _ => {
                eprintln!("invalid max_ratio {s:?}");
                return ExitCode::from(2);
            }
        },
    };

    println!(
        "bench regression gate: {} vs {} (fail above {max_ratio:.2}x)\n",
        baseline_dir.display(),
        fresh_dir.display()
    );
    let mut failures = 0;
    for name in HARNESSES {
        let base = match load(&baseline_dir, name) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let new = match load(&fresh_dir, name) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        failures += check_harness(name, &base, &new, max_ratio);
        if *name == "analysis" {
            failures += check_pooled_not_slower(&new);
        }
        println!();
    }

    if failures > 0 {
        println!("FAIL: {failures} case(s) regressed beyond {max_ratio:.2}x (or lost coverage)");
        ExitCode::FAILURE
    } else {
        println!("OK: no case regressed beyond {max_ratio:.2}x");
        ExitCode::SUCCESS
    }
}
