//! Extension experiment: ECN-based congestion response under µbursts.
//!
//! §7, "Implications for congestion control": "Traditional congestion
//! control algorithms either react to packet drops, RTT variation or ECN
//! as a congestion signal. All of these signals require at least RTT/2 to
//! arrive at the sender ... our measurements show that a large number of
//! µbursts are shorter than a single RTT."
//!
//! This experiment equips the simulated network with what the measured one
//! lacked — ECN marking at the ToR plus a DCTCP-style sender response —
//! and asks: how much of the µburst-driven loss does an RTT-scale signal
//! actually recover, and what happens to the bursts themselves?
//!
//! Run with `cargo run --release -p uburst-bench --bin ext_ecn_dctcp`.

use uburst_analysis::{extract_bursts, HOT_THRESHOLD};
use uburst_asic::CounterId;
use uburst_bench::campaign::run_campaign;
use uburst_bench::report::{fmt_bytes, Table};
use uburst_bench::run_jobs;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

fn main() {
    let span = Nanos::from_millis(200);
    println!("extension: ECN marking + DCTCP-style response, Hadoop rack at load 2.0");
    println!();

    let mut t = Table::new(&[
        "config",
        "drops",
        "peak_buffer",
        "hot%",
        "burst_p90us",
        "goodput",
    ]);
    let mut rows = Vec::new();

    let configs: Vec<(String, Option<u64>)> = vec![
        ("drop-only (paper's network)".into(), None),
        ("ECN K=150KB".into(), Some(150 << 10)),
        ("ECN K=60KB".into(), Some(60 << 10)),
        ("ECN K=25KB".into(), Some(25 << 10)),
    ];

    // The four ECN configurations are independent campaigns: pool them.
    let results = run_jobs(configs, |(name, threshold)| {
        let mut cfg = ScenarioConfig::new(RackType::Hadoop, 60_060);
        cfg.load = 2.0;
        cfg.clos.tor_switch.ecn_threshold = threshold;
        cfg.transport.ecn = threshold.is_some();
        let measured_port = PortId(2);
        let counters = vec![CounterId::TxBytes(measured_port), CounterId::BufferPeak];
        let run = run_campaign(cfg, counters, Nanos::from_micros(300), span);

        let utils = run.utilization(CounterId::TxBytes(measured_port), 10_000_000_000);
        let a = extract_bursts(&utils, HOT_THRESHOLD);
        let p90 = if a.bursts.is_empty() {
            0.0
        } else {
            uburst_analysis::quantile(
                &mut a
                    .durations()
                    .iter()
                    .map(|d| d.as_micros_f64())
                    .collect::<Vec<_>>(),
                0.9,
            )
        };
        let peak = run
            .series_for(CounterId::BufferPeak)
            .vs
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let stats = run.net.tor;
        (
            [
                name.clone(),
                format!("{}", stats.dropped_packets),
                fmt_bytes(peak),
                format!("{:.1}", a.hot_fraction() * 100.0),
                format!("{p90:.0}"),
                fmt_bytes(stats.tx_bytes),
            ],
            (name, stats.dropped_packets, peak, stats.tx_bytes),
        )
    });
    for (table_row, summary) in results {
        t.row(&table_row);
        rows.push(summary);
    }
    t.print();

    println!();
    println!("reading: DCTCP-style marking tames queue peaks and drops while");
    println!("sustaining goodput — but the burst *onsets* (initial windows, fan-in)");
    println!("are shorter than the signal's RTT, so hot periods persist: exactly");
    println!("the limitation the paper predicts for RTT-scale congestion signals,");
    println!("and why it suggests lower-latency signals or buffering for ubursts.");

    println!("\nchecks:");
    let (_, drops0, peak0, good0) = rows[0].clone();
    let (_, drops_k, peak_k, good_k) = rows[3].clone(); // K=25KB, the aggressive mark
    println!(
        "  [{}] ECN cuts drops sharply ({drops0} -> {drops_k})",
        if drops_k < drops0 / 2 || drops0 == 0 {
            "ok"
        } else {
            "MISS"
        }
    );
    println!(
        "  [{}] ECN lowers peak buffer occupancy ({} -> {})",
        if peak_k < peak0 || drops0 == 0 {
            "ok"
        } else {
            "MISS"
        },
        fmt_bytes(peak0),
        fmt_bytes(peak_k)
    );
    println!(
        "  [{}] goodput holds within 15% ({} -> {})",
        if (good_k as f64) > 0.85 * good0 as f64 {
            "ok"
        } else {
            "MISS"
        },
        fmt_bytes(good0),
        fmt_bytes(good_k)
    );
}
