//! Segment file format for the write-ahead log.
//!
//! A WAL is a sequence of **segment files**, each an append-only byte
//! stream:
//!
//! ```text
//! segment  := header record*
//! header   := magic("UBWALSEG") version(u32 LE)          ; 12 bytes
//! record   := len(u32 LE) crc32(u32 LE) payload[len]     ; crc over payload
//! payload  := seq(u64) watermark(u64) source(u32)
//!             campaign_len(u16) campaign[..]
//!             counter_len(u16) counter_label[..]
//!             n(u32) ts[n](u64 each) vs[n](u64 each)     ; all LE
//! ```
//!
//! Counters are serialized through their stable CSV label
//! ([`crate::store::counter_label`]), so the on-disk format shares the CSV
//! dump's compatibility story. The CRC32 (IEEE/zlib polynomial, in-repo —
//! the workspace stays dependency-free) covers the payload only; the
//! length field is implicitly validated by the CRC because a corrupted
//! length either overruns the segment (torn tail) or frames bytes whose
//! CRC cannot match.
//!
//! [`scan_segment`] is the recovery primitive: it walks a segment from the
//! front and stops at the first frame that is incomplete, fails its CRC,
//! or does not decode — everything before that point is returned as clean
//! records, everything after is a **torn tail** for the caller to truncate.
//! An append-only file can only be damaged at its end (a torn write at
//! crash), so stopping at the first bad frame never abandons good data.

use crate::batch::{Batch, SourceId};
use crate::series::Series;
use crate::ship::SeqBatch;
use crate::store::parse_counter_label;
use uburst_asic::CounterId;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"UBWALSEG";
/// On-disk format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of the segment header (magic + version).
pub const SEGMENT_HEADER_LEN: usize = 12;
/// Bytes of a record frame before its payload (length + CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// CRC32 (IEEE 802.3 / zlib, reflected, polynomial 0xEDB88320).
///
/// Slicing-by-8: eight derived tables fold one aligned 8-byte lane per
/// step instead of one byte, so record-sized payloads checksum at a few
/// bytes per cycle rather than a few cycles per byte. `TABLES[0]` is the
/// classic byte-at-a-time table (used for the unaligned tail), and each
/// `TABLES[k]` advances a byte's contribution `k` further positions, so
/// the eight XORed lookups are algebraically the same polynomial division
/// the scalar loop performs — same function, same values, pinned by the
/// reference-vector test below.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut k = 1;
        while k < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        t
    };
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The 12-byte header opening every segment.
pub fn segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h
}

/// Wraps a payload in a length + CRC frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends a decimal rendering of `v` (what `format!("{v}")` emits).
fn put_dec(out: &mut Vec<u8>, mut v: u32) {
    let mut digits = [0u8; 10];
    let mut n = 0;
    loop {
        digits[n] = b'0' + (v % 10) as u8;
        v /= 10;
        n += 1;
        if v == 0 {
            break;
        }
    }
    while n > 0 {
        n -= 1;
        out.push(digits[n]);
    }
}

/// Appends the length-prefixed counter label — byte-identical to
/// `put_str(out, &counter_label(c))` (asserted by test) but without the
/// `format!` heap allocation, since encode runs once per ingested record.
fn put_counter_label(out: &mut Vec<u8>, c: CounterId) {
    use CounterId as C;
    let start = out.len();
    out.extend_from_slice(&[0u8; 2]);
    let (prefix, port, bin): (&[u8], Option<u16>, Option<u8>) = match c {
        C::RxBytes(p) => (b"rx_bytes", Some(p.0), None),
        C::RxPackets(p) => (b"rx_packets", Some(p.0), None),
        C::TxBytes(p) => (b"tx_bytes", Some(p.0), None),
        C::TxPackets(p) => (b"tx_packets", Some(p.0), None),
        C::Drops(p) => (b"drops", Some(p.0), None),
        C::RxSizeHist(p, b) => (b"rx_size_hist", Some(p.0), Some(b)),
        C::TxSizeHist(p, b) => (b"tx_size_hist", Some(p.0), Some(b)),
        C::BufferLevel => (b"buffer_level", None, None),
        C::BufferPeak => (b"buffer_peak", None, None),
    };
    out.extend_from_slice(prefix);
    if let Some(p) = port {
        out.push(b'[');
        put_dec(out, p as u32);
        if let Some(b) = bin {
            out.push(b':');
            put_dec(out, b as u32);
        }
        out.push(b']');
    }
    let len = (out.len() - start - 2) as u16;
    out[start..start + 2].copy_from_slice(&len.to_le_bytes());
}

/// Serializes one sequenced batch into a record payload.
pub fn encode_record(sb: &SeqBatch) -> Vec<u8> {
    let n = sb.batch.samples.len();
    let mut out = Vec::with_capacity(32 + sb.batch.campaign.len() + 16 * n);
    encode_record_into(sb, &mut out);
    out
}

/// Serializes one sequenced batch onto the end of `out` (the
/// allocation-free twin of [`encode_record`] for reusable buffers).
pub fn encode_record_into(sb: &SeqBatch, out: &mut Vec<u8>) {
    let n = sb.batch.samples.len();
    out.extend_from_slice(&sb.seq.to_le_bytes());
    out.extend_from_slice(&sb.watermark.to_le_bytes());
    out.extend_from_slice(&sb.batch.source.0.to_le_bytes());
    put_str(out, &sb.batch.campaign);
    put_counter_label(out, sb.batch.counter);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for &t in &sb.batch.samples.ts {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &v in &sb.batch.samples.vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends the complete framed record for `sb` — `frame(&encode_record(sb))`,
/// byte for byte — onto `out` without intermediate allocations. The length
/// and CRC are patched in after the payload is encoded in place, so the
/// group-commit WAL path encodes a whole window into one buffer.
pub fn frame_record_into(sb: &SeqBatch, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_OVERHEAD]);
    encode_record_into(sb, out);
    let payload_len = out.len() - start - FRAME_OVERHEAD;
    let crc = crc32(&out[start + FRAME_OVERHEAD..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// A little-endian cursor over a record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn str(&mut self) -> Option<&'a str> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

/// Deserializes a record payload back into a sequenced batch. `None` means
/// the payload does not parse (wrong version / corruption the CRC cannot
/// see, e.g. a bug writing the record) — recovery treats it like a tear.
pub fn decode_record(payload: &[u8]) -> Option<SeqBatch> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let watermark = c.u64()?;
    let source = SourceId(c.u32()?);
    let campaign: std::sync::Arc<str> = c.str()?.into();
    let counter = parse_counter_label(c.str()?)?;
    let n = c.u32()? as usize;
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(c.u64()?);
    }
    let mut vs = Vec::with_capacity(n);
    for _ in 0..n {
        vs.push(c.u64()?);
    }
    if c.pos != payload.len() {
        return None; // trailing garbage: not a record we wrote
    }
    Some(SeqBatch {
        seq,
        watermark,
        batch: Batch {
            source,
            campaign,
            counter,
            samples: Series { ts, vs },
        },
    })
}

/// Why a scan stopped before the end of the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TearReason {
    /// The segment is shorter than its header, or the magic/version do not
    /// match (a crash mid-header, or not a segment file at all).
    BadHeader,
    /// The last frame's declared payload extends past the end of the file
    /// (a write torn mid-record).
    Truncated,
    /// A complete frame whose payload fails its CRC.
    CrcMismatch,
    /// CRC-valid payload that does not decode (format drift or a writer
    /// bug; never produced by a torn write).
    Undecodable,
}

/// A detected torn tail: everything from `offset` on is damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset (from segment start) where the damage begins — the
    /// length recovery should truncate the segment to.
    pub offset: usize,
    /// What the damage looked like.
    pub reason: TearReason,
}

/// The result of scanning one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records recovered, in append order.
    pub records: Vec<SeqBatch>,
    /// Bytes of clean data (header + whole valid records).
    pub clean_len: usize,
    /// The torn tail, if the segment does not end cleanly.
    pub torn: Option<TornTail>,
}

/// Walks a segment image from the front, returning every clean record and
/// the tear point, if any (see module docs for why first-tear-stops is
/// sound for append-only files).
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    if bytes.is_empty() {
        // A zero-length segment is *clean*: a crash tore its header before
        // any byte (or a prior recovery truncated exactly that damage
        // away). Reporting it torn would make recovery non-idempotent.
        return SegmentScan {
            records: Vec::new(),
            clean_len: 0,
            torn: None,
        };
    }
    if bytes.len() < SEGMENT_HEADER_LEN || bytes[..SEGMENT_HEADER_LEN] != segment_header() {
        return SegmentScan {
            records: Vec::new(),
            clean_len: 0,
            torn: Some(TornTail {
                offset: 0,
                reason: TearReason::BadHeader,
            }),
        };
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    loop {
        if pos == bytes.len() {
            return SegmentScan {
                records,
                clean_len: pos,
                torn: None,
            };
        }
        let tear = |reason| {
            Some(TornTail {
                offset: pos,
                reason,
            })
        };
        if bytes.len() - pos < FRAME_OVERHEAD {
            return SegmentScan {
                records,
                clean_len: pos,
                torn: tear(TearReason::Truncated),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + FRAME_OVERHEAD;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            return SegmentScan {
                records,
                clean_len: pos,
                torn: tear(TearReason::Truncated),
            };
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return SegmentScan {
                records,
                clean_len: pos,
                torn: tear(TearReason::CrcMismatch),
            };
        }
        let Some(record) = decode_record(payload) else {
            return SegmentScan {
                records,
                clean_len: pos,
                torn: tear(TearReason::Undecodable),
            };
        };
        records.push(record);
        pos = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    fn seq_batch(seq: u64, source: u32, pts: &[(u64, u64)]) -> SeqBatch {
        let mut s = Series::new();
        for &(t, v) in pts {
            s.push(Nanos(t), v);
        }
        SeqBatch {
            seq,
            watermark: seq + 1,
            batch: Batch {
                source: SourceId(source),
                campaign: "camp".into(),
                counter: CounterId::RxSizeHist(PortId(3), 5),
                samples: s,
            },
        }
    }

    fn segment_with(records: &[SeqBatch]) -> Vec<u8> {
        let mut bytes = segment_header().to_vec();
        for r in records {
            bytes.extend_from_slice(&frame(&encode_record(r)));
        }
        bytes
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// The manual label writer must emit exactly what the `format!`-based
    /// `counter_label` string would have — the on-disk format and the CSV
    /// dump share the label syntax, so drift here is format drift.
    #[test]
    fn put_counter_label_matches_counter_label_strings() {
        use crate::store::counter_label;
        let cases = [
            CounterId::RxBytes(PortId(0)),
            CounterId::RxPackets(PortId(7)),
            CounterId::TxBytes(PortId(10)),
            CounterId::TxPackets(PortId(65535)),
            CounterId::Drops(PortId(123)),
            CounterId::RxSizeHist(PortId(9), 0),
            CounterId::TxSizeHist(PortId(4094), 255),
            CounterId::BufferLevel,
            CounterId::BufferPeak,
        ];
        for c in cases {
            let mut fast = vec![0xEE];
            let mut slow = vec![0xEE];
            put_counter_label(&mut fast, c);
            put_str(&mut slow, &counter_label(c));
            assert_eq!(fast, slow, "{}", counter_label(c));
        }
    }

    /// The sliced kernel must agree with the textbook byte-at-a-time loop
    /// at every length (exercising the 8-byte lanes and every tail size).
    #[test]
    fn crc32_sliced_matches_scalar_at_every_tail_length() {
        fn scalar(bytes: &[u8]) -> u32 {
            let mut c = !0u32;
            for &b in bytes {
                let mut x = (c ^ b as u32) & 0xFF;
                for _ in 0..8 {
                    x = if x & 1 != 0 {
                        0xEDB8_8320 ^ (x >> 1)
                    } else {
                        x >> 1
                    };
                }
                c = x ^ (c >> 8);
            }
            !c
        }
        let mut data = Vec::with_capacity(257);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..257 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push((state >> 56) as u8);
        }
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), scalar(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn frame_record_into_matches_allocating_path_byte_for_byte() {
        let records = [
            seq_batch(0, 1, &[]),
            seq_batch(1, 1, &[(10, 1)]),
            seq_batch(7, 3, &[(20, 2), (30, 3), (40, u64::MAX)]),
        ];
        let mut buf = vec![0xAAu8; 5]; // pre-existing bytes must be preserved
        let mut expected = buf.clone();
        for r in &records {
            let start = buf.len();
            let n = frame_record_into(r, &mut buf);
            let reference = frame(&encode_record(r));
            assert_eq!(n, reference.len(), "reported frame length");
            assert_eq!(&buf[start..], &reference[..], "framed bytes");
            expected.extend_from_slice(&reference);
        }
        assert_eq!(buf, expected, "appends compose without clobbering");
    }

    #[test]
    fn record_codec_round_trips() {
        let sb = seq_batch(42, 7, &[(100, 1), (200, 2), (300, 3)]);
        let payload = encode_record(&sb);
        let back = decode_record(&payload).expect("decodes");
        assert_eq!(back.seq, 42);
        assert_eq!(back.watermark, 43);
        assert_eq!(back.batch.source, SourceId(7));
        assert_eq!(&*back.batch.campaign, "camp");
        assert_eq!(back.batch.counter, CounterId::RxSizeHist(PortId(3), 5));
        assert_eq!(back.batch.samples.ts, vec![100, 200, 300]);
        assert_eq!(back.batch.samples.vs, vec![1, 2, 3]);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let payload = encode_record(&seq_batch(0, 0, &[(1, 1)]));
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_none(), "cut at {cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_record(&extended).is_none());
    }

    #[test]
    fn scan_clean_segment() {
        let records = [
            seq_batch(0, 1, &[(10, 1)]),
            seq_batch(1, 1, &[(20, 2), (30, 3)]),
        ];
        let bytes = segment_with(&records);
        let scan = scan_segment(&bytes);
        assert!(scan.torn.is_none());
        assert_eq!(scan.clean_len, bytes.len());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].batch.samples.vs, vec![2, 3]);
    }

    #[test]
    fn scan_stops_at_torn_tail_for_every_cut_point() {
        let records = [
            seq_batch(0, 1, &[(10, 1)]),
            seq_batch(1, 1, &[(20, 2)]),
            seq_batch(2, 1, &[(30, 3)]),
        ];
        let bytes = segment_with(&records);
        // Record end offsets, scanning forward.
        let full = scan_segment(&bytes);
        assert_eq!(full.records.len(), 3);
        for cut in 0..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            if cut == 0 {
                // The empty segment is clean by definition (recovery
                // truncates header tears to exactly this).
                assert!(scan.torn.is_none());
                assert!(scan.records.is_empty());
                continue;
            }
            if cut < SEGMENT_HEADER_LEN {
                assert_eq!(
                    scan.torn,
                    Some(TornTail {
                        offset: 0,
                        reason: TearReason::BadHeader
                    })
                );
                continue;
            }
            // Every recovered record must be a clean prefix.
            assert!(scan.records.len() <= 3);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
            // A cut strictly inside a record leaves a torn tail at the last
            // clean boundary.
            if cut < bytes.len() {
                let clean_end = scan.clean_len;
                assert!(clean_end <= cut);
                if clean_end < cut {
                    assert!(scan.torn.is_some(), "cut {cut} left damage undetected");
                }
            }
        }
    }

    #[test]
    fn scan_detects_bit_flip_as_crc_mismatch() {
        let records = [seq_batch(0, 1, &[(10, 1)]), seq_batch(1, 1, &[(20, 2)])];
        let mut bytes = segment_with(&records);
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // flip a bit inside the last record's payload
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 1, "first record survives");
        assert_eq!(scan.torn.unwrap().reason, TearReason::CrcMismatch);
    }

    #[test]
    fn scan_rejects_foreign_file() {
        let scan = scan_segment(b"source,counter,timestamp_ns,value\n");
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.torn.unwrap().reason, TearReason::BadHeader);
    }

    #[test]
    fn frame_length_overrun_is_a_tear_not_a_panic() {
        let mut bytes = segment_header().to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.torn.unwrap().reason, TearReason::Truncated);
    }
}
