//! Burst survey: the paper's Figure 3 / Table 2 methodology across all
//! three rack types, side by side — a compact version of the full
//! `fig03_burst_duration` harness.
//!
//! Run with `cargo run --release --example burst_survey`.

use uburst::prelude::*;

/// Measures the representative port of one rack type at 25 µs.
fn survey(rack_type: RackType, seed: u64) -> (f64, f64, f64, f64, f64) {
    let mut cfg = ScenarioConfig::new(rack_type, seed);
    cfg.hour = 20.0; // evening peak
                     // Cache bursts live on the uplinks; Web/Hadoop burst toward servers.
    let port = match rack_type {
        RackType::Cache => PortId(cfg.n_servers as u16),
        _ => PortId(2),
    };
    let bps = if (port.0 as usize) < cfg.n_servers {
        cfg.clos.server_link.bandwidth_bps
    } else {
        cfg.clos.uplink.bandwidth_bps
    };

    let mut s = build_scenario(cfg);
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let campaign =
        CampaignConfig::single("bytes", CounterId::TxBytes(port), Nanos::from_micros(25));
    let poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, seed)
        .expect("valid campaign");
    let stop = warmup + Nanos::from_millis(250);
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));

    let series = &s
        .sim
        .node_mut::<Poller>(id)
        .take_series()
        .expect("in-memory")[0]
        .1;
    let utils = series.utilization(bps);
    let analysis = extract_bursts(&utils, HOT_THRESHOLD);
    let chain = hot_chain(&utils, HOT_THRESHOLD);
    let m = fit_transition_matrix(&chain);
    let mean_util: f64 = utils.iter().map(|u| u.util).sum::<f64>() / utils.len() as f64;
    let (p50, p90) = if analysis.bursts.is_empty() {
        (0.0, 0.0)
    } else {
        let e = Ecdf::new(
            analysis
                .durations()
                .iter()
                .map(|d| d.as_micros_f64())
                .collect(),
        );
        (e.quantile(0.5), e.quantile(0.9))
    };
    (
        mean_util,
        analysis.hot_fraction(),
        p50,
        p90,
        m.likelihood_ratio(),
    )
}

fn main() {
    println!("burst survey at 25us granularity (one representative port per rack)");
    println!(
        "{:>8}  {:>6}  {:>6}  {:>7}  {:>7}  {:>8}",
        "rack", "util%", "hot%", "p50[us]", "p90[us]", "markov_r"
    );
    for rack_type in RackType::ALL {
        let (util, hot, p50, p90, r) = survey(rack_type, 1234);
        println!(
            "{:>8}  {:>6.1}  {:>6.1}  {:>7.0}  {:>7.0}  {:>8.1}",
            rack_type.name(),
            util * 100.0,
            hot * 100.0,
            p50,
            p90,
            r
        );
    }
    println!();
    println!("paper (Fig 3 / Table 2): Web bursts are shortest (p90 = 50us) and the");
    println!("most clustered (r = 119.7); Hadoop bursts are longest (but < 0.5ms)");
    println!("and closest to memoryless (r = 15.6); Cache sits between.");
}
