//! Extension experiment: the collection pipeline under hardware faults.
//!
//! The paper's framework runs on production switch CPUs where counter
//! reads ride real bus transactions: they time out, stall, and return
//! stale data, and many register banks are only 32 bits wide (§4.1). This
//! harness arms the fault-injection layer and sweeps the transient-failure
//! rate on a fixed 25 µs byte-counter campaign, reporting
//!
//! * **sampling loss** — the Table-1 metric (deadline misses) plus polls
//!   abandoned after retry exhaustion,
//! * **accuracy** — the reconstructed mean rate vs. the fault-free run
//!   (wrap decoding must hide the 32-bit wraps entirely), and
//! * **accounting** — every injected fault must appear in the poller's
//!   stats (`read_errors == retries + abandoned`, injector and poller
//!   agree on timeouts and stale reads).
//!
//! Everything is deterministic from the printed seeds.
//!
//! Run with `cargo run --release -p uburst-bench --bin ext_fault_tolerance`.

use uburst_asic::{CounterId, FaultPlan};
use uburst_bench::campaign::{run_campaign_hardened, CampaignRun};
use uburst_bench::report::Table;
use uburst_core::poller::RetryPolicy;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

const SEED: u64 = 90_210;
const PORT: PortId = PortId(2);

fn run_at(fault_rate: f64, span: Nanos) -> CampaignRun {
    let cfg = ScenarioConfig::new(RackType::Hadoop, SEED);
    // The fault-free baseline uses full-width registers; every faulted run
    // also narrows the counters to 32 bits, so accuracy checks cover the
    // wrap decoder too.
    let plan = (fault_rate > 0.0).then(|| {
        FaultPlan::none(SEED ^ 0xFA17)
            .with_transient_failure(fault_rate)
            .with_stale_read(fault_rate / 4.0)
            .with_latency_spike(fault_rate / 2.0)
            .with_counter_bits(32)
    });
    run_campaign_hardened(
        cfg,
        vec![CounterId::TxBytes(PORT)],
        Nanos::from_micros(25),
        span,
        plan,
        RetryPolicy::default(),
        None,
    )
}

/// Mean rate in bytes/sec reconstructed from the campaign's series.
fn mean_rate(run: &CampaignRun) -> f64 {
    let s = &run.series[0].1;
    let dv = s.vs.last().unwrap() - s.vs[0];
    let dt = Nanos(s.ts.last().unwrap() - s.ts[0]).as_secs_f64();
    dv as f64 / dt
}

fn main() {
    let scale = uburst_bench::Scale::from_env();
    let span = scale.campaign_span();
    println!(
        "extension: fault tolerance of the collection pipeline ({} scale)",
        scale.label()
    );
    println!(
        "Hadoop rack seed {SEED}, port {}, 25us byte campaign, {span} span",
        PORT.0
    );
    println!("faulted runs add 32-bit counter wrap + stale reads + latency spikes");
    println!();

    // Every run (baseline, sweep points, replay pair) is an independent
    // campaign: fan all eight across the pool. Indices: 0 = baseline,
    // 1..=5 = sweep, 6..=7 = determinism replay of the 1% point.
    let sweep_rates = [0.0, 0.001, 0.01, 0.05, 0.10];
    let mut rates = vec![0.0];
    rates.extend(sweep_rates);
    rates.extend([0.01, 0.01]);
    let mut runs = uburst_bench::run_jobs(rates, |rate| run_at(rate, span));
    let base_rate = mean_rate(&runs[0]);

    let mut t = Table::new(&[
        "fault%",
        "polls",
        "loss%",
        "errors",
        "retries",
        "abandoned",
        "stale",
        "rate_MBs",
        "err%",
        "books",
    ]);
    let mut all_accounted = true;
    let mut one_pct_err = f64::MAX;
    let mut one_pct_loss = f64::MAX;
    for (i, &rate) in sweep_rates.iter().enumerate() {
        let run = &runs[1 + i];
        let st = run.poller_stats;
        let abandoned = st.abandoned_polls();
        let deadlines = st.polls + st.missed_deadlines;
        let loss = (st.missed_deadlines + abandoned) as f64 / deadlines as f64;
        let r = mean_rate(run);
        let err = (r - base_rate).abs() / base_rate;
        // Every fault the injector recorded must be visible in the
        // poller's own books.
        let books = match run.fault_stats {
            None => st.read_errors == 0 && st.stale_reads == 0,
            Some(f) => {
                f.bus_timeouts == st.read_errors
                    && f.stale_values == st.stale_reads
                    && st.read_errors == st.retries + abandoned
            }
        };
        all_accounted &= books;
        if rate == 0.01 {
            one_pct_err = err;
            one_pct_loss = loss;
        }
        t.row(&[
            format!("{:.1}", rate * 100.0),
            format!("{}", st.polls),
            format!("{:.2}", loss * 100.0),
            format!("{}", st.read_errors),
            format!("{}", st.retries),
            format!("{abandoned}"),
            format!("{}", st.stale_reads),
            format!("{:.2}", r / 1e6),
            format!("{:.3}", err * 100.0),
            if books { "ok".into() } else { "BAD".into() },
        ]);
    }
    t.print();

    // Determinism: the 1% run, replayed from the same seeds, must be
    // bit-identical down to its fault stream.
    let b = runs.pop().expect("replay run b");
    let a = runs.pop().expect("replay run a");
    let deterministic = a.poller_stats == b.poller_stats
        && a.fault_stats == b.fault_stats
        && a.series[0].1.vs == b.series[0].1.vs;

    println!();
    println!("reading: retries absorb transient bus timeouts (loss stays near the");
    println!("fault-free Table-1 level until the fault rate swamps the retry");
    println!("budget), and wrap decoding makes 32-bit registers invisible in the");
    println!("reconstructed rates.");
    println!("\nchecks:");
    println!(
        "  [{}] 1% faults + 32-bit wrap keeps rate error under 1% ({:.3}%)",
        if one_pct_err < 0.01 { "ok" } else { "MISS" },
        one_pct_err * 100.0
    );
    println!(
        "  [{}] 1% faults keeps sampling loss under 5% ({:.2}%)",
        if one_pct_loss < 0.05 { "ok" } else { "MISS" },
        one_pct_loss * 100.0
    );
    println!(
        "  [{}] every injected fault is accounted in poller stats",
        if all_accounted { "ok" } else { "MISS" }
    );
    println!(
        "  [{}] replay from seed {SEED} is bit-identical",
        if deterministic { "ok" } else { "MISS" }
    );
}
