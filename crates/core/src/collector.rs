//! The distributed collector service.
//!
//! "The CPU batches the samples before sending them to a distributed
//! collector service that is both fine-grained and scalable" (§4.1). Here
//! the service is a pool of real OS threads draining a bounded channel of
//! [`Batch`]es into a shared [`SampleStore`]. The simulation (producing
//! batches in simulated time) and the collector (consuming them in real
//! time) overlap exactly the way switch CPUs and the collection tier do in
//! production.
//!
//! Each worker runs under a **supervisor**: a panic inside the ingest loop
//! is caught, counted, and answered by respawning the drain loop in place —
//! up to a restart budget, after which the worker retires and the rest of
//! the pool carries its load. Live state is visible through
//! [`Collector::health`].
//!
//! Shutdown is structured: dropping all senders ends the stream; workers
//! drain what is queued, then exit; [`Collector::shutdown`] joins them and
//! hands back the store with a full ingest report.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::batch::Batch;
use crate::channel::{bounded, Receiver, Sender};
use crate::errors::CollectorError;
use crate::store::{GatePolicy, QuarantineReason, SampleStore};

/// Restarts a supervisor grants one worker before retiring it. Generous:
/// a persistent poison batch hits each worker at most a handful of times
/// because the batch is consumed by the attempt that dies on it.
const MAX_RESTARTS_PER_WORKER: u64 = 8;

/// A live snapshot of the collector's condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorHealth {
    /// Workers currently able to ingest (spawned minus retired).
    pub workers_alive: usize,
    /// Worker panics absorbed and answered with a respawn.
    pub restarts: u64,
    /// Batches merged into the store.
    pub ingested: u64,
    /// Batches quarantined by the store as malformed.
    pub quarantined: u64,
    /// Batches shed by upstream sinks before reaching the store
    /// (reported via [`crate::ChannelSink::with_loss_report`]).
    pub shed: u64,
    /// Redelivered batches dropped by sequence-number dedup.
    pub duplicates: u64,
    /// Batches known assigned by shippers but never received (the gap
    /// ledger's missing total).
    pub missing: u64,
    /// Sources the store's quarantine gate has taken out of service
    /// (consecutive-malformed-batch threshold crossed).
    pub source_quarantines: u64,
    /// Quarantined sources released back into service after a clean
    /// streak — quarantine is a round trip, not a one-way door.
    pub rejoins: u64,
}

/// Final ingest accounting returned by [`Collector::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectorReport {
    /// Batches merged into the store.
    pub ingested: u64,
    /// Batches quarantined as malformed.
    pub quarantined: u64,
    /// Worker panics absorbed by supervisors.
    pub restarts: u64,
    /// Batches shed upstream of the store (sink evictions).
    pub shed: u64,
    /// Redelivered batches deduplicated by sequence number.
    pub duplicates: u64,
    /// Batches known missing per the gap ledger.
    pub missing: u64,
    /// Sources gated by the store's quarantine gate.
    pub source_quarantines: u64,
    /// Gated sources that rejoined after a clean streak.
    pub rejoins: u64,
}

#[derive(Default)]
struct Health {
    alive: AtomicUsize,
    restarts: AtomicU64,
    ingested: AtomicU64,
    quarantined: AtomicU64,
}

/// The per-batch ingest operation a worker applies; injectable so the
/// supervisor's panic-containment is testable.
type IngestFn = Arc<dyn Fn(&SampleStore, &Batch) -> Result<(), QuarantineReason> + Send + Sync>;

/// A running collector service.
pub struct Collector {
    workers: Vec<JoinHandle<()>>,
    store: Arc<SampleStore>,
    health: Arc<Health>,
}

impl Collector {
    /// Starts `n_workers` collection threads draining a bounded channel of
    /// `capacity` batches. Returns the service handle and the sender side
    /// to clone into each switch's shipping path.
    pub fn start(
        n_workers: usize,
        capacity: usize,
    ) -> Result<(Collector, Sender<Batch>), CollectorError> {
        Self::start_with(n_workers, capacity, Arc::new(|s, b| s.ingest(b)))
    }

    /// [`Collector::start`] with an injectable ingest operation (testing
    /// seam for the supervisor's panic containment).
    pub(crate) fn start_with(
        n_workers: usize,
        capacity: usize,
        ingest: IngestFn,
    ) -> Result<(Collector, Sender<Batch>), CollectorError> {
        if n_workers == 0 {
            return Err(CollectorError::NoWorkers);
        }
        if capacity == 0 {
            return Err(CollectorError::ZeroCapacity);
        }
        let (tx, rx) = bounded::<Batch>(capacity);
        // The collector tier runs with the source-level quarantine gate on:
        // a switch that keeps shipping malformed batches is taken out of
        // service (and counted) instead of polluting quarantine forever,
        // and rejoins once it delivers a clean streak.
        let store = Arc::new(SampleStore::with_gate(GatePolicy::default()));
        let health = Arc::new(Health::default());
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = rx.clone();
            let store = Arc::clone(&store);
            let worker_health = Arc::clone(&health);
            let ingest = Arc::clone(&ingest);
            let handle = std::thread::Builder::new()
                .name(format!("uburst-collector-{i}"))
                .spawn(move || supervise(rx, store, worker_health, ingest))
                .map_err(|e| CollectorError::Spawn(e.to_string()))?;
            health.alive.fetch_add(1, Ordering::SeqCst);
            workers.push(handle);
        }
        Ok((
            Collector {
                workers,
                store,
                health,
            },
            tx,
        ))
    }

    /// The shared store (live view; series grow while workers run).
    pub fn store(&self) -> Arc<SampleStore> {
        Arc::clone(&self.store)
    }

    /// A point-in-time snapshot of the service's condition, readable while
    /// ingest is in flight.
    pub fn health(&self) -> CollectorHealth {
        let stats = self.store.stats();
        CollectorHealth {
            workers_alive: self.health.alive.load(Ordering::SeqCst),
            restarts: self.health.restarts.load(Ordering::Relaxed),
            ingested: self.health.ingested.load(Ordering::Relaxed),
            quarantined: self.health.quarantined.load(Ordering::Relaxed),
            shed: stats.shed_batches,
            duplicates: stats.duplicate_batches,
            missing: stats.missing_batches,
            source_quarantines: stats.source_quarantines,
            rejoins: stats.source_rejoins,
        }
    }

    /// Waits for all workers to drain and exit, returning the store and the
    /// ingest report. Callers must drop every `Sender` first or this blocks
    /// forever — that is the structured-shutdown contract, not a
    /// timeout-papered race. `Err(WorkerLost)` means a supervisor thread
    /// itself died, which no contained ingest panic can cause.
    pub fn shutdown(self) -> Result<(Arc<SampleStore>, CollectorReport), CollectorError> {
        for (i, w) in self.workers.into_iter().enumerate() {
            w.join()
                .map_err(|_| CollectorError::WorkerLost { worker: i })?;
        }
        let stats = self.store.stats();
        let report = CollectorReport {
            ingested: self.health.ingested.load(Ordering::Relaxed),
            quarantined: self.health.quarantined.load(Ordering::Relaxed),
            restarts: self.health.restarts.load(Ordering::Relaxed),
            shed: stats.shed_batches,
            duplicates: stats.duplicate_batches,
            missing: stats.missing_batches,
            source_quarantines: stats.source_quarantines,
            rejoins: stats.source_rejoins,
        };
        Ok((self.store, report))
    }
}

/// One worker's supervisor: drain until the stream ends; if the drain loop
/// panics, absorb it, count a restart, and drain again — the channel and the
/// store both recover from lock poisoning, so the batch that killed the
/// attempt is consumed and the rest of the stream survives.
fn supervise(rx: Receiver<Batch>, store: Arc<SampleStore>, health: Arc<Health>, ingest: IngestFn) {
    let mut restarts = 0u64;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            for batch in rx.iter() {
                match ingest(&store, &batch) {
                    Ok(()) => {
                        health.ingested.fetch_add(1, Ordering::Relaxed);
                        uburst_obs::counter_add("uburst_collector_batches_ingested_total", 1);
                    }
                    Err(_) => {
                        health.quarantined.fetch_add(1, Ordering::Relaxed);
                        uburst_obs::counter_add("uburst_collector_batches_quarantined_total", 1);
                    }
                };
            }
        }));
        match result {
            Ok(()) => break, // stream ended cleanly
            Err(_) => {
                restarts += 1;
                health.restarts.fetch_add(1, Ordering::Relaxed);
                uburst_obs::counter_add("uburst_collector_worker_restarts_total", 1);
                if restarts > MAX_RESTARTS_PER_WORKER {
                    break; // retire; the rest of the pool carries the load
                }
            }
        }
    }
    health.alive.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SourceId;
    use crate::series::Series;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    fn batch(source: u32, base_t: u64, n: usize) -> Batch {
        let mut s = Series::new();
        for i in 0..n {
            s.push(Nanos(base_t + i as u64), i as u64);
        }
        Batch {
            source: SourceId(source),
            campaign: "t".into(),
            counter: CounterId::TxBytes(PortId(0)),
            samples: s,
        }
    }

    #[test]
    fn collects_from_many_producers() {
        let (collector, tx) = Collector::start(4, 64).unwrap();
        let producers: Vec<_> = (0..8)
            .map(|src| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        tx.send(batch(src, k * 100, 10)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report.ingested, 8 * 50);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(store.total_samples(), 8 * 50 * 10);
        // Each source's series ends up timestamp-ordered even though
        // workers may have ingested its batches in a racy order.
        for src in 0..8 {
            let s = store
                .series(SourceId(src), CounterId::TxBytes(PortId(0)))
                .unwrap();
            assert_eq!(s.len(), 500);
            assert!(s.ts.windows(2).all(|w| w[1] > w[0]));
        }
    }

    #[test]
    fn bounded_channel_applies_backpressure_without_loss() {
        // Tiny capacity, slow consumer start: everything still arrives.
        let (collector, tx) = Collector::start(1, 1).unwrap();
        let producer = std::thread::spawn(move || {
            for k in 0..200u64 {
                tx.send(batch(0, k * 10, 2)).unwrap();
            }
        });
        producer.join().unwrap();
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report.ingested, 200);
        assert_eq!(store.total_samples(), 400);
    }

    #[test]
    fn shutdown_with_no_batches() {
        let (collector, tx) = Collector::start(2, 8).unwrap();
        drop(tx);
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report, CollectorReport::default());
        assert_eq!(store.total_samples(), 0);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        assert!(matches!(
            Collector::start(0, 8),
            Err(CollectorError::NoWorkers)
        ));
        assert!(matches!(
            Collector::start(2, 0),
            Err(CollectorError::ZeroCapacity)
        ));
    }

    #[test]
    fn malformed_batches_are_quarantined_not_fatal() {
        let (collector, tx) = Collector::start(2, 16).unwrap();
        tx.send(batch(0, 0, 5)).unwrap();
        let mut bad = batch(0, 100, 1);
        bad.samples.ts = vec![9, 3]; // non-monotonic
        bad.samples.vs = vec![1, 2];
        tx.send(bad).unwrap();
        tx.send(batch(0, 200, 5)).unwrap();
        drop(tx);
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report.ingested, 2);
        assert_eq!(report.quarantined, 1);
        assert_eq!(store.total_samples(), 10);
        assert_eq!(store.quarantined().len(), 1);
    }

    #[test]
    fn supervisor_contains_and_recovers_from_worker_panics() {
        // Poison batches (source 666) panic inside ingest; the supervisor
        // must absorb each, respawn, and keep draining everything else.
        let ingest: IngestFn = Arc::new(|store, b| {
            assert!(b.source != SourceId(666), "poison batch");
            store.ingest(b)
        });
        let (collector, tx) = Collector::start_with(2, 16, ingest).unwrap();
        for k in 0..10u64 {
            tx.send(batch(1, k * 100, 3)).unwrap();
            if k % 3 == 0 {
                tx.send(batch(666, k * 100, 1)).unwrap();
            }
        }
        drop(tx);
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report.ingested, 10, "every healthy batch survived");
        assert_eq!(report.restarts, 4, "one restart per poison batch");
        assert_eq!(store.total_samples(), 30);
        assert!(store
            .series(SourceId(666), CounterId::TxBytes(PortId(0)))
            .is_none());
    }

    #[test]
    fn health_reflects_live_state_and_retirement() {
        // Every batch is poison: workers burn their restart budget and
        // retire; health shows zero alive, and shutdown still succeeds.
        let ingest: IngestFn = Arc::new(|_, _| panic!("always poison"));
        let (collector, tx) = Collector::start_with(1, 64, ingest).unwrap();
        assert_eq!(collector.health().workers_alive, 1);
        for k in 0..(MAX_RESTARTS_PER_WORKER + 5) {
            tx.send(batch(0, k * 10, 1)).unwrap();
        }
        drop(tx);
        let (_store, report) = collector.shutdown().unwrap();
        assert_eq!(report.restarts, MAX_RESTARTS_PER_WORKER + 1);
        assert_eq!(report.ingested, 0);
    }

    #[test]
    fn upstream_shed_loss_is_visible_in_health_and_report() {
        let (collector, tx) = Collector::start(1, 8).unwrap();
        collector.store().note_shed(SourceId(4), 3);
        tx.send(batch(4, 0, 2)).unwrap();
        drop(tx);
        assert_eq!(collector.health().shed, 3);
        let (_store, report) = collector.shutdown().unwrap();
        assert_eq!(report.ingested, 1);
        assert_eq!(report.shed, 3, "sink loss reported next to quarantine");
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.missing, 0);
    }

    #[test]
    fn source_quarantine_round_trips_through_report() {
        // A source that turns malformed long enough to trip the gate, then
        // recovers: the report shows one quarantine AND one rejoin.
        let (collector, tx) = Collector::start(1, 64).unwrap();
        let policy = GatePolicy::default();
        tx.send(batch(0, 0, 2)).unwrap();
        for k in 0..policy.quarantine_after as u64 {
            let mut bad = batch(0, 1000 + k * 10, 1);
            bad.samples.ts = vec![9, 3];
            bad.samples.vs = vec![1, 2];
            tx.send(bad).unwrap();
        }
        for k in 0..policy.rejoin_after as u64 {
            tx.send(batch(0, 2000 + k * 10, 1)).unwrap();
        }
        drop(tx);
        let (store, report) = collector.shutdown().unwrap();
        assert_eq!(report.source_quarantines, 1);
        assert_eq!(report.rejoins, 1);
        assert!(!store.is_source_gated(SourceId(0)));
        assert_eq!(
            report.ingested,
            1 + policy.rejoin_after as u64,
            "clean batches during probation are merged, not refused"
        );
    }

    #[test]
    fn health_counts_ingest_while_running() {
        let (collector, tx) = Collector::start(2, 8).unwrap();
        tx.send(batch(0, 0, 2)).unwrap();
        // Wait (bounded) for a worker to drain it.
        for _ in 0..1000 {
            if collector.health().ingested == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let h = collector.health();
        assert_eq!(h.ingested, 1);
        assert_eq!(h.workers_alive, 2);
        drop(tx);
        collector.shutdown().unwrap();
    }
}
