//! Sample batching.
//!
//! "The CPU batches the samples before sending them to a distributed
//! collector service" (§4.1). Batching is what keeps a microsecond-rate
//! sampler from drowning the management network: at 25 µs per sample, a
//! single counter produces 40 k samples/s; shipped one message per sample
//! that is 40 k messages, batched at 4096 samples it is ten.

use std::sync::Arc;

use uburst_asic::CounterId;
use uburst_sim::time::Nanos;

use crate::series::Series;

/// Identifies one measured switch within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

/// A batch of samples for one counter of one source.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The switch the samples came from.
    pub source: SourceId,
    /// Campaign label (shared across batches of a campaign).
    pub campaign: Arc<str>,
    /// Which counter the samples belong to.
    pub counter: CounterId,
    /// The samples themselves.
    pub samples: Series,
}

/// Batching policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Flush after this many samples per counter.
    pub max_samples: usize,
    /// Flush when the oldest buffered sample is older than this.
    pub max_age: Nanos,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_samples: 4096,
            max_age: Nanos::from_millis(100),
        }
    }
}

/// Accumulates per-counter samples and cuts [`Batch`]es per the policy.
#[derive(Debug)]
pub struct Batcher {
    source: SourceId,
    campaign: Arc<str>,
    counters: Vec<CounterId>,
    policy: BatchPolicy,
    bufs: Vec<Series>,
    oldest: Option<Nanos>,
    /// Batches produced so far (diagnostics).
    pub batches_cut: u64,
}

impl Batcher {
    /// A batcher for one campaign on one source.
    pub fn new(
        source: SourceId,
        campaign: impl Into<Arc<str>>,
        counters: Vec<CounterId>,
        policy: BatchPolicy,
    ) -> Self {
        assert!(!counters.is_empty());
        assert!(policy.max_samples > 0);
        let bufs = counters.iter().map(|_| Series::new()).collect();
        Batcher {
            source,
            campaign: campaign.into(),
            counters,
            policy,
            bufs,
            oldest: None,
            batches_cut: 0,
        }
    }

    /// Adds one poll's values (aligned with the campaign's counter list).
    /// Returns batches to ship, if the policy triggered a flush.
    pub fn record(&mut self, t: Nanos, values: &[u64]) -> Vec<Batch> {
        assert_eq!(values.len(), self.counters.len(), "schema mismatch");
        for (buf, &v) in self.bufs.iter_mut().zip(values) {
            buf.push(t, v);
        }
        let oldest = *self.oldest.get_or_insert(t);
        let full = self.bufs[0].len() >= self.policy.max_samples;
        let stale = t.saturating_sub(oldest) >= self.policy.max_age;
        if full || stale {
            self.flush()
        } else {
            Vec::new()
        }
    }

    /// Cuts batches from whatever is buffered (used at campaign end).
    pub fn flush(&mut self) -> Vec<Batch> {
        self.oldest = None;
        if self.bufs[0].is_empty() {
            return Vec::new();
        }
        self.batches_cut += self.counters.len() as u64;
        self.counters
            .iter()
            .zip(self.bufs.iter_mut())
            .map(|(&counter, buf)| Batch {
                source: self.source,
                campaign: self.campaign.clone(),
                counter,
                samples: std::mem::take(buf),
            })
            .collect()
    }

    /// Samples currently buffered per counter.
    pub fn buffered(&self) -> usize {
        self.bufs[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::node::PortId;

    fn counters() -> Vec<CounterId> {
        vec![CounterId::TxBytes(PortId(0)), CounterId::TxBytes(PortId(1))]
    }

    #[test]
    fn flushes_at_max_samples() {
        let mut b = Batcher::new(
            SourceId(1),
            "c",
            counters(),
            BatchPolicy {
                max_samples: 3,
                max_age: Nanos::from_secs(10),
            },
        );
        assert!(b.record(Nanos(1), &[1, 10]).is_empty());
        assert!(b.record(Nanos(2), &[2, 20]).is_empty());
        let out = b.record(Nanos(3), &[3, 30]);
        assert_eq!(out.len(), 2, "one batch per counter");
        assert_eq!(out[0].samples.len(), 3);
        assert_eq!(out[0].counter, CounterId::TxBytes(PortId(0)));
        assert_eq!(out[1].samples.vs, vec![10, 20, 30]);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn flushes_on_age() {
        let mut b = Batcher::new(
            SourceId(1),
            "c",
            counters(),
            BatchPolicy {
                max_samples: 1_000_000,
                max_age: Nanos::from_micros(100),
            },
        );
        assert!(b.record(Nanos::from_micros(0), &[1, 1]).is_empty());
        assert!(b.record(Nanos::from_micros(50), &[2, 2]).is_empty());
        let out = b.record(Nanos::from_micros(100), &[3, 3]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].samples.len(), 3);
    }

    #[test]
    fn final_flush_drains() {
        let mut b = Batcher::new(SourceId(2), "c", counters(), BatchPolicy::default());
        b.record(Nanos(1), &[1, 1]);
        b.record(Nanos(2), &[2, 2]);
        let out = b.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].samples.len(), 2);
        assert!(b.flush().is_empty(), "second flush is empty");
        assert_eq!(b.batches_cut, 2);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn wrong_arity_panics() {
        let mut b = Batcher::new(SourceId(0), "c", counters(), BatchPolicy::default());
        b.record(Nanos(1), &[1]);
    }
}
