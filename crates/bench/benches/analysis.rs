//! Benchmarks for the analysis library on campaign-sized inputs
//! (a 2-minute 25 µs campaign is ~5 M samples; these use 1 M).
//!
//! Self-contained `Instant`-based harness (no external bench framework);
//! run with `cargo bench --bench analysis`.

use std::hint::black_box;
use std::time::Instant;

use uburst_analysis::{
    correlation_matrix, extract_bursts, fit_transition_matrix, hot_chain, ks_test_exponential,
    mad_per_period, Ecdf, HOT_THRESHOLD,
};
use uburst_bench::benchjson::BenchRecorder;
use uburst_bench::scale::Scale;
use uburst_core::series::UtilSample;
use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

fn bench<F: FnMut() -> u64>(rec: &mut BenchRecorder, name: &str, iters: usize, mut f: F) -> f64 {
    let iters = Scale::from_env().bench_iters(iters);
    let mut sink = black_box(f()); // warmup
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink = sink.wrapping_add(black_box(f()));
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    println!(
        "{name:<26} median {:>9.2} ms   best {:>9.2} ms",
        median * 1e3,
        times[0] * 1e3
    );
    rec.record(name, median * 1e3, times[0] * 1e3, iters as u32);
    black_box(sink);
    median
}

fn synth_utils(n: usize, seed: u64) -> Vec<UtilSample> {
    // A bursty synthetic series: sticky two-state chain plus noise.
    let mut rng = Rng::new(seed);
    let mut hot = false;
    let dt = Nanos::from_micros(25);
    (0..n)
        .map(|i| {
            if hot {
                hot = !rng.chance(0.3);
            } else {
                hot = rng.chance(0.02);
            }
            let util = if hot {
                rng.range_f64(0.6, 1.0)
            } else {
                rng.range_f64(0.0, 0.3)
            };
            UtilSample {
                t: dt * (i as u64 + 1),
                dt,
                util,
            }
        })
        .collect()
}

fn main() {
    let mut rec = BenchRecorder::new("analysis");
    let utils = synth_utils(1_000_000, 1);
    bench(&mut rec, "extract_bursts_1M", 20, || {
        extract_bursts(&utils, HOT_THRESHOLD).bursts.len() as u64
    });
    let chain = hot_chain(&utils, HOT_THRESHOLD);
    bench(&mut rec, "markov_fit_1M", 20, || {
        fit_transition_matrix(&chain).likelihood_ratio() as u64
    });

    let mut rng = Rng::new(2);
    let xs: Vec<f64> = (0..1_000_000).map(|_| rng.exp(100.0)).collect();
    bench(&mut rec, "ecdf_build_1M", 20, || {
        Ecdf::new(xs.clone()).quantile(0.9) as u64
    });
    bench(&mut rec, "quantile_select_1M", 20, || {
        let mut scratch = xs.clone();
        uburst_analysis::quantile(&mut scratch, 0.9) as u64
    });
    let smaller: Vec<f64> = xs.iter().take(100_000).copied().collect();
    bench(&mut rec, "ks_test_100k", 20, || {
        (ks_test_exponential(&smaller).p_value * 1e9) as u64
    });

    let mut rng = Rng::new(3);
    // 24 servers x 100k samples (a 250us campaign over 25s).
    let series: Vec<Vec<f64>> = (0..24)
        .map(|_| (0..100_000).map(|_| rng.f64()).collect())
        .collect();
    bench(&mut rec, "pearson_matrix_24x100k", 10, || {
        (correlation_matrix(&series)[0][1] * 1e9) as u64
    });
    let uplinks: Vec<Vec<f64>> = series[..4].to_vec();
    bench(&mut rec, "mad_per_period_4x100k", 10, || {
        mad_per_period(&uplinks).len() as u64
    });
    rec.flush();
}
