//! Reproduction harness for the paper's table01. See
//! `uburst_bench::figures::table01` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::table01::run(scale));
}
