//! Fleet-scale measurement campaigns (the `ext_fleet` experiment).
//!
//! The paper's framework polled thousands of ToRs; the figures so far
//! measured one rack at a time. This module runs the whole pipeline at
//! fleet width: N per-switch campaigns fan out on the worker pool (each
//! switch is an independent seeded rack simulation with its own fault
//! plan), their sample streams feed the aggregation tier in
//! [`uburst_core::fleet`], and the cross-rack readouts (ECMP uplink
//! balance, inter-rack correlation) are computed from the **merged global
//! store** — so every figure inherits the coverage ledger that says which
//! switches the data actually includes.
//!
//! Determinism: per-switch campaigns are pure functions of
//! `(fleet_seed, switch_index, flaky_rate)` and the pool returns them in
//! submission order; the aggregation tier is pumped single-threaded in
//! source order. A fleet report is therefore byte-identical across
//! `UBURST_THREADS` — including under injected failures.

use std::fmt::Write as _;

use uburst_analysis::{correlation_matrix, mad_per_period, mean_offdiagonal, Ecdf};
use uburst_asic::{CounterId, FaultPlan};
use uburst_core::batch::{Batch, SourceId};
use uburst_core::failpoint::RegionCrashPlan;
use uburst_core::fleet::{
    run_fleet_with_crashes, FleetConfig, FleetOutcome, HealthState, RoundInput, SwitchStream,
};
use uburst_core::link::LinkPlan;
use uburst_core::poller::RetryPolicy;
use uburst_core::series::Series;
use uburst_sim::bufpolicy::BufferPolicyCfg;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

use crate::campaign::run_campaign_hardened;
use crate::pool::{run_jobs, run_jobs_on};
use crate::report::Table;
use crate::scale::Scale;

/// Poller read-error fraction above which a switch reports itself
/// degraded to the fleet controller (the PR-1 signal, summarized per
/// round). Flaky switches inject transient failures at 10%, so this
/// cleanly separates them from fault-free neighbours.
const DEGRADED_READ_ERROR_FRAC: f64 = 0.02;

/// Switches sampled for the inter-rack correlation matrix (pairwise cost
/// is quadratic; a dozen racks is plenty to establish the null).
const CORR_SWITCHES: usize = 12;

/// One fleet campaign: how many switches, how the per-switch seeds
/// derive, what fraction of the fleet is flaky, and the per-switch
/// campaign window.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// ToRs in the fleet.
    pub n_switches: u32,
    /// Master seed; everything per-switch derives from it.
    pub fleet_seed: u64,
    /// Expected fraction of switches dealt the flaky fault profile
    /// (hashed per switch — deterministic, not sampled).
    pub flaky_rate: f64,
    /// Per-switch sampling interval.
    pub interval: Nanos,
    /// Per-switch campaign length (after warmup).
    pub span: Nanos,
    /// Rounds each switch's sample stream is cut into for shipping.
    pub rounds: u32,
    /// Buffer carving policy applied at every ToR in the fleet.
    pub policy: BufferPolicyCfg,
}

impl FleetSpec {
    /// A fleet campaign at the paper's fine (40 µs) granularity, with the
    /// campaign window scaled for CI vs. full runs.
    pub fn new(n_switches: u32, fleet_seed: u64, flaky_rate: f64, scale: Scale) -> Self {
        FleetSpec {
            n_switches,
            fleet_seed,
            flaky_rate,
            interval: Nanos::from_micros(40),
            span: match scale {
                Scale::Quick => Nanos::from_millis(25),
                Scale::Full => Nanos::from_millis(100),
            },
            rounds: 8,
            // The rack scenarios' production carve; `with_policy` sweeps
            // the alternatives at fleet width.
            policy: BufferPolicyCfg::dt(0.5),
        }
    }

    /// The same campaign under a different ToR carving policy.
    pub fn with_policy(mut self, policy: BufferPolicyCfg) -> Self {
        self.policy = policy;
        self
    }
}

/// Per-switch facts the report needs beyond what the aggregation tier
/// tracks itself.
#[derive(Debug, Clone)]
pub struct SwitchMeta {
    /// The switch.
    pub source: SourceId,
    /// Rack type (rotates Web/Cache/Hadoop across the fleet).
    pub rack: RackType,
    /// Whether the seed dealt this switch the flaky fault profile.
    pub flaky: bool,
    /// Poller read errors over polls — the degradation signal.
    pub read_error_frac: f64,
    /// The switch's uplink ports.
    pub uplinks: Vec<PortId>,
    /// Uplink line rate, for utilization conversion.
    pub uplink_bps: u64,
    /// Congestion discards at this switch's ToR over the campaign.
    pub drops: u64,
}

/// A completed fleet campaign: the merged outcome plus per-switch
/// metadata, ready to render.
pub struct FleetRun {
    /// The spec that produced this run.
    pub spec: FleetSpec,
    /// Aggregator crashes injected into the run (empty = none).
    pub crashes: RegionCrashPlan,
    /// Aggregation-tier outcome: global store, coverage ledger, regions.
    pub outcome: FleetOutcome,
    /// Per-switch metadata, in source order.
    pub switches: Vec<SwitchMeta>,
}

/// What one pool worker ships back: metadata plus the round stream.
struct SwitchRun {
    meta: SwitchMeta,
    stream: SwitchStream,
}

/// Runs one switch's campaign and cuts its series into shipping rounds.
/// Pure in `(spec, index)` — the determinism anchor for the whole fleet.
fn measure_switch(spec: &FleetSpec, index: u32) -> SwitchRun {
    let mut cfg = ScenarioConfig::for_fleet_switch(spec.fleet_seed, index);
    cfg.clos.tor_switch.policy = spec.policy;
    let rack = cfg.rack_type;
    let uplink_bps = cfg.clos.uplink.bandwidth_bps;
    let uplinks: Vec<PortId> = (0..cfg.clos.n_fabric)
        .map(|f| PortId((cfg.n_servers + f) as u16))
        .collect();
    let plan = FaultPlan::for_fleet_switch(spec.fleet_seed, index, spec.flaky_rate);
    let flaky = !plan.is_benign();
    let counters: Vec<CounterId> = uplinks.iter().map(|&p| CounterId::TxBytes(p)).collect();
    let run = run_campaign_hardened(
        cfg,
        counters,
        spec.interval,
        spec.span,
        flaky.then_some(plan),
        RetryPolicy::default(),
        None,
    );
    let drops = run.net.tor.dropped_packets;
    let st = run.poller_stats;
    let read_error_frac = if st.polls == 0 {
        1.0
    } else {
        st.read_errors as f64 / st.polls as f64
    };
    let degraded = read_error_frac > DEGRADED_READ_ERROR_FRAC;

    // Cut each counter's series into `rounds` shipping rounds. The whole
    // round carries the switch-side degradation verdict: a poller whose
    // reads are failing says so on every batch it sends.
    let source = SourceId(index);
    let n_rounds = spec.rounds as usize;
    let mut rounds: Vec<RoundInput> = (0..n_rounds)
        .map(|_| RoundInput {
            batches: Vec::new(),
            degraded,
        })
        .collect();
    for (counter, series) in &run.series {
        let n = series.len();
        if n == 0 {
            continue;
        }
        let per = n.div_ceil(n_rounds);
        for (r, round) in rounds.iter_mut().enumerate() {
            let lo = r * per;
            let hi = ((r + 1) * per).min(n);
            if lo >= hi {
                break;
            }
            let mut chunk = Series::new();
            for i in lo..hi {
                chunk.push(Nanos(series.ts[i]), series.vs[i]);
            }
            round.batches.push(Batch {
                source,
                campaign: "fleet".into(),
                counter: *counter,
                samples: chunk,
            });
        }
    }

    // A flaky switch's management uplink is as sick as its ASIC bus; a
    // healthy switch ships clean. Link seeds derive from the fleet seed
    // so the weather replays.
    let link = if flaky {
        LinkPlan::HOSTILE
    } else {
        LinkPlan::IDEAL
    };
    SwitchRun {
        meta: SwitchMeta {
            source,
            rack,
            flaky,
            read_error_frac,
            uplinks,
            uplink_bps,
            drops,
        },
        stream: SwitchStream {
            source,
            link,
            link_seed: spec.fleet_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            rounds,
        },
    }
}

/// Runs the fleet campaign: per-switch simulations on the worker pool,
/// then the aggregation tier single-threaded over the collected streams.
pub fn run_fleet_spec(spec: &FleetSpec) -> FleetRun {
    run_fleet_spec_crashed(spec, &RegionCrashPlan::none())
}

/// [`run_fleet_spec`] with an explicit worker-thread count — the
/// determinism test harness (`threads = 1` is the sequential baseline).
pub fn run_fleet_spec_on(threads: usize, spec: &FleetSpec) -> FleetRun {
    run_fleet_spec_crashed_on(threads, spec, &RegionCrashPlan::none())
}

/// [`run_fleet_spec`] with regional aggregator crashes injected at
/// byte-granular WAL offsets (the `ext_fleet` crash matrix). The crash
/// plan only touches the aggregation tier, which is pumped
/// single-threaded in source order — the report stays byte-identical
/// across `UBURST_THREADS` even mid-crash.
pub fn run_fleet_spec_crashed(spec: &FleetSpec, crashes: &RegionCrashPlan) -> FleetRun {
    assemble(
        spec,
        run_jobs((0..spec.n_switches).collect(), |i| measure_switch(spec, i)),
        crashes,
    )
}

/// [`run_fleet_spec_crashed`] with an explicit worker-thread count.
pub fn run_fleet_spec_crashed_on(
    threads: usize,
    spec: &FleetSpec,
    crashes: &RegionCrashPlan,
) -> FleetRun {
    assemble(
        spec,
        run_jobs_on(threads, (0..spec.n_switches).collect(), |i| {
            measure_switch(spec, i)
        }),
        crashes,
    )
}

fn assemble(spec: &FleetSpec, runs: Vec<SwitchRun>, crashes: &RegionCrashPlan) -> FleetRun {
    let mut switches = Vec::with_capacity(runs.len());
    let mut streams = Vec::with_capacity(runs.len());
    for r in runs {
        switches.push(r.meta);
        streams.push(r.stream);
    }
    let outcome = run_fleet_with_crashes(streams, &FleetConfig::default(), crashes);
    FleetRun {
        spec: *spec,
        crashes: crashes.clone(),
        outcome,
        switches,
    }
}

/// Per-uplink utilization series for one switch, read back from the
/// merged global store and truncated to a common length (partial
/// delivery can leave uplinks with different sample counts).
fn uplink_utils(run: &FleetRun, meta: &SwitchMeta) -> Option<Vec<Vec<f64>>> {
    let mut series: Vec<Vec<f64>> = Vec::with_capacity(meta.uplinks.len());
    for &p in &meta.uplinks {
        let s = run
            .outcome
            .store
            .series(meta.source, CounterId::TxBytes(p))?;
        if s.len() < 2 {
            return None;
        }
        series.push(
            s.utilization(meta.uplink_bps)
                .iter()
                .map(|u| u.util)
                .collect(),
        );
    }
    let min = series.iter().map(Vec::len).min().unwrap_or(0);
    if min == 0 {
        return None;
    }
    for s in &mut series {
        s.truncate(min);
    }
    Some(series)
}

/// Mean absolute off-diagonal entry of a correlation matrix.
fn mean_abs_offdiag(m: &[Vec<f64>]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v.abs();
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Renders the fleet report: coverage ledger first (the headline), then
/// region stats, ECMP balance per rack type, and the cross-rack
/// correlation readout, each computed only over included switches.
pub fn render_report(run: &FleetRun) -> String {
    let spec = &run.spec;
    let mut out = String::new();
    writeln!(
        out,
        "fleet campaign: {} switches, flaky rate {:.0}%, {} interval, {} span, {} rounds",
        spec.n_switches,
        spec.flaky_rate * 100.0,
        spec.interval,
        spec.span,
        spec.rounds
    )
    .unwrap();
    let flaky_count = run.switches.iter().filter(|s| s.flaky).count();
    writeln!(
        out,
        "fleet seed {:#x}; {} switches dealt the flaky profile; buffer policy {}",
        spec.fleet_seed,
        flaky_count,
        spec.policy.label()
    )
    .unwrap();
    for region in run.crashes.regions() {
        writeln!(
            out,
            "injected crash: region {region} aggregator dies at WAL byte {}",
            run.crashes.budget(region).unwrap()
        )
        .unwrap();
    }

    // The headline: what the data below actually covers.
    out.push('\n');
    out.push_str(&run.outcome.coverage.to_string());

    let mut regions = Table::new(&[
        "region",
        "switches",
        "forwarded",
        "deadline_misses",
        "refused",
        "rejoins",
        "crashes",
        "replayed",
    ]);
    for (i, r) in run.outcome.regions.iter().enumerate() {
        regions.row(&[
            format!("{i}"),
            format!("{}", r.switches),
            format!("{}", r.forwarded),
            format!("{}", r.deadline_misses),
            format!("{}", r.refused),
            format!("{}", r.rejoins),
            format!("{}", r.crashes),
            format!("{}", r.replayed),
        ]);
    }
    writeln!(out, "\n{}", regions.render()).unwrap();

    // Included switches only: the ledger above says who is missing.
    let included: Vec<&SwitchMeta> = run
        .switches
        .iter()
        .zip(&run.outcome.coverage.switches)
        .filter(|(_, c)| c.state != HealthState::Quarantined)
        .map(|(m, _)| m)
        .collect();

    // ECMP balance (Fig. 7 at fleet width): per-period relative MAD of
    // each included switch's uplinks, pooled per rack type.
    let mut ecmp = Table::new(&["rack", "switches", "periods", "mad_p50", "mad_p90"]);
    let mut checks: Vec<(String, bool)> = Vec::new();
    for rack in RackType::ALL {
        let mut pooled: Vec<f64> = Vec::new();
        let mut n_sw = 0usize;
        for meta in included.iter().filter(|m| m.rack == rack) {
            if let Some(series) = uplink_utils(run, meta) {
                pooled.extend(mad_per_period(&series));
                n_sw += 1;
            }
        }
        if pooled.is_empty() {
            ecmp.row(&[
                rack.name().to_string(),
                "0".into(),
                "0".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let ecdf = Ecdf::new(pooled);
        ecmp.row(&[
            rack.name().to_string(),
            format!("{n_sw}"),
            format!("{}", ecdf.len()),
            format!("{:.2}", ecdf.quantile(0.5)),
            format!("{:.2}", ecdf.quantile(0.9)),
        ]);
        checks.push((
            format!(
                "{} fleet: median fine MAD > 25% (got {:.0}%)",
                rack.name(),
                ecdf.quantile(0.5) * 100.0
            ),
            ecdf.quantile(0.5) > 0.25,
        ));
    }
    writeln!(
        out,
        "ECMP balance across uplinks (relative MAD per 40us period):"
    )
    .unwrap();
    writeln!(out, "{}", ecmp.render()).unwrap();

    // Cross-rack correlation: racks are independent tenants, so the
    // fleet-level null is ~0 between switches, while a ToR's own uplinks
    // share one rack's demand and co-vary.
    let mut intra_sum = 0.0;
    let mut intra_n = 0usize;
    let mut agg_series: Vec<Vec<f64>> = Vec::new();
    for meta in included.iter().take(CORR_SWITCHES) {
        if let Some(series) = uplink_utils(run, meta) {
            let m = correlation_matrix(&series);
            intra_sum += mean_offdiagonal(&m);
            intra_n += 1;
            let len = series[0].len();
            let mean: Vec<f64> = (0..len)
                .map(|i| series.iter().map(|s| s[i]).sum::<f64>() / series.len() as f64)
                .collect();
            agg_series.push(mean);
        }
    }
    let intra = if intra_n == 0 {
        0.0
    } else {
        intra_sum / intra_n as f64
    };
    let inter = if agg_series.len() < 2 {
        0.0
    } else {
        let min = agg_series.iter().map(Vec::len).min().unwrap_or(0);
        for s in &mut agg_series {
            s.truncate(min);
        }
        mean_abs_offdiag(&correlation_matrix(&agg_series))
    };
    writeln!(
        out,
        "correlation: intra-switch uplinks {intra:.3}, inter-rack (mean |r| over {} racks) {inter:.3}",
        agg_series.len()
    )
    .unwrap();
    checks.push((
        format!("independent racks are uncorrelated (mean |r| {inter:.3} < 0.1)"),
        inter < 0.1,
    ));
    checks.push((
        format!("a ToR's own uplinks co-vary more than other racks do ({intra:.3} > {inter:.3})"),
        intra > inter,
    ));

    // Coverage invariants, regardless of fault rate.
    let tiled = run
        .outcome
        .coverage
        .switches
        .iter()
        .all(|s| s.produced == s.stored + s.excluded + s.refused + s.undelivered());
    checks.push((
        "every produced batch lands in exactly one coverage column".into(),
        tiled,
    ));
    let acked_floor = run
        .outcome
        .coverage
        .switches
        .iter()
        .all(|s| s.stored >= s.acked);
    checks.push((
        "no acked batch is lost (stored >= shipper acked prefix)".into(),
        acked_floor,
    ));
    if !run.crashes.is_empty() {
        let crashed: u64 = run.outcome.regions.iter().map(|r| r.crashes).sum();
        let recovered: u64 = run.outcome.regions.iter().map(|r| r.recoveries).sum();
        checks.push((
            format!("every crashed aggregator recovered ({recovered}/{crashed})"),
            crashed > 0 && recovered == crashed,
        ));
        checks.push((
            format!(
                "crashed regions' switches re-sharded and returned ({} re-shard events)",
                run.outcome.coverage.resharded()
            ),
            run.outcome.coverage.resharded() > 0,
        ));
    }
    if spec.flaky_rate == 0.0 {
        checks.push((
            format!(
                "fault-free fleet has full coverage (fraction {:.4})",
                run.outcome.coverage.sample_fraction()
            ),
            run.outcome.coverage.sample_fraction() == 1.0
                && run.outcome.coverage.included() == run.switches.len(),
        ));
    } else {
        let quarantined = run
            .outcome
            .coverage
            .switches
            .iter()
            .filter(|s| s.state == HealthState::Quarantined)
            .count();
        checks.push((
            format!("flaky switches ({flaky_count}) are quarantined ({quarantined}) and excluded"),
            quarantined == flaky_count
                && run
                    .outcome
                    .coverage
                    .switches
                    .iter()
                    .filter(|s| s.state == HealthState::Quarantined)
                    .all(|s| s.excluded > 0),
        ));
        let clean_full = run
            .switches
            .iter()
            .zip(&run.outcome.coverage.switches)
            .filter(|(m, _)| !m.flaky)
            .all(|(_, c)| c.fraction() == 1.0);
        checks.push((
            "fault-free neighbours keep full coverage despite flaky peers".into(),
            clean_full,
        ));
    }

    writeln!(out, "\nfleet checks:").unwrap();
    for (desc, ok) in checks {
        writeln!(out, "  [{}] {desc}", if ok { "ok" } else { "MISS" }).unwrap();
    }
    out
}
