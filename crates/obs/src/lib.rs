//! Self-observability for the collection pipeline.
//!
//! The paper's framework measures *itself* as much as the network: §4.1
//! reports the poller's CPU cost, missed-interval rates, and the
//! dedicated-vs-shared-core tradeoff, because a µs-scale measurement
//! system is only trustworthy if its own overhead is accounted. This
//! crate is the reproduction's version of that discipline: a metrics
//! registry, lightweight tracing spans, and text/JSON exposition that
//! every pipeline stage (poller → collector → WAL → shipper → campaign
//! pool) reports into.
//!
//! ## Determinism contract
//!
//! Snapshots must be **byte-identical across `UBURST_THREADS`** (CI diffs
//! them), which forbids anything order- or wall-clock-dependent. The
//! registry therefore only offers commutative, associative aggregations:
//!
//! * counters — atomic add;
//! * gauges — atomic max (`fetch_max`), the only order-free "last value";
//! * histograms — fixed bucket bounds, atomic per-bucket counts, an
//!   atomic sum and max;
//! * spans — count / total / max of **simulated-time** durations.
//!
//! Values recorded are always simulated time or event counts, never
//! wall-clock readings, and exposition renders from `BTreeMap`s so output
//! order is independent of insertion order. Any interleaving of the same
//! multiset of updates yields the same snapshot.
//!
//! ## Zero cost when disabled
//!
//! Like the `log` crate, the recorder is a process-global that defaults
//! to **off**. Every recording entry point is gated on one relaxed
//! atomic load; when disabled it returns before touching any lock or
//! map, so instrumented hot paths (the poller's per-poll bookkeeping,
//! planned batch reads) stay within the `ext_bench_check` tripwire. Call
//! [`enable`] in a harness or test to start collecting and [`snapshot`]
//! to render what was recorded.
//!
//! ```
//! uburst_obs::enable();
//! uburst_obs::counter_add("uburst_demo_events_total", 3);
//! uburst_obs::span_record("campaign/poll", 25_000);
//! let snap = uburst_obs::snapshot();
//! assert!(snap.to_prometheus().contains("uburst_demo_events_total 3"));
//! # uburst_obs::reset();
//! # uburst_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod registry;

pub use expose::{HistSnapshot, Snapshot, SpanSnapshot};
pub use registry::{Counter, Histogram, Registry, SpanStat, NS_BOUNDS};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether the global recorder is collecting. Relaxed is enough: the flag
/// is a sampling switch, not a synchronization point, and instrumentation
/// sites tolerate observing a stale value for a few operations.
static ENABLED: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global registry (created on first use, even when disabled).
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Turns the global recorder on. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global recorder off. Already-registered metrics keep their
/// values; they simply stop accumulating.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently collecting. This is the single load
/// every instrumentation site pays when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to the counter `name`, creating it at zero on first use.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        registry().counter(name).add(n);
    }
}

/// Raises the gauge `name` to `v` if `v` exceeds its current value.
///
/// Max is the only "current value" aggregation that is independent of
/// update order, which the determinism contract requires; it suits the
/// high-watermark quantities the pipeline exposes (peak degradation
/// level, peak ship window, peak WAL segment count).
#[inline]
pub fn gauge_max(name: &str, v: u64) {
    if enabled() {
        registry().gauge_max(name, v);
    }
}

/// Records `v` (nanoseconds of simulated time, or any u64 measure) into
/// the fixed-bucket histogram `name`.
#[inline]
pub fn hist_observe(name: &str, v: u64) {
    if enabled() {
        registry().histogram(name).observe(v);
    }
}

/// Records one completed span on `path` with a **simulated-time**
/// duration of `dur_ns` nanoseconds.
///
/// Paths are `/`-separated (e.g. `campaign/poll/read`); the snapshot's
/// flamegraph rollup nests children under parents by path prefix. Spans
/// deliberately take an explicit duration instead of an RAII guard:
/// simulated clocks live in the simulator, not in a thread-local, and an
/// explicit handoff keeps wall-clock time out of the registry by
/// construction.
#[inline]
pub fn span_record(path: &str, dur_ns: u64) {
    if enabled() {
        registry().span(path).record(dur_ns);
    }
}

/// Renders an immutable snapshot of everything recorded so far.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Clears every metric and span. Intended for tests and multi-phase
/// harnesses that want per-phase snapshots from one process.
pub fn reset() {
    registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests serialize on this.
    static LOCK: Mutex<()> = Mutex::new(());

    fn fresh() -> std::sync::MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap();
        reset();
        enable();
        guard
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = fresh();
        disable();
        counter_add("uburst_test_off_total", 5);
        hist_observe("uburst_test_off_ns", 100);
        span_record("off/span", 10);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_expose() {
        let _g = fresh();
        counter_add("uburst_test_events_total", 2);
        counter_add("uburst_test_events_total", 3);
        let snap = snapshot();
        assert_eq!(snap.counters["uburst_test_events_total"], 5);
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE uburst_test_events_total counter"));
        assert!(text.contains("uburst_test_events_total 5"));
        disable();
    }

    #[test]
    fn gauge_keeps_the_maximum() {
        let _g = fresh();
        gauge_max("uburst_test_level", 2);
        gauge_max("uburst_test_level", 7);
        gauge_max("uburst_test_level", 4);
        assert_eq!(snapshot().gauges["uburst_test_level"], 7);
        disable();
    }

    #[test]
    fn histogram_buckets_sum_and_max() {
        let _g = fresh();
        hist_observe("uburst_test_cost_ns", 300);
        hist_observe("uburst_test_cost_ns", 30_000);
        hist_observe("uburst_test_cost_ns", u64::MAX / 2);
        let snap = snapshot();
        let h = &snap.hists["uburst_test_cost_ns"];
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX / 2);
        assert_eq!(h.sum, 300 + 30_000 + u64::MAX / 2);
        // Cumulative bucket counts end at the total.
        assert_eq!(*h.cumulative().last().unwrap(), 3);
        disable();
    }

    #[test]
    fn snapshot_is_update_order_independent() {
        let _g = fresh();
        let updates: &[(&str, u64)] = &[
            ("uburst_a_total", 1),
            ("uburst_b_total", 10),
            ("uburst_a_total", 2),
        ];
        for &(n, v) in updates {
            counter_add(n, v);
            hist_observe("uburst_order_ns", v);
        }
        let fwd = snapshot();
        reset();
        for &(n, v) in updates.iter().rev() {
            counter_add(n, v);
            hist_observe("uburst_order_ns", v);
        }
        let rev = snapshot();
        assert_eq!(fwd.to_prometheus(), rev.to_prometheus());
        assert_eq!(fwd.to_json(), rev.to_json());
        disable();
    }

    #[test]
    fn concurrent_updates_are_deterministic() {
        let _g = fresh();
        let run = || {
            reset();
            std::thread::scope(|s| {
                for t in 0..8 {
                    s.spawn(move || {
                        for i in 0..1000u64 {
                            counter_add("uburst_mt_total", 1);
                            hist_observe("uburst_mt_ns", (t * 1000 + i) % 70_000);
                            span_record("mt/work", 25_000);
                        }
                    });
                }
            });
            snapshot().to_prometheus()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("uburst_mt_total 8000"));
        disable();
    }
}
