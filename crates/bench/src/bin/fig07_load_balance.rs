//! Reproduction harness for the paper's fig07. See
//! `uburst_bench::figures::fig07` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig07::run(scale));
}
