//! The distributed collector service.
//!
//! "The CPU batches the samples before sending them to a distributed
//! collector service that is both fine-grained and scalable" (§4.1). Here
//! the service is a pool of real OS threads draining a bounded channel of
//! [`Batch`]es into a shared [`SampleStore`]. The simulation (producing
//! batches in simulated time) and the collector (consuming them in real
//! time) overlap exactly the way switch CPUs and the collection tier do in
//! production.
//!
//! Shutdown is structured: dropping all senders ends the stream; workers
//! drain what is queued, then exit; [`Collector::shutdown`] joins them and
//! hands back the store.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::batch::Batch;
use crate::store::SampleStore;

/// A running collector service.
pub struct Collector {
    workers: Vec<JoinHandle<u64>>,
    store: Arc<SampleStore>,
}

impl Collector {
    /// Starts `n_workers` collection threads draining a bounded channel of
    /// `capacity` batches. Returns the service handle and the sender side
    /// to clone into each switch's shipping path.
    pub fn start(n_workers: usize, capacity: usize) -> (Collector, Sender<Batch>) {
        assert!(n_workers > 0);
        let (tx, rx) = bounded::<Batch>(capacity);
        let store = Arc::new(SampleStore::new());
        let workers = (0..n_workers)
            .map(|i| {
                let rx: Receiver<Batch> = rx.clone();
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name(format!("uburst-collector-{i}"))
                    .spawn(move || {
                        let mut ingested = 0u64;
                        // Ends when every sender is dropped and the queue
                        // is drained.
                        for batch in rx.iter() {
                            store.ingest(&batch);
                            ingested += 1;
                        }
                        ingested
                    })
                    .expect("spawn collector worker")
            })
            .collect();
        (Collector { workers, store }, tx)
    }

    /// The shared store (live view; series grow while workers run).
    pub fn store(&self) -> Arc<SampleStore> {
        Arc::clone(&self.store)
    }

    /// Waits for all workers to drain and exit, returning the store and the
    /// total number of batches ingested. Callers must drop every `Sender`
    /// first or this blocks forever — that is the structured-shutdown
    /// contract, not a timeout-papered race.
    pub fn shutdown(self) -> (Arc<SampleStore>, u64) {
        let mut total = 0;
        for w in self.workers {
            total += w.join().expect("collector worker panicked");
        }
        (self.store, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SourceId;
    use crate::series::Series;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    fn batch(source: u32, base_t: u64, n: usize) -> Batch {
        let mut s = Series::new();
        for i in 0..n {
            s.push(Nanos(base_t + i as u64), i as u64);
        }
        Batch {
            source: SourceId(source),
            campaign: "t".into(),
            counter: CounterId::TxBytes(PortId(0)),
            samples: s,
        }
    }

    #[test]
    fn collects_from_many_producers() {
        let (collector, tx) = Collector::start(4, 64);
        let producers: Vec<_> = (0..8)
            .map(|src| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for k in 0..50u64 {
                        tx.send(batch(src, k * 100, 10)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let (store, ingested) = collector.shutdown();
        assert_eq!(ingested, 8 * 50);
        assert_eq!(store.total_samples(), 8 * 50 * 10);
        // Each source's series ends up timestamp-ordered even though
        // workers may have ingested its batches in a racy order.
        for src in 0..8 {
            let s = store
                .series(SourceId(src), CounterId::TxBytes(PortId(0)))
                .unwrap();
            assert_eq!(s.len(), 500);
            assert!(s.ts.windows(2).all(|w| w[1] > w[0]));
        }
    }

    #[test]
    fn bounded_channel_applies_backpressure_without_loss() {
        // Tiny capacity, slow consumer start: everything still arrives.
        let (collector, tx) = Collector::start(1, 1);
        let producer = std::thread::spawn(move || {
            for k in 0..200u64 {
                tx.send(batch(0, k * 10, 2)).unwrap();
            }
        });
        producer.join().unwrap();
        let (store, ingested) = collector.shutdown();
        assert_eq!(ingested, 200);
        assert_eq!(store.total_samples(), 400);
    }

    #[test]
    fn shutdown_with_no_batches() {
        let (collector, tx) = Collector::start(2, 8);
        drop(tx);
        let (store, ingested) = collector.shutdown();
        assert_eq!(ingested, 0);
        assert_eq!(store.total_samples(), 0);
    }
}
