//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run(scale) -> String`, returning the report the
//! corresponding binary prints. `run_all_experiments` concatenates them.

pub mod common;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod overhead;
pub mod table01;
pub mod table02;

use crate::scale::Scale;

/// One experiment's `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn(Scale) -> String);

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "fig01",
            "Drop rate vs utilization at SNMP granularity",
            fig01::run,
        ),
        ("fig02", "Drop time series on two ports", fig02::run),
        (
            "sec4.1",
            "Self-measurement overhead accounting",
            overhead::run,
        ),
        ("table01", "Sampling interval vs miss rate", table01::run),
        ("fig03", "CDF of uburst durations", fig03::run),
        ("table02", "Burst Markov model", table02::run),
        ("fig04", "CDF of inter-burst times", fig04::run),
        ("fig05", "Packet sizes inside/outside bursts", fig05::run),
        ("fig06", "CDF of link utilization", fig06::run),
        ("fig07", "Uplink load balance (MAD)", fig07::run),
        ("fig08", "Server-to-server correlation heatmaps", fig08::run),
        ("fig09", "Directionality of bursts", fig09::run),
        ("fig10", "Shared-buffer occupancy vs hot ports", fig10::run),
    ]
}
