//! The metric store: named counters, gauges, histograms, and span stats.
//!
//! Every aggregation here is commutative and associative over atomic u64
//! cells, which is what makes snapshots independent of thread count and
//! scheduling (see the crate docs for the full determinism contract).
//! Lookup is a read-locked `BTreeMap` probe; creation takes the write
//! lock once per name. Callers on genuinely hot paths can clone the
//! returned `Arc` handle and skip the map entirely.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::expose::{HistSnapshot, Snapshot, SpanSnapshot};

/// Fixed histogram bucket upper bounds, in nanoseconds of simulated time.
///
/// Spans the pipeline's dynamic range: sub-µs bus transactions through
/// second-scale campaign windows. Fixed (rather than per-metric) bounds
/// keep every histogram mergeable and every snapshot schema-stable.
pub const NS_BOUNDS: [u64; 16] = [
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with atomic bucket counts, sum, and max.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket counts; `counts[NS_BOUNDS.len()]` is the overflow
    /// (`+Inf`) bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..=NS_BOUNDS.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = NS_BOUNDS.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate statistics for one span path.
#[derive(Debug, Default)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// Records one completed span.
    pub fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Named metric store. One lives as the process global (see
/// [`crate::registry`]); tests may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStat>>>,
}

/// Read-mostly get-or-insert: one read-lock probe on the hot path, a
/// write lock only the first time a name is seen.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap().get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_owned()).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Raises the gauge `name` to `v` if larger (max aggregation).
    pub fn gauge_max(&self, name: &str, v: u64) {
        intern(&self.gauges, name).fetch_max(v, Ordering::Relaxed);
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.hists, name)
    }

    /// The span-stat accumulator for `path`.
    pub fn span(&self, path: &str) -> Arc<SpanStat> {
        intern(&self.spans, path)
    }

    /// Renders everything into an immutable, ordered snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: self
                .hists
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: self
                .spans
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered metric and span.
    pub fn reset(&self) {
        self.counters.write().unwrap().clear();
        self.gauges.write().unwrap().clear();
        self.hists.write().unwrap().clear();
        self.spans.write().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sorted_and_bucket_edges_are_inclusive() {
        assert!(NS_BOUNDS.windows(2).all(|w| w[0] < w[1]));
        let h = Histogram::default();
        h.observe(250); // exactly on the first bound → first bucket (le=250)
        h.observe(251);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
    }

    #[test]
    fn overflow_bucket_catches_everything_above_the_last_bound() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn private_registry_does_not_touch_the_global() {
        let r = Registry::new();
        r.counter("uburst_private_total").add(9);
        assert_eq!(r.snapshot().counters["uburst_private_total"], 9);
        assert!(!crate::snapshot()
            .counters
            .contains_key("uburst_private_total"));
    }
}
