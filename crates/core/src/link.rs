//! A deterministic lossy-link model for exercising the shipping protocol.
//!
//! The paper's pipeline ships batches from the switch CPU to a collector
//! over a real network; ours ships them through [`LossyLink`], a seeded
//! in-process model of everything a real network does to datagrams:
//! **drop**, **duplicate**, **reorder**, and **delay**. The shipping layer
//! ([`crate::ship`]) must converge to loss-free delivery over any
//! configuration of this link — that is exactly what the integration
//! tests assert.
//!
//! The link is tick-based to match the rest of the codebase's discrete
//! time: `send` enqueues a message with a fault roll and a delivery tick;
//! `tick` advances the clock and returns everything due, in delivery-tick
//! order with seeded tie-breaking (which is where reordering comes from —
//! a delayed message overtakes nothing, but its successors overtake it).
//! Same seed, same fault sequence, regardless of thread interleaving
//! outside the link.

use uburst_sim::rng::Rng;

/// Fault probabilities and delay bounds for a [`LossyLink`].
#[derive(Debug, Clone, Copy)]
pub struct LinkPlan {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is held for extra ticks (reordering it
    /// behind later traffic).
    pub delay_p: f64,
    /// Maximum extra ticks a delayed message is held (uniform in
    /// `1..=max_delay_ticks`).
    pub max_delay_ticks: u32,
}

impl LinkPlan {
    /// A perfect link: nothing dropped, duplicated, or delayed.
    pub const IDEAL: LinkPlan = LinkPlan {
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        max_delay_ticks: 0,
    };

    /// A hostile link for stress tests: drops a quarter of traffic,
    /// duplicates and delays heavily.
    pub const HOSTILE: LinkPlan = LinkPlan {
        drop_p: 0.25,
        dup_p: 0.15,
        delay_p: 0.30,
        max_delay_ticks: 6,
    };
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan {
            drop_p: 0.05,
            dup_p: 0.02,
            delay_p: 0.10,
            max_delay_ticks: 3,
        }
    }
}

/// What a [`LossyLink`] did to the traffic offered to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages offered via `send`.
    pub offered: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Messages held past their natural delivery tick.
    pub delayed: u64,
    /// Messages handed out by `tick`.
    pub delivered: u64,
}

#[derive(Debug)]
struct InFlight<T> {
    due: u64,
    order: u64,
    msg: T,
}

/// A seeded, tick-based lossy channel. See the module docs.
#[derive(Debug)]
pub struct LossyLink<T> {
    plan: LinkPlan,
    rng: Rng,
    now: u64,
    next_order: u64,
    queue: Vec<InFlight<T>>,
    stats: LinkStats,
}

impl<T: Clone> LossyLink<T> {
    /// A link with the given fault plan, seeded for determinism.
    pub fn new(plan: LinkPlan, seed: u64) -> Self {
        LossyLink {
            plan,
            rng: Rng::new(seed).fork(0x11_4B_10_55),
            now: 0,
            next_order: 0,
            queue: Vec::new(),
            stats: LinkStats::default(),
        }
    }

    fn enqueue(&mut self, msg: T, due: u64) {
        let order = self.next_order;
        self.next_order += 1;
        self.queue.push(InFlight { due, order, msg });
    }

    /// Offers a message to the link. It may be dropped, duplicated,
    /// and/or delayed; surviving copies appear in later `tick` results.
    pub fn send(&mut self, msg: T) {
        self.stats.offered += 1;
        if self.plan.drop_p > 0.0 && self.rng.f64() < self.plan.drop_p {
            self.stats.dropped += 1;
            return;
        }
        let mut due = self.now + 1;
        if self.plan.delay_p > 0.0
            && self.plan.max_delay_ticks > 0
            && self.rng.f64() < self.plan.delay_p
        {
            due += 1 + self.rng.below(self.plan.max_delay_ticks as u64);
            self.stats.delayed += 1;
        }
        if self.plan.dup_p > 0.0 && self.rng.f64() < self.plan.dup_p {
            // The copy rolls its own delay: duplicates may arrive far
            // apart, which is what makes receiver dedup interesting.
            let mut dup_due = self.now + 1;
            if self.plan.max_delay_ticks > 0 {
                dup_due += self.rng.below(self.plan.max_delay_ticks as u64 + 1);
            }
            self.stats.duplicated += 1;
            self.enqueue(msg.clone(), dup_due);
        }
        self.enqueue(msg, due);
    }

    /// Advances the link one tick and returns every message now due, in
    /// delivery order (due tick, then send order — so a delayed message
    /// is overtaken by everything sent after it with a nearer due tick).
    pub fn tick(&mut self) -> Vec<T> {
        self.now += 1;
        let now = self.now;
        let mut due: Vec<InFlight<T>> = Vec::new();
        let mut rest: Vec<InFlight<T>> = Vec::with_capacity(self.queue.len());
        for inflight in self.queue.drain(..) {
            if inflight.due <= now {
                due.push(inflight);
            } else {
                rest.push(inflight);
            }
        }
        self.queue = rest;
        due.sort_by_key(|f| (f.due, f.order));
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|f| f.msg).collect()
    }

    /// Messages still queued inside the link.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Drops everything still in flight (models the cable cut when one
    /// endpoint crashes: queued traffic dies with the connection).
    pub fn clear(&mut self) {
        self.stats.dropped += self.queue.len() as u64;
        self.queue.clear();
    }

    /// Cumulative fault accounting.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_everything_in_order() {
        let mut link = LossyLink::new(LinkPlan::IDEAL, 42);
        for i in 0..100u32 {
            link.send(i);
        }
        let got = link.tick();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(link.tick().is_empty());
        let s = link.stats();
        assert_eq!(s.offered, 100);
        assert_eq!(s.delivered, 100);
        assert_eq!(s.dropped + s.duplicated + s.delayed, 0);
    }

    #[test]
    fn faults_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut link = LossyLink::new(LinkPlan::HOSTILE, seed);
            let mut out = Vec::new();
            for i in 0..200u32 {
                link.send(i);
                out.extend(link.tick());
            }
            for _ in 0..16 {
                out.extend(link.tick());
            }
            (out, link.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seed, different fault pattern");
    }

    #[test]
    fn hostile_link_exercises_every_fault() {
        let mut link = LossyLink::new(LinkPlan::HOSTILE, 1);
        for i in 0..500u32 {
            link.send(i);
            link.tick();
        }
        for _ in 0..16 {
            link.tick();
        }
        let s = link.stats();
        assert!(s.dropped > 0, "no drops at p=0.25 over 500 sends");
        assert!(s.duplicated > 0, "no dups at p=0.15 over 500 sends");
        assert!(s.delayed > 0, "no delays at p=0.30 over 500 sends");
        assert_eq!(s.delivered, s.offered - s.dropped + s.duplicated);
        assert_eq!(link.in_flight(), 0, "drained after enough ticks");
    }

    #[test]
    fn delay_reorders_messages() {
        let plan = LinkPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.5,
            max_delay_ticks: 5,
        };
        let mut link = LossyLink::new(plan, 3);
        for i in 0..100u32 {
            link.send(i);
        }
        let mut arrived = Vec::new();
        for _ in 0..10 {
            arrived.extend(link.tick());
        }
        assert_eq!(arrived.len(), 100, "delay never loses messages");
        let mut sorted = arrived.clone();
        sorted.sort_unstable();
        assert_ne!(arrived, sorted, "at p=0.5 over 100 sends, some reorder");
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_models_a_cable_cut() {
        let plan = LinkPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 1.0,
            max_delay_ticks: 8,
        };
        let mut link = LossyLink::new(plan, 9);
        for i in 0..10u32 {
            link.send(i);
        }
        assert!(link.in_flight() > 0);
        link.clear();
        assert_eq!(link.in_flight(), 0);
        for _ in 0..20 {
            assert!(link.tick().is_empty());
        }
        assert_eq!(link.stats().dropped, 10);
    }
}
