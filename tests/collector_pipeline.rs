//! Integration of the simulated side (poller + batcher) with the real
//! threaded collector service: samples produced in simulated time must all
//! arrive, ordered, in the store.

use uburst::prelude::*;
use uburst::telemetry::{BatchPolicy, ChannelSink, Collector, SourceId};

#[test]
fn every_sample_reaches_the_store() {
    let (collector, tx) = Collector::start(3, 32).expect("collector starts");
    let mut expected = Vec::new();

    for (i, rack_type) in RackType::ALL.iter().enumerate() {
        let mut s = build_scenario(ScenarioConfig::new(*rack_type, 50 + i as u64));
        let warmup = s.recommended_warmup();
        s.sim.run_until(warmup);
        let port = s.host_ports()[0];
        let counters = vec![CounterId::TxBytes(port), CounterId::RxBytes(port)];
        let campaign = CampaignConfig::group("pair", counters.clone(), Nanos::from_micros(50));
        let sink = ChannelSink::new(
            SourceId(i as u32),
            "pair",
            counters.clone(),
            BatchPolicy {
                max_samples: 100,
                max_age: Nanos::from_millis(2),
            },
            tx.clone(),
        );
        let poller = Poller::new(
            s.counters.clone(),
            AccessModel::default(),
            campaign,
            99,
            Box::new(sink),
        )
        .expect("valid campaign");
        let stop = warmup + Nanos::from_millis(40);
        let id = poller
            .spawn(&mut s.sim, warmup, stop)
            .expect("valid window");
        s.sim.run_until(stop + Nanos::from_millis(1));
        let polls = s.sim.node_mut::<Poller>(id).stats().polls;
        expected.push((SourceId(i as u32), port, polls));
    }

    drop(tx);
    let (store, report) = collector.shutdown().expect("clean shutdown");
    assert!(report.ingested > 0);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.restarts, 0);

    for (source, port, polls) in expected {
        for counter in [CounterId::TxBytes(port), CounterId::RxBytes(port)] {
            let series = store
                .series(source, counter)
                .unwrap_or_else(|| panic!("missing series {source:?}/{counter:?}"));
            assert_eq!(
                series.len(),
                polls as usize,
                "{source:?}/{counter:?}: store has {} of {} samples",
                series.len(),
                polls
            );
            assert!(
                series.ts.windows(2).all(|w| w[1] > w[0]),
                "store series out of order"
            );
            // Cumulative counters never decrease.
            assert!(series.vs.windows(2).all(|w| w[1] >= w[0]));
        }
    }
}

#[test]
fn csv_export_round_trips_sample_counts() {
    let (collector, tx) = Collector::start(1, 8).expect("collector starts");
    let mut s = build_scenario(ScenarioConfig::new(RackType::Web, 123));
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let port = s.host_ports()[2];
    let counters = vec![CounterId::TxBytes(port)];
    let sink = ChannelSink::new(
        SourceId(7),
        "csv",
        counters.clone(),
        BatchPolicy::default(),
        tx.clone(),
    );
    let poller = Poller::new(
        s.counters.clone(),
        AccessModel::default(),
        CampaignConfig::group("csv", counters, Nanos::from_micros(100)),
        1,
        Box::new(sink),
    )
    .expect("valid campaign");
    let stop = warmup + Nanos::from_millis(20);
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));
    let polls = s.sim.node_mut::<Poller>(id).stats().polls as usize;

    // The poller's ChannelSink holds a Sender clone; the scenario must be
    // dropped (or the campaign finished and flushed) before shutdown can
    // observe disconnection.
    drop(s);
    drop(tx);
    let (store, _) = collector.shutdown().expect("clean shutdown");
    let mut csv = Vec::new();
    store.export_csv(&mut csv).expect("export");
    let text = String::from_utf8(csv).expect("utf8");
    let rows = text.lines().count() - 1; // minus header
    assert_eq!(rows, polls);
    assert!(text.starts_with("source,counter,timestamp_ns,value"));
    assert!(text.contains(&format!("7,tx_bytes[{}],", port.0)));
}
