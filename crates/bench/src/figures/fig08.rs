//! Figure 8 — Pearson correlation heatmaps between servers of a rack.
//!
//! Paper's findings (ToR-to-server utilization at 250 µs): Web shows almost
//! no correlation (stateless, user-driven); Hadoop shows modest
//! correlation; Cache shows strong correlation within server subsets that
//! participate in the same scatter-gather requests.

use std::fmt::Write;

use uburst_analysis::mean_offdiagonal;
use uburst_asic::CounterId;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

use crate::campaign::measure_port_groups;
use crate::pool::run_jobs;
use crate::report::Table;
use crate::scale::Scale;

/// Renders a correlation matrix as an ASCII heatmap.
fn ascii_heatmap(m: &[Vec<f64>]) -> String {
    // Buckets: ' ' <0.05, '.' <0.2, '+' <0.5, '#' <0.8, '@' >=0.8
    let glyph = |v: f64| match v.abs() {
        x if x < 0.05 => ' ',
        x if x < 0.2 => '.',
        x if x < 0.5 => '+',
        x if x < 0.8 => '#',
        _ => '@',
    };
    let mut s = String::new();
    for row in m {
        s.push_str("  |");
        for &v in row {
            s.push(glyph(v));
        }
        s.push_str("|\n");
    }
    s.push_str("  legend: ' '<.05  '.'<.2  '+'<.5  '#'<.8  '@'>=.8\n");
    s
}

/// Mean correlation between servers in the same pod-of-4 vs. different
/// pods.
fn pod_split(m: &[Vec<f64>], pod_size: usize) -> (f64, f64) {
    let mut same = (0.0, 0usize);
    let mut cross = (0.0, 0usize);
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate().skip(i + 1) {
            if i / pod_size == j / pod_size {
                same.0 += v;
                same.1 += 1;
            } else {
                cross.0 += v;
                cross.1 += 1;
            }
        }
    }
    (
        same.0 / same.1.max(1) as f64,
        cross.0 / cross.1.max(1) as f64,
    )
}

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let interval = Nanos::from_micros(250);
    let mut out = String::new();
    writeln!(
        out,
        "Figure 8: Pearson correlation of ToR-to-server utilization at 250us ({} scale)",
        scale.label()
    )
    .unwrap();

    let mut table = Table::new(&["rack", "mean_offdiag", "same_pod", "cross_pod"]);
    let mut maps = String::new();
    let mut summary = Vec::new();

    // One campaign + 24x24 correlation matrix per rack type, in workers.
    let panels = run_jobs(RackType::ALL.to_vec(), |rack_type| {
        let cfg = ScenarioConfig::new(rack_type, 8_642);
        let n = cfg.n_servers;
        let pod_size = cfg.cache.pod_size;
        let bps = cfg.clos.server_link.bandwidth_bps;
        let downlinks: Vec<PortId> = (0..n).map(|i| PortId(i as u16)).collect();
        let run = measure_port_groups(cfg, &downlinks, interval, scale.campaign_span());
        let series: Vec<Vec<f64>> = downlinks
            .iter()
            .map(|&p| {
                run.utilization(CounterId::TxBytes(p), bps)
                    .iter()
                    .map(|u| u.util)
                    .collect()
            })
            .collect();
        // Pooled rows; bit-identical to the serial matrix (nested pools
        // share one budget, so this never oversubscribes).
        let m = crate::pearson_pool::correlation_matrix_pooled(&series);
        let off = mean_offdiagonal(&m);
        let (same, cross) = pod_split(&m, pod_size);
        (off, same, cross, ascii_heatmap(&m))
    });
    for (rack_type, (off, same, cross, heatmap)) in RackType::ALL.into_iter().zip(panels) {
        summary.push((rack_type, off, same, cross));
        table.row(&[
            rack_type.name().to_string(),
            format!("{off:.3}"),
            format!("{same:.3}"),
            format!("{cross:.3}"),
        ]);
        writeln!(maps, "\n{} server x server heatmap:", rack_type.name()).unwrap();
        maps.push_str(&heatmap);
    }

    writeln!(out, "{}", table.render()).unwrap();
    out.push_str(&maps);
    writeln!(out, "\npaper-shape checks:").unwrap();
    let web = summary.iter().find(|s| s.0 == RackType::Web).unwrap();
    let cache = summary.iter().find(|s| s.0 == RackType::Cache).unwrap();
    let hadoop = summary.iter().find(|s| s.0 == RackType::Hadoop).unwrap();
    writeln!(
        out,
        "  [{}] Web: almost no correlation (mean offdiag {:.3})",
        if web.1.abs() < 0.05 { "ok" } else { "MISS" },
        web.1
    )
    .unwrap();
    writeln!(
        out,
        "  [{}] Cache: strong same-pod correlation, weak cross-pod ({:.2} vs {:.2})",
        if cache.2 > 0.4 && cache.2 > 3.0 * cache.3.max(0.01) {
            "ok"
        } else {
            "MISS"
        },
        cache.2,
        cache.3
    )
    .unwrap();
    writeln!(
        out,
        "  [{}] Hadoop: modest correlation, between Web and Cache ({:.3})",
        if hadoop.1 > web.1 && hadoop.1 < cache.2 {
            "ok"
        } else {
            "MISS"
        },
        hadoop.1
    )
    .unwrap();
    out
}
