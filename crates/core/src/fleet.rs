//! Fleet-scale collection with graceful partial failure and crash-safe
//! regional aggregation.
//!
//! The paper's framework polled thousands of ToRs; every campaign in this
//! repo so far measured one. This module is the aggregation tier for the
//! jump: N switches, each shipping sequenced batches over its own lossy
//! link ([`crate::link`]) through a **regional aggregator** — each region
//! a WAL-backed [`DurableStore`] of its own — into one global
//! [`SampleStore`], per-switch sequence spaces merged by the go-back-N
//! receiver, exactly the PR-3 shipping protocol fanned out.
//!
//! At fleet scale the interesting failure is partial: 3% of switches
//! flaky, one rack's uplink black-holed, an aggregator stalling. Every
//! switch therefore carries an explicit health state machine
//! ([`HealthState`]: Healthy → Degraded → Quarantined → Recovered) driven
//! by switch-side degradation signals and aggregator-side
//! deadline/straggler detection, with bounded retry+backoff probes for
//! quarantined lanes.
//!
//! **Aggregators crash too.** A [`RegionCrashPlan`] kills a region's WAL
//! storage at a byte-granular offset of its own write stream, mid-round
//! ([`TornStorage`] budget semantics — the fatal write applies a prefix
//! and dies). While the region is down its switches are **re-sharded** to
//! the survivors by rendezvous hashing ([`rendezvous_region`]): the
//! mapping is a pure function of `(switch, live-region set)`, so it is
//! independent of thread count and of the history that led to the outage.
//! A migrated stream is *adopted* by its new region at the shipper's acked
//! prefix ([`DurableStore::adopt_source`]) — the go-back-N window
//! retransmits everything unacked, the adopted prefix is never waited for
//! (it is durable in the dead region's WAL), and sequence dedup makes the
//! overlap harmless. After a bounded downtime the region **recovers**:
//! its WAL is replayed ([`DurableStore::recover_replay`]), the durable
//! prefix — a superset of everything it ever acked — is fed into the
//! global store, and rendezvous hashing sends its switches home.
//!
//! The headline property survives all of it: a figure computed under
//! partial failure *says so*. Every [`FleetOutcome`] carries a
//! [`CoverageLedger`] annotating which switches (and what fraction of
//! their samples) the data includes, per health state, with re-shard and
//! replay events on the books — and `produced = stored + excluded +
//! refused + undelivered` tiles exactly at every crash offset
//! (`tests/region_failover.rs` sweeps hundreds of them).
//!
//! The module is simulation-agnostic: it consumes per-switch **round
//! streams** of already-cut [`Batch`]es ([`SwitchStream`]) so the
//! orchestration layer can produce them however it likes (the bench crate
//! fans per-switch simulations out on its worker pool, then pumps this
//! aggregation tier single-threaded in switch order — which is what keeps
//! fleet reports byte-identical across `UBURST_THREADS`).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::batch::{Batch, SourceId};
use crate::failpoint::{RegionCrashPlan, TornStorage};
use crate::link::{LinkPlan, LossyLink};
use crate::ship::{AckMsg, SeqBatch, Shipper, ShipperConfig};
use crate::store::{SampleStore, SeqIngest};
use crate::wal::{DurableStore, FsyncPolicy, MemStorage, WalConfig};

/// One switch's health as seen by the fleet controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Delivering on deadline with acceptable coverage.
    Healthy,
    /// Recent bad rounds (degradation signal, refusals, straggling, or a
    /// coverage miss) but still in service.
    Degraded,
    /// Taken out of service after too many consecutive bad rounds. Probed
    /// with bounded backoff; its rounds are excluded *and accounted*.
    Quarantined,
    /// Back in service after a clean streak — behaves as Healthy, but the
    /// label survives so coverage reports show the round trip.
    Recovered,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovered => "recovered",
        };
        write!(f, "{s}")
    }
}

/// Tuning for the per-switch health state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Known-missing fraction of a source's assigned batches above which a
    /// round counts as bad (receiver-side coverage signal).
    pub miss_watermark: f64,
    /// Rounds a switch may hold outstanding batches without its contiguous
    /// prefix advancing before it counts as a straggler (aggregator-side
    /// deadline signal).
    pub deadline_rounds: u32,
    /// Consecutive bad rounds before a Degraded switch is quarantined.
    pub quarantine_after: u32,
    /// Consecutive clean rounds before a switch rejoins (Degraded →
    /// Healthy, or Quarantined → Recovered via probes).
    pub rejoin_after: u32,
    /// Base spacing (rounds) between quarantine probes; doubles per failed
    /// probe (capped) — bounded retry with backoff.
    pub probe_backoff: u32,
    /// Probes granted before a quarantined switch is left out for good.
    pub max_probes: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            miss_watermark: 0.25,
            deadline_rounds: 3,
            quarantine_after: 3,
            rejoin_after: 2,
            probe_backoff: 2,
            max_probes: 8,
        }
    }
}

/// One round of input from one switch's poller.
#[derive(Debug, Clone, Default)]
pub struct RoundInput {
    /// Batches the poller cut this round.
    pub batches: Vec<Batch>,
    /// Switch-side degradation signal for the round (the PR-1 degradation
    /// controller shed or stretched — the poller knows it is unhealthy
    /// before the aggregator can).
    pub degraded: bool,
}

/// Everything the fleet needs to know about one switch: identity, the
/// link it ships over, and its per-round output.
#[derive(Debug, Clone)]
pub struct SwitchStream {
    /// The switch (per-switch sequence space key).
    pub source: SourceId,
    /// Fault model for this switch's uplink to its regional aggregator.
    pub link: LinkPlan,
    /// Seed for the link's fault draws (derive per switch: same fleet
    /// seed, different switches, different weather).
    pub link_seed: u64,
    /// Batches cut per round, in round order.
    pub rounds: Vec<RoundInput>,
}

/// Fleet-level tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-switch shipper tuning (window, RTO, outstanding cap).
    pub shipper: ShipperConfig,
    /// Health state machine tuning.
    pub health: HealthPolicy,
    /// Regional aggregators sharding the fleet (switch → region by
    /// rendezvous hash over the live regions). Must be nonzero.
    pub regions: usize,
    /// Transport ticks pumped per round (shipper → link → store → ack).
    pub ticks_per_round: u32,
    /// Extra data-free rounds at the end to let retransmits drain.
    pub drain_rounds: u32,
    /// Rounds a crashed region stays down before its WAL is recovered and
    /// it rejoins the rendezvous set.
    pub recovery_rounds: u32,
    /// WAL tuning for each regional aggregator's durable store. The
    /// default matches the PR-7 group-commit profile
    /// ([`FsyncPolicy::EveryN`]); crash sweeps that want the exact
    /// acked-prefix recovery invariant use [`FsyncPolicy::Always`].
    pub region_wal: WalConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shipper: ShipperConfig::default(),
            health: HealthPolicy::default(),
            regions: 4,
            ticks_per_round: 8,
            drain_rounds: 6,
            recovery_rounds: 3,
            region_wal: WalConfig {
                segment_max_bytes: 1 << 20,
                fsync: FsyncPolicy::EveryN(16),
            },
        }
    }
}

/// Splitmix64 finalizer: the mixing function under the rendezvous hash.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Rendezvous (highest-random-weight) assignment of a switch to a region:
/// every `(switch, region)` pair gets an independent hash weight and the
/// live region with the highest weight wins. `None` when no region is
/// live. The mapping is a pure function of the switch and the live set —
/// independent of thread count, pump order, and the crash history that
/// produced the set — and when a region dies only *its* switches move
/// (everyone else's argmax is unchanged), which is the minimal-disruption
/// property that makes live re-sharding cheap.
pub fn rendezvous_region(source: SourceId, live: &[bool]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (r, &up) in live.iter().enumerate() {
        if !up {
            continue;
        }
        let w = mix64(
            (source.0 as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((r as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        // Strict > keeps the lowest region index on (never-observed) ties.
        if best.is_none_or(|(bw, _)| w > bw) {
            best = Some((w, r));
        }
    }
    best.map(|(_, r)| r)
}

/// Coverage accounting for one switch: where every batch its poller
/// produced ended up.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCoverage {
    /// The switch.
    pub source: SourceId,
    /// Final health state.
    pub state: HealthState,
    /// Batches the poller produced across all rounds.
    pub produced: u64,
    /// Batches merged into the global store.
    pub stored: u64,
    /// Batches the receiver knows were assigned but never got (gap
    /// ledger). A fully black-holed switch shows up in `undelivered`
    /// instead — the receiver never learned its watermark.
    pub missing: u64,
    /// Batches never offered because the switch was quarantined.
    pub excluded: u64,
    /// Offers refused by the shipper's outstanding cap (shed at source).
    pub refused: u64,
    /// The shipper's final acknowledged prefix — every batch below it is
    /// durable in some aggregator's WAL (the no-acked-loss floor the
    /// crash sweeps check `stored` against).
    pub acked: u64,
    /// Times this switch was re-pointed at a different region (away from a
    /// crashed aggregator, and back home after recovery — a full crash
    /// round trip counts 2).
    pub resharded: u64,
    /// Batches that reached the global store only through a crashed
    /// region's WAL replay (a subset of `stored`, not a fifth column).
    pub replayed: u64,
    /// Times this switch was quarantined.
    pub quarantines: u64,
    /// Times it rejoined after quarantine.
    pub rejoins: u64,
}

impl SwitchCoverage {
    /// Fraction of produced batches that made it into the store. A switch
    /// that produced nothing covered nothing — 0.0, not a vacuous 1.0
    /// (crash-at-round-0 sweeps hit this case; it must not read as full
    /// coverage, and it must not divide by zero).
    pub fn fraction(&self) -> f64 {
        if self.produced == 0 {
            return 0.0;
        }
        self.stored as f64 / self.produced as f64
    }

    /// Produced batches that are neither stored, excluded, nor refused:
    /// lost in flight (dropped by the link, or unacked at drain end).
    pub fn undelivered(&self) -> u64 {
        self.produced
            .saturating_sub(self.stored + self.excluded + self.refused)
    }
}

/// The annotation every fleet report carries: which switches, and what
/// fraction of their samples, the data includes — per health state.
#[derive(Debug, Clone, Default)]
pub struct CoverageLedger {
    /// Per-switch coverage, sorted by source.
    pub switches: Vec<SwitchCoverage>,
}

impl CoverageLedger {
    /// Switches whose data is in the report (everything not quarantined).
    pub fn included(&self) -> usize {
        self.switches
            .iter()
            .filter(|s| s.state != HealthState::Quarantined)
            .count()
    }

    /// Fleet-wide stored fraction of produced batches. An empty fleet (or
    /// one that produced nothing — crash-at-round-0) covers nothing: 0.0.
    pub fn sample_fraction(&self) -> f64 {
        let produced: u64 = self.switches.iter().map(|s| s.produced).sum();
        let stored: u64 = self.switches.iter().map(|s| s.stored).sum();
        if produced == 0 {
            return 0.0;
        }
        stored as f64 / produced as f64
    }

    /// Switch counts per health state, in state order.
    pub fn state_counts(&self) -> [(HealthState, usize); 4] {
        let mut counts = [
            (HealthState::Healthy, 0),
            (HealthState::Degraded, 0),
            (HealthState::Quarantined, 0),
            (HealthState::Recovered, 0),
        ];
        for s in &self.switches {
            for c in &mut counts {
                if c.0 == s.state {
                    c.1 += 1;
                }
            }
        }
        counts
    }

    /// Total rejoin events across the fleet.
    pub fn rejoins(&self) -> u64 {
        self.switches.iter().map(|s| s.rejoins).sum()
    }

    /// Total re-shard (region re-point) events across the fleet.
    pub fn resharded(&self) -> u64 {
        self.switches.iter().map(|s| s.resharded).sum()
    }

    /// Total batches that reached the global store only via WAL replay.
    pub fn replayed(&self) -> u64 {
        self.switches.iter().map(|s| s.replayed).sum()
    }
}

impl fmt::Display for CoverageLedger {
    /// Deterministic text rendering — the annotation stamped onto fleet
    /// figures. Totals first, then one line per switch that is *not*
    /// plainly healthy (a 1000-switch fleet should not print 1000 lines
    /// to say "fine").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage: {}/{} switches included, sample fraction {:.4}",
            self.included(),
            self.switches.len(),
            self.sample_fraction()
        )?;
        let counts = self.state_counts();
        writeln!(
            f,
            "  states: healthy {}, degraded {}, quarantined {}, recovered {}",
            counts[0].1, counts[1].1, counts[2].1, counts[3].1
        )?;
        if self.resharded() > 0 || self.replayed() > 0 {
            writeln!(
                f,
                "  failover: {} re-shard events, {} batches via WAL replay",
                self.resharded(),
                self.replayed()
            )?;
        }
        for s in &self.switches {
            if s.state == HealthState::Healthy
                && s.undelivered() == 0
                && s.refused == 0
                && s.resharded == 0
            {
                continue;
            }
            writeln!(
                f,
                "  switch {}: {}, produced {}, stored {}, missing {}, excluded {}, refused {}, undelivered {}, acked {}, resharded {}, replayed {}, quarantines {}, rejoins {}",
                s.source.0,
                s.state,
                s.produced,
                s.stored,
                s.missing,
                s.excluded,
                s.refused,
                s.undelivered(),
                s.acked,
                s.resharded,
                s.replayed,
                s.quarantines,
                s.rejoins
            )?;
        }
        Ok(())
    }
}

/// Per-region accounting: forwarding while healthy, plus the crash /
/// recovery / replay story when the aggregator itself fails.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStats {
    /// Switches homed on this aggregator (rendezvous over all regions).
    pub switches: usize,
    /// Sequenced batches this aggregator pushed to the global store at
    /// its end-of-round durability points (attributed to the serving
    /// region — re-homed traffic counts here; records lost with a crashed
    /// pending buffer do not, they surface as `replayed` instead).
    pub forwarded: u64,
    /// Straggler deadline violations flagged by this aggregator.
    pub deadline_misses: u64,
    /// Shipper `WindowExhausted` refusals across switches homed here.
    pub refused: u64,
    /// Quarantine rejoins across switches homed here.
    pub rejoins: u64,
    /// Times this aggregator's WAL storage died mid-write (0 or 1 per
    /// run — a region crashes at most once per [`RegionCrashPlan`]).
    pub crashes: u64,
    /// Times its WAL was recovered (downtime elapsed, or the end-of-run
    /// failover sweep).
    pub recoveries: u64,
    /// Clean records replayed from its WAL at recovery.
    pub wal_records_recovered: u64,
    /// Replayed records that were new to the global store (acked by this
    /// region before the crash but never forwarded).
    pub replayed: u64,
    /// Bytes this region's WAL writer pushed through storage by run end —
    /// the coordinate system for [`RegionCrashPlan`] offsets (reference
    /// runs only: a recovered region's writer restarts its count).
    pub wal_bytes: u64,
}

/// What a fleet run produced.
pub struct FleetOutcome {
    /// The global merged store (per-switch series intact).
    pub store: Arc<SampleStore>,
    /// The coverage annotation.
    pub coverage: CoverageLedger,
    /// Per-region stats, indexed by region id.
    pub regions: Vec<RegionStats>,
    /// Per-region WAL record-end offsets (global byte coordinates of the
    /// region's write stream), for building byte-granular
    /// [`RegionCrashPlan`] sweeps from a reference run.
    pub region_record_ends: Vec<Vec<u64>>,
    /// Data rounds pumped (drain rounds not counted).
    pub rounds: u32,
}

/// One regional aggregator: a WAL-backed durable store over a disk image
/// that survives the process ([`MemStorage`] semantics), crashable via the
/// [`TornStorage`] byte budget.
struct Region {
    /// The disk: shared image, outlives the writer — what recovery reads.
    disk: MemStorage,
    /// The live store; `None` while the region is down.
    ds: Option<DurableStore<TornStorage<MemStorage>>>,
    /// Records stored this round, awaiting the end-of-round push to the
    /// global tier. In-memory state: a crash loses it — which is exactly
    /// why recovery must replay the WAL (acked records can exist nowhere
    /// but the dead region's log).
    pending: Vec<SeqBatch>,
    /// Round the region crashed, while down.
    down_since: Option<u32>,
    stats: RegionStats,
}

/// One switch's lane through the aggregation tier.
struct Lane {
    source: SourceId,
    /// Rendezvous home over the full region set.
    home: usize,
    /// Region currently serving the lane (`None` only when every region
    /// is down).
    assigned: Option<usize>,
    shipper: Shipper,
    data_link: LossyLink<SeqBatch>,
    ack_link: LossyLink<AckMsg>,
    rounds: Vec<RoundInput>,
    // Health FSM state.
    state: HealthState,
    consec_bad: u32,
    consec_clean: u32,
    quarantines: u64,
    rejoins: u64,
    probes_used: u32,
    next_probe: u32,
    // Aggregator-side progress tracking.
    last_contig: u64,
    rounds_since_progress: u32,
    // Coverage accounting.
    produced: u64,
    refused: u64,
    excluded: u64,
    resharded: u64,
    replayed: u64,
}

impl Lane {
    /// Whether this lane offers data this round, per its health state.
    /// Quarantined lanes participate only on scheduled probe rounds and
    /// only within their probe budget.
    fn participates(&mut self, round: u32, policy: &HealthPolicy) -> bool {
        if self.state != HealthState::Quarantined {
            return true;
        }
        if self.probes_used >= policy.max_probes || round < self.next_probe {
            return false;
        }
        self.probes_used += 1;
        uburst_obs::counter_add("uburst_fleet_probe_rounds_total", 1);
        true
    }

    /// Feeds one round's verdict into the FSM.
    fn observe(&mut self, round: u32, bad: bool, policy: &HealthPolicy) {
        if bad {
            self.consec_clean = 0;
            match self.state {
                HealthState::Healthy | HealthState::Recovered => {
                    self.state = HealthState::Degraded;
                    self.consec_bad = 1;
                }
                HealthState::Degraded => {
                    self.consec_bad += 1;
                    if self.consec_bad >= policy.quarantine_after {
                        self.state = HealthState::Quarantined;
                        self.quarantines += 1;
                        self.consec_bad = 0;
                        self.probes_used = 0;
                        self.next_probe = round + policy.probe_backoff;
                        uburst_obs::counter_add("uburst_fleet_quarantines_total", 1);
                    }
                }
                HealthState::Quarantined => {
                    // A failed probe: back off (exponentially, capped).
                    let shift = self.probes_used.min(4);
                    self.next_probe = round + (policy.probe_backoff << shift);
                }
            }
        } else {
            self.consec_bad = 0;
            self.consec_clean += 1;
            match self.state {
                HealthState::Degraded if self.consec_clean >= policy.rejoin_after => {
                    // Never left service, so this is not a rejoin event.
                    self.state = HealthState::Healthy;
                }
                HealthState::Quarantined => {
                    if self.consec_clean >= policy.rejoin_after {
                        self.state = HealthState::Recovered;
                        self.rejoins += 1;
                        uburst_obs::counter_add("uburst_fleet_rejoins_total", 1);
                    } else {
                        // A clean probe: probe again immediately.
                        self.next_probe = round + 1;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Recovers a downed region: replays its WAL from the surviving disk
/// image, feeds every clean record into the global store (the records it
/// acked-but-never-forwarded land here — "no loss of acked data"), and
/// brings the aggregator back up with its ledger state — adoption points
/// included — re-derived from the log.
fn recover_region(
    region: &mut Region,
    global: &SampleStore,
    lanes: &mut BTreeMap<SourceId, Lane>,
    cfg: &FleetConfig,
    round: u32,
) {
    let since = region
        .down_since
        .take()
        .expect("recover_region on a live region");
    let mut replayed_new = 0u64;
    let (ds, report) = DurableStore::recover_replay(
        // The recovered process gets a fresh, un-budgeted storage handle
        // over the same disk: one crash per region per run.
        TornStorage::new(region.disk.clone(), u64::MAX),
        cfg.region_wal,
        &mut |sb| {
            match global.ingest_seq(sb) {
                // Stored: new to the global tier — the crash window this
                // replay exists for. Err: quarantined at the global tier
                // exactly as the region quarantined it live; it occupies
                // its sequence number either way.
                Ok(SeqIngest::Stored) | Err(_) => {
                    replayed_new += 1;
                    if let Some(lane) = lanes.get_mut(&sb.batch.source) {
                        lane.replayed += 1;
                    }
                }
                Ok(_) => {} // already forwarded live: dedup, no double-count
            }
        },
    )
    .expect("recovery from the intact disk image cannot fail");
    region.ds = Some(ds);
    region.stats.recoveries += 1;
    region.stats.wal_records_recovered += report.records;
    region.stats.replayed += replayed_new;
    if uburst_obs::enabled() {
        uburst_obs::counter_add("uburst_fleet_region_recoveries_total", 1);
        uburst_obs::counter_add("uburst_fleet_replayed_batches_total", replayed_new);
        uburst_obs::counter_add("uburst_fleet_replay_records_total", report.records);
        // Span duration in the fleet tier's simulated clock: transport
        // ticks of downtime (never wall time).
        let downtime_ticks = (round - since) as u64 * cfg.ticks_per_round as u64;
        uburst_obs::span_record("fleet/region_recovery", downtime_ticks);
    }
}

/// Runs the fleet aggregation tier over the given switch streams.
///
/// Fully deterministic: lanes are pumped in source order, links are
/// seeded, and both store tiers are single-writer — calling this twice
/// with the same streams yields byte-identical reports regardless of how
/// the streams themselves were produced (that is the caller's
/// determinism to keep; the bench crate's worker pool returns per-switch
/// results in submission order for exactly this reason).
///
/// Acks travel two paths: per-ingest acks ride the switch's lossy link
/// back (they can be lost — that is what retransmits are for), while the
/// per-round flush acks are applied directly, modelling the aggregator's
/// reliable control channel to its switches.
pub fn run_fleet(streams: Vec<SwitchStream>, cfg: &FleetConfig) -> FleetOutcome {
    run_fleet_with_crashes(streams, cfg, &RegionCrashPlan::none())
}

/// [`run_fleet`] under a [`RegionCrashPlan`]: each listed region's WAL
/// storage dies at its byte offset mid-round, its switches re-shard to
/// the survivors, and after [`FleetConfig::recovery_rounds`] (or at run
/// end — the final failover sweep) its WAL is recovered into the global
/// store. See the module docs for the invariants this preserves.
pub fn run_fleet_with_crashes(
    streams: Vec<SwitchStream>,
    cfg: &FleetConfig,
    crashes: &RegionCrashPlan,
) -> FleetOutcome {
    assert!(cfg.regions > 0, "fleet with zero regions");
    assert!(cfg.ticks_per_round > 0, "fleet with zero ticks per round");
    let global = Arc::new(SampleStore::new());
    let mut regions: Vec<Region> = (0..cfg.regions)
        .map(|r| {
            let disk = MemStorage::new();
            let budget = crashes.budget(r).unwrap_or(u64::MAX);
            let mut stats = RegionStats::default();
            // A budget below the first segment header kills the region at
            // birth (crash-at-round-0): it starts down and recovers like
            // any other crash.
            let (ds, down_since) = match DurableStore::create(
                TornStorage::new(disk.clone(), budget),
                cfg.region_wal,
            ) {
                Ok(ds) => (Some(ds), None),
                Err(e) => {
                    assert!(e.is_injected_crash(), "region WAL create failed: {e}");
                    stats.crashes = 1;
                    uburst_obs::counter_add("uburst_fleet_region_crashes_total", 1);
                    (None, Some(0))
                }
            };
            Region {
                disk,
                ds,
                pending: Vec::new(),
                down_since,
                stats,
            }
        })
        .collect();

    // Lanes in source order: the pump order, and therefore the report
    // order, is fixed no matter how the caller built the stream vector.
    let all_live = vec![true; cfg.regions];
    let mut lanes: BTreeMap<SourceId, Lane> = BTreeMap::new();
    let mut max_rounds = 0u32;
    for s in streams {
        let home = rendezvous_region(s.source, &all_live).expect("regions is nonzero");
        regions[home].stats.switches += 1;
        max_rounds = max_rounds.max(s.rounds.len() as u32);
        lanes.insert(
            s.source,
            Lane {
                source: s.source,
                home,
                assigned: Some(home),
                shipper: Shipper::new(s.source, cfg.shipper),
                data_link: LossyLink::new(s.link, s.link_seed),
                ack_link: LossyLink::new(s.link, s.link_seed ^ 0x9e37_79b9),
                rounds: s.rounds,
                state: HealthState::Healthy,
                consec_bad: 0,
                consec_clean: 0,
                quarantines: 0,
                rejoins: 0,
                probes_used: 0,
                next_probe: 0,
                last_contig: 0,
                rounds_since_progress: 0,
                produced: 0,
                refused: 0,
                excluded: 0,
                resharded: 0,
                replayed: 0,
            },
        );
    }
    uburst_obs::gauge_max("uburst_fleet_switches", lanes.len() as u64);

    // Reused across every lane and tick: the shipper's transmit burst and
    // the aggregator's per-window ingest results. Zero per-tick allocation
    // once the fleet warms up.
    let mut tx_buf: Vec<SeqBatch> = Vec::new();
    let mut ingest_buf: Vec<(SeqIngest, AckMsg)> = Vec::new();

    let total_rounds = max_rounds + cfg.drain_rounds;
    for round in 0..total_rounds {
        // Downtime elapsed: recover the region's WAL into the global store
        // and bring it back into the rendezvous set.
        for region in regions.iter_mut() {
            if region
                .down_since
                .is_some_and(|since| round - since >= cfg.recovery_rounds)
            {
                recover_region(region, &global, &mut lanes, cfg, round);
            }
        }

        // Re-shard: every lane targets its rendezvous region over the live
        // set. A re-pointed lane's old path is cut (in-flight traffic and
        // acks die with the cable) and the new region adopts the stream at
        // the shipper's acked prefix — the exact point go-back-N resumes
        // from, so resync needs no extra protocol: the window retransmits,
        // dedup absorbs the overlap.
        let live: Vec<bool> = regions.iter().map(|r| r.ds.is_some()).collect();
        for lane in lanes.values_mut() {
            let target = rendezvous_region(lane.source, &live);
            if target != lane.assigned {
                lane.assigned = target;
                lane.resharded += 1;
                lane.data_link.clear();
                lane.ack_link.clear();
                if let Some(t) = target {
                    let ds = regions[t].ds.as_mut().expect("rendezvous picks live");
                    ds.adopt_source(lane.source, lane.shipper.cum_acked());
                }
                uburst_obs::counter_add("uburst_fleet_reshards_total", 1);
            }
        }

        let draining = round >= max_rounds;
        for lane in lanes.values_mut() {
            let input = (!draining)
                .then(|| lane.rounds.get(round as usize))
                .flatten()
                .cloned()
                .unwrap_or_default();
            let had_input = !input.batches.is_empty();
            lane.produced += input.batches.len() as u64;
            let participating = had_input && lane.participates(round, &cfg.health);
            let mut refused_this_round = 0u64;
            if participating {
                for b in input.batches {
                    if lane.shipper.offer(b).is_err() {
                        refused_this_round += 1;
                    }
                }
            } else if had_input {
                lane.excluded += input.batches.len() as u64;
            }
            lane.refused += refused_this_round;

            // Pump the transport: shipper → data link → regional WAL →
            // ack link → shipper. Each tick's delivery burst is one WAL
            // commit window: `ingest_group` coalesces the window into a
            // single physical write (and at most one sync) while
            // returning per-frame acks identical to per-record ingest, so
            // the seeded ack link sees the exact same stream. Stored
            // records queue in the region's pending buffer and reach the
            // global tier at the end-of-round durability push — so a
            // mid-round crash leaves records that were acked to switches
            // but exist nowhere except the dead region's WAL, and
            // recovery's replay is what keeps the no-acked-loss promise.
            for _ in 0..cfg.ticks_per_round {
                lane.shipper.tick_into(&mut tx_buf);
                for sb in tx_buf.drain(..) {
                    lane.data_link.send(sb);
                }
                let window = lane.data_link.tick();
                if !window.is_empty() {
                    // A window addressed to a dead aggregator is lost on
                    // the wire; the shipper's RTO re-sends it later.
                    if let Some(r) = lane.assigned {
                        let region = &mut regions[r];
                        if let Some(ds) = region.ds.as_mut() {
                            match ds.ingest_group(&window, &mut ingest_buf) {
                                Ok(()) => {
                                    for (sb, (outcome, ack)) in
                                        window.into_iter().zip(ingest_buf.drain(..))
                                    {
                                        // Duplicates are already durable
                                        // (here or in a previous region's
                                        // WAL); reordered frames get
                                        // redelivered in sequence.
                                        if outcome == SeqIngest::Stored {
                                            region.pending.push(sb);
                                        }
                                        lane.ack_link.send(ack);
                                    }
                                }
                                Err(e) => {
                                    // The byte-granular crash: the fatal
                                    // write applied a prefix and the
                                    // region died mid-round. No ack from
                                    // the torn window escapes, the
                                    // un-pushed pending buffer dies with
                                    // the process, and so does in-flight
                                    // traffic.
                                    assert!(e.is_injected_crash(), "regional WAL failed: {e}");
                                    region.ds = None;
                                    region.pending.clear();
                                    region.down_since = Some(round);
                                    region.stats.crashes += 1;
                                    lane.data_link.clear();
                                    uburst_obs::counter_add("uburst_fleet_region_crashes_total", 1);
                                }
                            }
                        }
                    }
                }
                for ack in lane.ack_link.tick() {
                    lane.shipper.on_ack(ack);
                }
            }

            // Aggregator-side progress / straggler tracking (the global
            // tier's contiguous prefix — the authoritative view).
            let contig = global.contiguous(lane.source);
            if contig > lane.last_contig {
                lane.last_contig = contig;
                lane.rounds_since_progress = 0;
            } else if lane.shipper.outstanding() > 0 {
                lane.rounds_since_progress += 1;
            }
            let stalled = lane.shipper.outstanding() > 0
                && lane.rounds_since_progress >= cfg.health.deadline_rounds;
            if stalled {
                regions[lane.assigned.unwrap_or(lane.home)]
                    .stats
                    .deadline_misses += 1;
            }

            // Health verdict for the round. Only rounds the switch took
            // part in are judged — an excluded round proves nothing.
            if participating {
                let watermark = lane.shipper.next_seq();
                let missing = watermark.saturating_sub(global.contiguous(lane.source));
                // In-flight batches are not "missing" yet; judge only what
                // has had a full deadline window to arrive.
                let miss_frac = if watermark == 0 || lane.rounds_since_progress == 0 {
                    0.0
                } else {
                    missing as f64 / watermark as f64
                };
                let bad = input.degraded
                    || refused_this_round > 0
                    || stalled
                    || miss_frac > cfg.health.miss_watermark;
                lane.observe(round, bad, &cfg.health);
            }
        }
        // End of round: durability point per live region. The WAL syncs,
        // the round's stored records are pushed upstream to the global
        // tier, and flush acks model the reliable control channel
        // (applied directly, not over the lossy link) — routed only to
        // lanes the region currently serves, so a re-homed lane never
        // hears from its old aggregator.
        for (r, region) in regions.iter_mut().enumerate() {
            let Some(ds) = region.ds.as_mut() else {
                continue;
            };
            let acks = ds.flush().expect("live region flush cannot fail");
            region.stats.forwarded += region.pending.len() as u64;
            for sb in region.pending.drain(..) {
                let _ = global.ingest_seq(&sb);
            }
            for ack in acks {
                if let Some(lane) = lanes.get_mut(&ack.source) {
                    if lane.assigned == Some(r) {
                        lane.shipper.on_ack(ack);
                    }
                }
            }
        }
    }

    // Final failover sweep: a region still down at run end is recovered
    // now, so everything it ever acked reaches the global store before
    // coverage is judged — no crash offset loses acked data.
    for region in regions.iter_mut() {
        if region.down_since.is_some() {
            recover_region(region, &global, &mut lanes, cfg, total_rounds);
        }
    }

    let ledger = global.ledger();
    let mut coverage = CoverageLedger::default();
    for lane in lanes.values() {
        // The reconnect handshake: the global tier learns each shipper's
        // final transmit watermark, so batches assigned but never
        // delivered anywhere show up as gaps, not silence.
        global.note_watermark(lane.source, lane.shipper.next_seq());
        let stored = ledger.received_count(lane.source);
        uburst_obs::counter_add("uburst_fleet_batches_stored_total", stored);
        uburst_obs::counter_add("uburst_fleet_batches_excluded_total", lane.excluded);
        regions[lane.home].stats.refused += lane.refused;
        regions[lane.home].stats.rejoins += lane.rejoins;
        coverage.switches.push(SwitchCoverage {
            source: lane.source,
            state: lane.state,
            produced: lane.produced,
            stored,
            missing: global
                .ledger()
                .gaps(lane.source)
                .iter()
                .map(|&(lo, hi)| hi - lo + 1)
                .sum(),
            excluded: lane.excluded,
            refused: lane.refused,
            acked: lane.shipper.cum_acked(),
            resharded: lane.resharded,
            replayed: lane.replayed,
            quarantines: lane.quarantines,
            rejoins: lane.rejoins,
        });
    }
    let mut region_record_ends = Vec::with_capacity(regions.len());
    let mut region_stats = Vec::with_capacity(regions.len());
    for region in &regions {
        let mut stats = region.stats;
        if let Some(ds) = &region.ds {
            stats.wal_bytes = ds.wal().total_bytes();
            region_record_ends.push(ds.wal().record_ends().to_vec());
        } else {
            region_record_ends.push(Vec::new());
        }
        region_stats.push(stats);
    }
    FleetOutcome {
        store: global,
        coverage,
        regions: region_stats,
        region_record_ends,
        rounds: max_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    /// A per-switch stream of `rounds` rounds, one batch per round with
    /// distinct timestamps; `degraded_until` marks the first rounds bad.
    fn stream(src: u32, link: LinkPlan, rounds: u32, degraded_until: u32) -> SwitchStream {
        let rounds = (0..rounds)
            .map(|r| {
                let mut s = Series::new();
                s.push(Nanos(1 + r as u64 * 10), r as u64);
                RoundInput {
                    batches: vec![Batch {
                        source: SourceId(src),
                        campaign: "fleet-test".into(),
                        counter: CounterId::TxBytes(PortId(0)),
                        samples: s,
                    }],
                    degraded: r < degraded_until,
                }
            })
            .collect();
        SwitchStream {
            source: SourceId(src),
            link,
            link_seed: 0xF1EE7 ^ src as u64,
            rounds,
        }
    }

    /// A config whose regional WALs run [`FsyncPolicy::Always`] — the
    /// policy under which recovery is exactly the acked prefix.
    fn always_cfg(regions: usize) -> FleetConfig {
        FleetConfig {
            regions,
            region_wal: WalConfig {
                segment_max_bytes: 1 << 20,
                fsync: FsyncPolicy::Always,
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn ideal_fleet_has_full_coverage() {
        let streams: Vec<_> = (0..8).map(|s| stream(s, LinkPlan::IDEAL, 6, 0)).collect();
        let out = run_fleet(streams, &FleetConfig::default());
        assert_eq!(out.coverage.switches.len(), 8);
        assert_eq!(out.coverage.included(), 8);
        assert_eq!(out.coverage.sample_fraction(), 1.0);
        for s in &out.coverage.switches {
            assert_eq!(s.state, HealthState::Healthy);
            assert_eq!(s.stored, 6);
            assert_eq!(s.undelivered(), 0);
            assert_eq!(s.resharded, 0, "no crash, no re-shard");
            assert_eq!(s.replayed, 0);
        }
        assert_eq!(out.store.total_samples(), 8 * 6);
        // Regions split the fleet between them (rendezvous need not use
        // every region at 8 switches) and every homed switch delivered
        // through its home.
        assert_eq!(out.regions.iter().map(|r| r.switches).sum::<usize>(), 8);
        for r in &out.regions {
            assert_eq!(r.crashes, 0);
            assert!(
                r.switches == 0 || r.forwarded > 0,
                "a home with switches saw their traffic"
            );
        }
    }

    #[test]
    fn blackholed_switch_is_quarantined_and_accounted() {
        let blackhole = LinkPlan {
            drop_p: 1.0,
            ..LinkPlan::IDEAL
        };
        let mut streams: Vec<_> = (0..4).map(|s| stream(s, LinkPlan::IDEAL, 12, 0)).collect();
        streams.push(stream(9, blackhole, 12, 0));
        let out = run_fleet(streams, &FleetConfig::default());
        let bad = out
            .coverage
            .switches
            .iter()
            .find(|s| s.source == SourceId(9))
            .unwrap();
        assert_eq!(bad.state, HealthState::Quarantined);
        assert_eq!(bad.stored, 0);
        assert!(bad.excluded > 0, "quarantine exclusions are accounted");
        assert!(bad.undelivered() > 0, "in-flight loss is accounted");
        assert_eq!(
            bad.produced,
            bad.stored + bad.excluded + bad.refused + bad.undelivered(),
            "every produced batch is in exactly one coverage column"
        );
        assert_eq!(out.coverage.included(), 4);
        assert!(out.coverage.sample_fraction() < 1.0);
        // The healthy switches are untouched by their neighbour's failure.
        for s in out.coverage.switches.iter().filter(|s| s.source.0 < 4) {
            assert_eq!(s.state, HealthState::Healthy);
            assert_eq!(s.stored, 12);
        }
        // The report says all of this out loud.
        let text = out.coverage.to_string();
        assert!(text.contains("4/5 switches included"));
        assert!(text.contains("switch 9: quarantined"));
    }

    #[test]
    fn degraded_switch_recovers_and_counts_rejoin() {
        // Clean link, but the switch reports degradation for its first 6
        // rounds: Healthy → Degraded → Quarantined, then probes succeed
        // and it comes back as Recovered with one rejoin on the books.
        let streams = vec![
            stream(0, LinkPlan::IDEAL, 30, 0),
            stream(1, LinkPlan::IDEAL, 30, 6),
        ];
        let out = run_fleet(streams, &FleetConfig::default());
        let s1 = out
            .coverage
            .switches
            .iter()
            .find(|s| s.source == SourceId(1))
            .unwrap();
        assert_eq!(s1.state, HealthState::Recovered);
        assert_eq!(s1.quarantines, 1);
        assert_eq!(s1.rejoins, 1);
        assert!(s1.excluded > 0, "quarantined rounds were excluded");
        assert!(
            s1.stored > 0,
            "rounds after recovery made it into the store"
        );
        assert_eq!(out.coverage.rejoins(), 1);
        assert_eq!(out.coverage.included(), 2);
    }

    #[test]
    fn fleet_outcome_is_deterministic() {
        let build = || {
            let mut streams: Vec<_> = (0..6)
                .map(|s| stream(s, LinkPlan::default(), 10, 0))
                .collect();
            streams.push(stream(7, LinkPlan::HOSTILE, 10, 3));
            // Stream order must not matter: lanes are keyed by source.
            streams.reverse();
            streams
        };
        let a = run_fleet(build(), &FleetConfig::default());
        let b = run_fleet(build(), &FleetConfig::default());
        assert_eq!(a.coverage.to_string(), b.coverage.to_string());
        let mut csv_a = Vec::new();
        let mut csv_b = Vec::new();
        a.store.export_csv(&mut csv_a).unwrap();
        b.store.export_csv(&mut csv_b).unwrap();
        assert_eq!(csv_a, csv_b, "stored samples byte-identical");
    }

    #[test]
    fn probe_budget_bounds_retry() {
        // A switch that never stops reporting degradation: probes must
        // stop at the budget instead of retrying forever.
        let cfg = FleetConfig::default();
        let rounds = 80;
        let streams = vec![stream(3, LinkPlan::IDEAL, rounds, rounds)];
        let out = run_fleet(streams, &cfg);
        let s = &out.coverage.switches[0];
        assert_eq!(s.state, HealthState::Quarantined);
        // quarantine_after rounds judged before quarantine, then at most
        // max_probes probe rounds participate; everything else excluded.
        let participated = s.produced - s.excluded;
        assert!(
            participated <= (cfg.health.quarantine_after + cfg.health.max_probes) as u64,
            "participated {participated} exceeds quarantine + probe budget"
        );
        assert_eq!(s.rejoins, 0);
        assert_eq!(out.coverage.included(), 0);
    }

    #[test]
    fn rendezvous_is_pure_and_minimally_disruptive() {
        let live4 = vec![true; 4];
        for s in 0..64u32 {
            let src = SourceId(s);
            let home = rendezvous_region(src, &live4).unwrap();
            assert_eq!(
                rendezvous_region(src, &live4).unwrap(),
                home,
                "pure function of (switch, live set)"
            );
            // Kill a region the switch is NOT homed on: its assignment
            // must not move (minimal disruption).
            let dead = (home + 1) % 4;
            let mut live3 = live4.clone();
            live3[dead] = false;
            assert_eq!(rendezvous_region(src, &live3), Some(home));
            // Kill its home: it moves to a survivor, deterministically.
            let mut live_nohome = live4.clone();
            live_nohome[home] = false;
            let moved = rendezvous_region(src, &live_nohome).unwrap();
            assert_ne!(moved, home);
            assert_eq!(rendezvous_region(src, &live_nohome), Some(moved));
        }
        assert_eq!(rendezvous_region(SourceId(0), &[false, false]), None);
        assert_eq!(rendezvous_region(SourceId(0), &[]), None);
        // All regions live again: everyone is back home (history never
        // enters the mapping).
        for s in 0..64u32 {
            let h1 = rendezvous_region(SourceId(s), &live4);
            let h2 = rendezvous_region(SourceId(s), &[true, true, true, true]);
            assert_eq!(h1, h2);
        }
    }

    #[test]
    fn zero_produced_coverage_is_zero_not_vacuous() {
        // Satellite: crash-at-round-0 sweeps hit empty coverage; the
        // fractions must read 0.0 (nothing covered), never 1.0 or NaN.
        let empty = SwitchCoverage {
            source: SourceId(0),
            state: HealthState::Healthy,
            produced: 0,
            stored: 0,
            missing: 0,
            excluded: 0,
            refused: 0,
            acked: 0,
            resharded: 0,
            replayed: 0,
            quarantines: 0,
            rejoins: 0,
        };
        assert_eq!(empty.fraction(), 0.0);
        assert_eq!(empty.undelivered(), 0);
        let ledger = CoverageLedger {
            switches: vec![empty],
        };
        assert_eq!(ledger.sample_fraction(), 0.0);
        assert_eq!(CoverageLedger::default().sample_fraction(), 0.0);
        // And an empty-stream fleet run survives end to end.
        let out = run_fleet(
            vec![SwitchStream {
                source: SourceId(5),
                link: LinkPlan::IDEAL,
                link_seed: 1,
                rounds: Vec::new(),
            }],
            &FleetConfig::default(),
        );
        assert_eq!(out.coverage.sample_fraction(), 0.0);
        assert_eq!(out.coverage.switches[0].produced, 0);
    }

    /// The tentpole in one test: crash a region mid-run at a byte offset
    /// of its WAL, watch its switches re-shard to survivors, recover the
    /// WAL, and end with the exact store a crash-free run produces.
    #[test]
    fn region_crash_resharding_and_recovery_converge() {
        let mut cfg = always_cfg(2);
        cfg.drain_rounds = 10; // room for failover + retransmit + rejoin
        let build = || (0..6).map(|s| stream(s, LinkPlan::IDEAL, 12, 0)).collect();
        let reference = run_fleet(build(), &cfg);
        assert!(
            reference.regions.iter().all(|r| r.switches > 0),
            "both regions homed switches (else the crash tests nothing)"
        );
        let wal_bytes = reference.regions[0].wal_bytes;
        assert!(wal_bytes > 0);

        let crash = RegionCrashPlan::kill(0, wal_bytes / 2);
        let out = run_fleet_with_crashes(build(), &cfg, &crash);
        assert_eq!(out.regions[0].crashes, 1);
        assert_eq!(out.regions[0].recoveries, 1);
        assert!(out.regions[0].wal_records_recovered > 0);
        assert_eq!(out.regions[1].crashes, 0);
        // Region 0's switches were re-pointed away and back: 2 events.
        let moved: Vec<_> = out
            .coverage
            .switches
            .iter()
            .filter(|s| s.resharded > 0)
            .collect();
        assert!(!moved.is_empty(), "someone was homed on the dead region");
        assert!(moved.iter().all(|s| s.resharded == 2));
        assert_eq!(
            out.coverage.resharded() as usize,
            moved.len() * 2,
            "away + back home"
        );
        // Full convergence: every switch fully covered, tiling intact.
        for s in &out.coverage.switches {
            assert_eq!(
                s.produced,
                s.stored + s.excluded + s.refused + s.undelivered(),
                "tiling at switch {}",
                s.source.0
            );
            assert_eq!(s.stored, 12, "switch {} fully stored", s.source.0);
            assert!(s.stored >= s.acked, "no acked batch lost");
        }
        assert_eq!(out.coverage.sample_fraction(), 1.0);
        // Byte-identical to the crash-free run.
        let mut csv_ref = Vec::new();
        let mut csv_out = Vec::new();
        reference.store.export_csv(&mut csv_ref).unwrap();
        out.store.export_csv(&mut csv_out).unwrap();
        assert_eq!(csv_ref, csv_out, "recovered fleet == crash-free fleet");
    }

    #[test]
    fn crash_at_round_zero_region_is_born_dead_and_still_converges() {
        // Budget 0: the region dies before writing its first segment
        // header. Its switches start on the survivor; the (empty) WAL
        // recovers after recovery_rounds; nothing is lost.
        let mut cfg = always_cfg(2);
        cfg.drain_rounds = 10;
        let streams: Vec<_> = (0..4).map(|s| stream(s, LinkPlan::IDEAL, 8, 0)).collect();
        let out = run_fleet_with_crashes(streams, &cfg, &RegionCrashPlan::kill(1, 0));
        assert_eq!(out.regions[1].crashes, 1);
        assert_eq!(out.regions[1].recoveries, 1);
        assert_eq!(out.regions[1].wal_records_recovered, 0, "nothing logged");
        for s in &out.coverage.switches {
            assert_eq!(s.stored, 8);
            assert_eq!(
                s.produced,
                s.stored + s.excluded + s.refused + s.undelivered()
            );
        }
        assert_eq!(out.coverage.sample_fraction(), 1.0);
    }

    #[test]
    fn crashed_fleet_outcome_is_deterministic() {
        let mut cfg = always_cfg(3);
        cfg.drain_rounds = 8;
        let build = || {
            (0..5)
                .map(|s| stream(s, LinkPlan::default(), 10, 0))
                .collect()
        };
        let crash = RegionCrashPlan::kill(0, 700).and_kill(2, 1500);
        let a = run_fleet_with_crashes(build(), &cfg, &crash);
        let b = run_fleet_with_crashes(build(), &cfg, &crash);
        assert_eq!(a.coverage.to_string(), b.coverage.to_string());
        let (mut csv_a, mut csv_b) = (Vec::new(), Vec::new());
        a.store.export_csv(&mut csv_a).unwrap();
        b.store.export_csv(&mut csv_b).unwrap();
        assert_eq!(csv_a, csv_b);
    }
}
