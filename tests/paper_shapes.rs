//! Regression tests for the paper's headline shapes at reduced scale —
//! cheap enough for CI, strong enough to catch a workload or framework
//! change that breaks the reproduction.

use uburst::prelude::*;

/// 25 µs single-port campaign for one rack type; returns utilization.
fn port_utils(rack_type: RackType, seed: u64, uplink: bool) -> Vec<UtilSample> {
    let cfg = ScenarioConfig::new(rack_type, seed);
    let port = if uplink {
        PortId(cfg.n_servers as u16)
    } else {
        PortId(4)
    };
    let bps = if uplink {
        cfg.clos.uplink.bandwidth_bps
    } else {
        cfg.clos.server_link.bandwidth_bps
    };
    let mut s = build_scenario(cfg);
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let campaign =
        CampaignConfig::single("bytes", CounterId::TxBytes(port), Nanos::from_micros(25));
    let poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, seed)
        .expect("valid campaign");
    let stop = warmup + Nanos::from_millis(150);
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));
    let series = &s
        .sim
        .node_mut::<Poller>(id)
        .take_series()
        .expect("in-memory")[0]
        .1;
    series.utilization(bps)
}

#[test]
fn web_bursts_are_short_and_rare() {
    let utils = port_utils(RackType::Web, 61, false);
    let a = extract_bursts(&utils, HOT_THRESHOLD);
    assert!(
        a.hot_fraction() < 0.06,
        "web hot fraction {}",
        a.hot_fraction()
    );
    let durations: Vec<f64> = a.durations().iter().map(|d| d.as_micros_f64()).collect();
    if durations.len() >= 20 {
        let e = Ecdf::new(durations);
        assert!(e.quantile(0.9) <= 250.0, "web p90 {}us", e.quantile(0.9));
    }
}

#[test]
fn hadoop_bursts_dominate_but_stay_sub_millisecond() {
    let utils = port_utils(RackType::Hadoop, 62, false);
    let a = extract_bursts(&utils, HOT_THRESHOLD);
    assert!(
        a.hot_fraction() > 0.05,
        "hadoop hot fraction {}",
        a.hot_fraction()
    );
    let durations: Vec<f64> = a.durations().iter().map(|d| d.as_micros_f64()).collect();
    let e = Ecdf::new(durations);
    assert!(
        e.quantile(0.9) <= 600.0,
        "hadoop p90 {}us too long",
        e.quantile(0.9)
    );
    assert!(
        e.fraction_at_or_below(1_000.0) > 0.95,
        "hadoop bursts should almost all end within 1ms"
    );
}

#[test]
fn markov_ratios_are_ordered_like_the_paper() {
    // Pool two racks per type for stability.
    let r_of = |rack_type: RackType| {
        let mut n01 = 0.0;
        let mut n0 = 0.0;
        let mut n11 = 0.0;
        let mut n1 = 0.0;
        for seed in [63, 64] {
            let uplink = rack_type == RackType::Cache;
            let utils = port_utils(rack_type, seed, uplink);
            let chain = hot_chain(&utils, HOT_THRESHOLD);
            let m = fit_transition_matrix(&chain);
            n01 += m.p01 * m.from0 as f64;
            n0 += m.from0 as f64;
            if m.from1 > 0 {
                n11 += m.p11 * m.from1 as f64;
                n1 += m.from1 as f64;
            }
        }
        (n11 / n1) / (n01 / n0)
    };
    let web = r_of(RackType::Web);
    let cache = r_of(RackType::Cache);
    let hadoop = r_of(RackType::Hadoop);
    assert!(
        web > cache && cache > hadoop,
        "ordering broken: web {web:.1}, cache {cache:.1}, hadoop {hadoop:.1}"
    );
    assert!(hadoop > 3.0, "even hadoop is far from memoryless");
}

#[test]
fn cache_bursts_live_on_uplinks() {
    let up = port_utils(RackType::Cache, 65, true);
    let dn = port_utils(RackType::Cache, 65, false);
    let hot_up = extract_bursts(&up, HOT_THRESHOLD).hot_fraction();
    let hot_dn = extract_bursts(&dn, HOT_THRESHOLD).hot_fraction();
    assert!(
        hot_up > 10.0 * hot_dn.max(1e-6),
        "cache uplink hot {hot_up} should dwarf downlink {hot_dn}"
    );
}

#[test]
fn interburst_gaps_are_not_poisson() {
    let utils = port_utils(RackType::Cache, 66, true);
    let a = extract_bursts(&utils, HOT_THRESHOLD);
    let gaps: Vec<f64> = a.gaps.iter().map(|g| g.as_micros_f64()).collect();
    assert!(gaps.len() > 50, "need gaps to test ({} found)", gaps.len());
    let ks = ks_test_exponential(&gaps);
    assert!(
        ks.p_value < 0.01,
        "gaps looked exponential (p = {})",
        ks.p_value
    );
}
