//! Interval auto-tuning: the paper's Table 1 procedure, automated.
//!
//! "For the counters we measure, we manually determine the minimum sampling
//! interval possible while maintaining ~1% sampling loss" (§4.1). This
//! example probes the loss curve for three counter classes and then lets
//! the auto-tuner find each one's minimum interval — including the shared
//! dedicated-core vs. low-CPU shared-core tradeoff.
//!
//! Run with `cargo run --release --example tune_sampler`.

use uburst::prelude::*;
use uburst::telemetry::probe_loss_profile;

fn main() {
    let access = AccessModel::default();
    let duration = Nanos::from_millis(300);

    println!("loss curve for a single byte counter (dedicated core):");
    println!(
        "{:>10}  {:>15}  {:>12}",
        "interval", "empty_intervals", "late_samples"
    );
    for us in [1u64, 2, 5, 10, 15, 25, 50] {
        let (miss, late) = probe_loss_profile(
            &[CounterId::TxBytes(PortId(0))],
            access,
            Nanos::from_micros(us),
            duration,
            CoreMode::Dedicated,
            us,
        );
        println!(
            "{:>9}us  {:>14.1}%  {:>11.1}%",
            us,
            miss * 100.0,
            late * 100.0
        );
    }

    println!("\nauto-tuned minimum intervals at 1% target loss:");
    let tuning = TuningConfig {
        probe_duration: duration,
        ..TuningConfig::default()
    };
    let classes: Vec<(&str, Vec<CounterId>, Nanos)> = vec![
        (
            "byte counter (register)",
            vec![CounterId::TxBytes(PortId(0))],
            Nanos::from_micros(200),
        ),
        (
            "size-histogram bin (memory)",
            vec![CounterId::TxSizeHist(PortId(0), 0)],
            Nanos::from_micros(200),
        ),
        (
            "buffer peak (wide memory)",
            vec![CounterId::BufferPeak],
            Nanos::from_micros(400),
        ),
        (
            "4 byte counters in one campaign",
            (0..4).map(|p| CounterId::TxBytes(PortId(p))).collect(),
            Nanos::from_micros(200),
        ),
    ];
    for (name, counters, max) in classes {
        let cfg = TuningConfig {
            max_interval: max,
            ..tuning
        };
        let r = tune_min_interval(&counters, access, &cfg);
        println!(
            "  {name:<32} -> {} ({} probes)",
            r.min_interval,
            r.probes.len()
        );
    }

    println!("\nshared-core mode trades precision for CPU (paper: <=20% utilization):");
    for mode in [CoreMode::Dedicated, CoreMode::Shared] {
        let (miss, _) = probe_loss_profile(
            &[CounterId::TxBytes(PortId(0))],
            access,
            Nanos::from_micros(25),
            duration,
            mode,
            99,
        );
        println!("  {mode:?}: miss fraction at 25us = {:.1}%", miss * 100.0);
    }
}
