//! The Cache rack workload.
//!
//! §4.2: "Cache: These servers serve as an in-memory cache of data used by
//! the web servers. Some of these servers are leaders, which handle cache
//! coherency, and some are followers, which serve most read requests."
//! The properties the paper measures:
//!
//! * **correlated server subsets** (Fig. 8b): "their requests are initiated
//!   in groups from web servers ... those subsets are potentially involved
//!   in the same scatter-gather requests" — here made explicit as *pods*
//!   that a scatter-gather request targets together;
//! * **uplink-directed bursts** (Fig. 9): "cache responses are typically
//!   much larger than the requests. Thus, Cache servers will almost always
//!   send more traffic than they receive. Combined with modest
//!   oversubscription at the ToR layer, the communication bottleneck for
//!   these racks lies in their ToRs' uplinks";
//! * longer bursts than Web, shorter than Hadoop (Fig. 3).
//!
//! The cache servers themselves are [`ResponderApp`]s (see `responder`);
//! this module provides [`CacheFrontendApp`], the remote web tier issuing
//! scatter-gather reads, plus leader-bound coherency writes.

use uburst_sim::node::NodeId;
use uburst_sim::time::Nanos;

use crate::host::{App, Env, Incoming};
use crate::tags::MsgKind;
use crate::web::SizeDist;

/// Frontend tuning.
#[derive(Debug, Clone)]
pub struct CacheFrontendConfig {
    /// The measured rack's cache servers, in rack order.
    pub cache_nodes: Vec<NodeId>,
    /// Correlated pods: index sets into `cache_nodes`. A scatter-gather
    /// request targets one pod (the shards of one data set).
    pub pods: Vec<Vec<usize>>,
    /// Scatter-gather groups per second from this frontend
    /// (diurnal-scaled by the scenario builder).
    pub rate_per_s: f64,
    /// Probability each pod member is actually queried per group
    /// (sharding misses / request-dependent key sets).
    pub member_prob: f64,
    /// Request size, sampled **once per group** and shared by all members
    /// (a multiget's key list goes to every shard), which is part of what
    /// correlates pod members at small timescales.
    pub req: SizeDist,
    /// Per-shard response size. Cache responses dwarf requests.
    pub resp: SizeDist,
    /// Cache servers (indices) acting as leaders, receiving coherency
    /// writes.
    pub leaders: Vec<usize>,
    /// Coherency writes per second toward a random leader.
    pub write_rate_per_s: f64,
    /// Coherency write size.
    pub write: SizeDist,
    /// Scatter-gather groups per frontend event, uniform in `[min, max]`.
    /// Page assembly issues dependent lookup rounds back-to-back, so groups
    /// arrive in micro-trains; the paper's Cache burst likelihood ratio
    /// (Table 2) reflects exactly this clustering.
    pub train: (usize, usize),
    /// Mean spacing between groups within a train.
    pub train_gap: Nanos,
}

impl Default for CacheFrontendConfig {
    fn default() -> Self {
        CacheFrontendConfig {
            cache_nodes: Vec::new(),
            pods: Vec::new(),
            rate_per_s: 500.0,
            member_prob: 0.9,
            req: SizeDist {
                median: 600,
                sigma: 1.0,
                cap: 20_000,
            },
            resp: SizeDist {
                median: 12_000,
                sigma: 1.2,
                cap: 300_000,
            },
            leaders: Vec::new(),
            write_rate_per_s: 50.0,
            write: SizeDist {
                median: 2_000,
                sigma: 0.8,
                cap: 50_000,
            },
            train: (1, 5),
            train_gap: Nanos::from_micros(60),
        }
    }
}

const TOKEN_NEXT_READ: u64 = 1;
const TOKEN_NEXT_WRITE: u64 = 2;
const TOKEN_TRAIN: u64 = 3;

/// A remote web frontend driving the cache rack.
pub struct CacheFrontendApp {
    cfg: CacheFrontendConfig,
    next_group: u32,
    /// Groups left in the in-progress train and its pod.
    train_left: usize,
    train_pod: usize,
    /// Scatter-gather groups issued (diagnostics).
    pub groups_sent: u64,
    /// Shard responses received (diagnostics).
    pub responses_received: u64,
}

impl CacheFrontendApp {
    /// A frontend with the given tuning.
    pub fn new(cfg: CacheFrontendConfig) -> Self {
        assert!(!cfg.cache_nodes.is_empty(), "no cache servers");
        assert!(!cfg.pods.is_empty(), "no pods defined");
        for pod in &cfg.pods {
            assert!(
                pod.iter().all(|&i| i < cfg.cache_nodes.len()),
                "pod index out of range"
            );
            assert!(!pod.is_empty(), "empty pod");
        }
        assert!(cfg.leaders.iter().all(|&i| i < cfg.cache_nodes.len()));
        assert!(cfg.train.0 >= 1 && cfg.train.0 <= cfg.train.1);
        CacheFrontendApp {
            cfg,
            next_group: 0,
            train_left: 0,
            train_pod: 0,
            groups_sent: 0,
            responses_received: 0,
        }
    }

    fn mean_train(&self) -> f64 {
        (self.cfg.train.0 + self.cfg.train.1) as f64 / 2.0
    }

    fn schedule_read(&self, env: &mut Env<'_, '_>) {
        // Event rate = group rate / groups per event.
        let event_rate = self.cfg.rate_per_s / self.mean_train();
        let gap = env.rng.exp(1.0 / event_rate);
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_NEXT_READ);
    }

    fn continue_train(&mut self, env: &mut Env<'_, '_>) {
        if self.train_left == 0 {
            self.schedule_read(env);
            return;
        }
        let gap = env.rng.exp(self.cfg.train_gap.as_secs_f64());
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_TRAIN);
    }

    fn schedule_write(&self, env: &mut Env<'_, '_>) {
        if self.cfg.leaders.is_empty() || self.cfg.write_rate_per_s <= 0.0 {
            return;
        }
        let gap = env.rng.exp(1.0 / self.cfg.write_rate_per_s);
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_NEXT_WRITE);
    }

    fn issue_scatter_gather(&mut self, env: &mut Env<'_, '_>, pod_idx: usize) {
        let group = self.next_group;
        self.next_group = self.next_group.wrapping_add(1);
        // Indexing a field while mutably borrowing env: copy the pod out.
        let pod: Vec<usize> = self.cfg.pods[pod_idx].clone();
        // The multiget's key list is the same for every shard.
        let req_bytes = self.cfg.req.sample(env.rng);
        let mut any = false;
        for &member in &pod {
            if env.rng.chance(self.cfg.member_prob) {
                let bytes = self.cfg.resp.sample(env.rng);
                env.send_request_sized(self.cfg.cache_nodes[member], req_bytes, bytes, group);
                any = true;
            }
        }
        if !any {
            // Guarantee at least one shard read per group.
            let member = pod[env.rng.below(pod.len() as u64) as usize];
            let bytes = self.cfg.resp.sample(env.rng);
            env.send_request_sized(self.cfg.cache_nodes[member], req_bytes, bytes, group);
        }
        self.groups_sent += 1;
    }
}

impl App for CacheFrontendApp {
    fn start(&mut self, env: &mut Env<'_, '_>) {
        self.schedule_read(env);
        self.schedule_write(env);
    }

    fn on_timer(&mut self, env: &mut Env<'_, '_>, token: u64) {
        match token {
            TOKEN_NEXT_READ => {
                // A new train: all its lookup rounds hit the same pod
                // (dependent reads of one data set).
                let len = env
                    .rng
                    .range(self.cfg.train.0 as u64, self.cfg.train.1 as u64)
                    as usize;
                self.train_pod = env.rng.below(self.cfg.pods.len() as u64) as usize;
                self.train_left = len - 1;
                let pod = self.train_pod;
                self.issue_scatter_gather(env, pod);
                self.continue_train(env);
            }
            TOKEN_TRAIN => {
                self.train_left -= 1;
                let pod = self.train_pod;
                self.issue_scatter_gather(env, pod);
                self.continue_train(env);
            }
            TOKEN_NEXT_WRITE => {
                let leader_idx = *env.rng.pick(&self.cfg.leaders);
                let dst = self.cfg.cache_nodes[leader_idx];
                let bytes = self.cfg.write.sample(env.rng);
                env.send_data(dst, bytes, 0);
                self.schedule_write(env);
            }
            other => debug_assert!(false, "unknown frontend token {other}"),
        }
    }

    fn on_flow_received(&mut self, _env: &mut Env<'_, '_>, msg: Incoming) {
        if msg.kind == MsgKind::Response {
            self.responses_received += 1;
        }
    }
}

/// Partitions `n` servers into contiguous pods of size `pod_size` (last pod
/// takes the remainder). The contiguity is irrelevant to the network — it
/// just makes Fig. 8's block structure visible on the heatmap diagonal.
pub fn contiguous_pods(n: usize, pod_size: usize) -> Vec<Vec<usize>> {
    assert!(pod_size >= 1);
    (0..n)
        .collect::<Vec<usize>>()
        .chunks(pod_size)
        .map(<[usize]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::AppHost;
    use crate::responder::{ResponderApp, ResponderConfig};
    use uburst_sim::counters::null_sink;
    use uburst_sim::link::LinkSpec;
    use uburst_sim::nic::NicConfig;
    use uburst_sim::node::PortId;
    use uburst_sim::routing::{Route, RoutingTable};
    use uburst_sim::sim::Simulator;
    use uburst_sim::switch::{Switch, SwitchConfig};
    use uburst_sim::transport::TransportConfig;

    #[test]
    fn pods_partition_everyone() {
        let pods = contiguous_pods(10, 4);
        assert_eq!(pods, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        let flat: Vec<usize> = pods.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_gather_reaches_pod_members() {
        let mut sim = Simulator::new();
        let caches: Vec<NodeId> = (0..6)
            .map(|i| {
                AppHost::spawn(
                    &mut sim,
                    Box::new(ResponderApp::new(ResponderConfig::default())),
                    NicConfig::default(),
                    TransportConfig::default(),
                    10 + i,
                    Nanos::ZERO,
                )
            })
            .collect();
        let frontend = AppHost::spawn(
            &mut sim,
            Box::new(CacheFrontendApp::new(CacheFrontendConfig {
                cache_nodes: caches.clone(),
                pods: contiguous_pods(6, 3),
                rate_per_s: 3_000.0,
                member_prob: 1.0,
                leaders: vec![0],
                write_rate_per_s: 500.0,
                ..CacheFrontendConfig::default()
            })),
            NicConfig::default(),
            TransportConfig::default(),
            99,
            Nanos::ZERO,
        );

        let mut routing = RoutingTable::new(0);
        let all: Vec<NodeId> = caches.iter().copied().chain([frontend]).collect();
        for (i, &h) in all.iter().enumerate() {
            routing.set_route(h, Route::Port(PortId(i as u16)));
        }
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::default(),
            routing,
            null_sink(),
        )));
        for (i, &h) in all.iter().enumerate() {
            sim.connect(
                (h, PortId(0)),
                (sw, PortId(i as u16)),
                LinkSpec::gbps(10.0, Nanos(500)),
            );
        }

        sim.run_until(Nanos::from_millis(100));

        let fe = sim.node::<AppHost>(frontend).app::<CacheFrontendApp>();
        assert!(fe.groups_sent >= 200, "groups {}", fe.groups_sent);
        // Every request in a group went out with member_prob = 1, so
        // responses = 3 * groups (minus in-flight tail).
        assert!(
            fe.responses_received as f64 >= 2.5 * fe.groups_sent as f64,
            "responses {} for {} groups",
            fe.responses_received,
            fe.groups_sent
        );
        // All cache servers served something; the leader also absorbed
        // writes without replying to them.
        for &c in &caches {
            assert!(sim.node::<AppHost>(c).app::<ResponderApp>().served > 0);
        }
    }

    #[test]
    #[should_panic(expected = "pod index out of range")]
    fn bad_pod_rejected() {
        CacheFrontendApp::new(CacheFrontendConfig {
            cache_nodes: vec![NodeId(0)],
            pods: vec![vec![3]],
            ..CacheFrontendConfig::default()
        });
    }
}
