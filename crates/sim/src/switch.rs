//! The shared-buffer output-queued switch.
//!
//! Models the class of merchant-silicon ToR switch the paper measured:
//!
//! * **Output queueing**: every packet is classified to an egress port on
//!   arrival and waits in that port's queue.
//! * **Shared buffer with pluggable carving**: all ports draw from one
//!   buffer pool; *how* the pool is carved between them is a
//!   [`BufferPolicy`](crate::bufpolicy::BufferPolicy). The default is
//!   Choudhury–Hahne dynamic thresholds (a port may enqueue while its
//!   queue stays below `alpha * (pool - used)`, the scheme Broadcom-class
//!   ASICs implement — "buffers in our switches are shared and dynamically
//!   carved", §5.1 footnote); static partition, delay-driven sharing
//!   (BShare), and flexible buffering (FB) are the alternatives the
//!   `ext_buffer_policy` experiment sweeps.
//! * **Congestion discards**: admission failures increment per-port discard
//!   counters; there is no corruption loss in the simulator.
//!
//! Every packet movement is reported to the switch's [`CounterSink`], which
//! is where the ASIC counter model (crate `uburst-asic`) plugs in.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::bufpolicy::{BufferPolicy, BufferPolicyCfg};
use crate::counters::{CounterSink, SharedSink};
use crate::fastfwd::DepartureBook;
use crate::node::{Ctx, Node, PortId};
use crate::packet::Packet;
use crate::routing::RoutingTable;
use crate::time::Nanos;

/// Static switch parameters.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of ports (dense, `0..ports`).
    pub ports: u16,
    /// Shared packet buffer size in bytes. ToR-class ASICs of the paper's
    /// era carried 12–16 MB; the default mirrors that.
    pub buffer_bytes: u64,
    /// How the shared pool is carved between ports. The default is
    /// dynamic thresholding at alpha 1.0 (typical deployments run alpha
    /// in [1/2, 2]); see [`crate::bufpolicy`] for the alternatives.
    pub policy: BufferPolicyCfg,
    /// ECN marking threshold in bytes of egress-queue depth: packets
    /// admitted while the queue holds more than this are CE-marked.
    /// `None` disables marking (the measured network's configuration).
    pub ecn_threshold: Option<u64>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 32,
            buffer_bytes: 12 << 20,
            policy: BufferPolicyCfg::default(),
            ecn_threshold: None,
        }
    }
}

/// Aggregate statistics kept by the switch itself (the per-port counters
/// live in the sink). Used by invariant tests and topology debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames received across all ports.
    pub rx_packets: u64,
    /// Bytes received across all ports.
    pub rx_bytes: u64,
    /// Frames transmitted across all ports.
    pub tx_packets: u64,
    /// Bytes transmitted across all ports.
    pub tx_bytes: u64,
    /// Frames discarded by buffer admission (congestion discards).
    pub dropped_packets: u64,
    /// Bytes discarded by buffer admission.
    pub dropped_bytes: u64,
    /// Packets with no matching route (a topology bug if nonzero).
    pub unroutable: u64,
    /// Packets whose route resolved back out their ingress port (a
    /// routing loop — a table bug if nonzero). Dropped and counted here
    /// rather than bounced back where they came from.
    pub hairpin: u64,
}

/// Buffer-accounting state shared between the switch node and its counter
/// bank's flush hook (see [`crate::fastfwd`]).
///
/// In hybrid mode the switch never schedules `TxComplete` events: admitted
/// frames park their closed-form departure time in `departures`, and the
/// TX-side accounting is applied lazily by [`SwitchCore::settle_to`] — from
/// the switch's own arrival path (so admission always tests *current*
/// occupancy), from the counter bank before a poll-instant read, and from
/// the simulator at run boundaries. The state lives behind
/// `Rc<RefCell<_>>` so the bank hook can reach it while the node owns it.
struct SwitchCore {
    /// Bytes each port holds in the shared buffer (queued + in flight) —
    /// the hot array: every admission test reads exactly one entry.
    held_bytes: Vec<u64>,
    /// When each port's last admitted frame finishes serializing (hybrid
    /// mode). `dep_j = max(adm_j, free_at) + ser_j`.
    free_at: Vec<u64>,
    /// Total bytes currently held in the shared buffer.
    buffered: u64,
    stats: SwitchStats,
    /// Admitted-but-unsettled departures (hybrid mode; empty otherwise).
    departures: DepartureBook,
    /// Earliest unsettled departure (`u64::MAX` when none): one compare
    /// decides whether an arrival needs to settle at all.
    next_dep: u64,
    /// The carving policy consulted on every admission (built once from
    /// [`SwitchConfig::policy`]).
    policy: Box<dyn BufferPolicy>,
}

impl SwitchCore {
    fn new(ports: usize, policy: Box<dyn BufferPolicy>) -> Self {
        SwitchCore {
            held_bytes: vec![0; ports],
            free_at: vec![0; ports],
            buffered: 0,
            stats: SwitchStats::default(),
            departures: DepartureBook::with_ports(ports),
            next_dep: u64::MAX,
            policy,
        }
    }

    /// Admission test: may a packet of `size` bytes join egress `port`'s
    /// queue right now? The physical pool bound is enforced here; the
    /// carving question goes to the policy. Pure in the current occupancy
    /// state, which is what lets both execution engines share this call
    /// (hybrid mode settles departures before every admission).
    fn admits(&self, cfg: &SwitchConfig, port: usize, size: u32) -> bool {
        let size = u64::from(size);
        if self.buffered + size > cfg.buffer_bytes {
            return false; // pool exhausted
        }
        self.policy.admit(
            port,
            size,
            &self.held_bytes,
            self.buffered,
            cfg.buffer_bytes,
        )
    }

    /// Applies every departure at or before `now`: releases buffer
    /// occupancy and emits the TX counters the packet-mode `TxComplete`
    /// handler would have emitted at exactly those instants. Per-counter
    /// adds are commutative and the buffer level only needs its final
    /// value (departures never raise the peak register — occupancy maxima
    /// are attained at admissions), so one trailing `buffer_level` call
    /// reproduces the packet-mode cell values byte-for-byte.
    fn settle_to(&mut self, now: Nanos, sink: &dyn CounterSink) {
        if self.next_dep > now.0 {
            return;
        }
        let held = &mut self.held_bytes;
        let stats = &mut self.stats;
        let policy = &mut self.policy;
        let mut buffered = self.buffered;
        self.next_dep = self.departures.drain_due(now, |port, size| {
            held[port.0 as usize] -= u64::from(size);
            buffered -= u64::from(size);
            stats.tx_packets += 1;
            stats.tx_bytes += u64::from(size);
            sink.count_tx(port, size);
            policy.on_departure(port.0 as usize, u64::from(size));
        });
        self.buffered = buffered;
        sink.buffer_level(self.buffered);
    }
}

/// A shared-buffer switch node. See the module docs for the model.
///
/// Per-port state is kept struct-of-arrays: the admission test and ECN
/// check touch only `held_bytes` (a dense `u64` array — eight ports per
/// cache line), while the FIFO payloads and in-flight packets, which are
/// only read on enqueue/dequeue, live in their own arrays.
pub struct Switch {
    cfg: SwitchConfig,
    routing: RoutingTable,
    sink: SharedSink,
    /// Occupancy + statistics, shared with the sink's flush hook.
    core: Rc<RefCell<SwitchCore>>,
    /// The packet each port is currently serializing, if any (packet mode).
    /// Its bytes still occupy the shared buffer until transmission
    /// completes.
    in_flight: Vec<Option<Packet>>,
    /// FIFO payloads per port (packet mode; hybrid mode integrates the
    /// drain in closed form instead of materializing it).
    queues: Vec<VecDeque<Packet>>,
}

impl Switch {
    /// A switch with the given configuration, routes, and counter sink.
    ///
    /// Registers a flush hook with the sink so counter banks that are read
    /// mid-run can settle this switch's deferred departures before a read
    /// (a no-op for sinks that ignore hooks, and for packet mode, where
    /// the departure book stays empty).
    pub fn new(cfg: SwitchConfig, routing: RoutingTable, sink: SharedSink) -> Self {
        assert!(cfg.ports > 0 && cfg.buffer_bytes > 0 && cfg.policy.is_valid());
        let n = cfg.ports as usize;
        let core = Rc::new(RefCell::new(SwitchCore::new(n, cfg.policy.build(n))));
        let hook_core = Rc::clone(&core);
        sink.register_flush(Box::new(move |sink, now| {
            hook_core.borrow_mut().settle_to(now, sink);
        }));
        Switch {
            cfg,
            routing,
            sink,
            core,
            in_flight: (0..n).map(|_| None).collect(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Aggregate forwarding statistics.
    pub fn stats(&self) -> SwitchStats {
        self.core.borrow().stats
    }

    /// The switch's static configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Current shared-buffer occupancy in bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.core.borrow().buffered
    }

    /// Bytes held by one egress port (queued + in flight).
    pub fn port_held_bytes(&self, port: PortId) -> u64 {
        self.core.borrow().held_bytes[port.0 as usize]
    }

    #[cfg(test)]
    fn admits(&self, port: usize, size: u32) -> bool {
        self.core.borrow().admits(&self.cfg, port, size)
    }

    /// Starts transmission on `port` if it is idle and has queued packets
    /// (packet mode only).
    fn try_start_tx(&mut self, ctx: &mut Ctx<'_>, port: usize) {
        if self.in_flight[port].is_some() {
            return;
        }
        if let Some(pkt) = self.queues[port].pop_front() {
            self.in_flight[port] = Some(pkt);
            ctx.start_tx(PortId(port as u16), pkt);
        }
    }
}

impl Node for Switch {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, ingress: PortId, pkt: Packet) {
        let now = ctx.now();
        let core = Rc::clone(&self.core);
        let mut core = core.borrow_mut();
        if ctx.hybrid() {
            // Release every departure due by now first, so the admission
            // test below sees the same occupancy packet mode would.
            core.settle_to(now, &*self.sink);
        }
        core.stats.rx_packets += 1;
        core.stats.rx_bytes += u64::from(pkt.size);
        self.sink.count_rx(ingress, pkt.size);

        let Some(egress) = self.routing.lookup(pkt.dst, pkt.ecmp_key(), now) else {
            core.stats.unroutable += 1;
            return;
        };
        if egress == ingress {
            // A route that resolves back out the ingress port is a table
            // bug (one-armed routing is not modelled). Bouncing the frame
            // back where it came from would silently forward garbage in
            // release builds — drop it and count it as its own class so
            // the loop is visible in the stats.
            core.stats.hairpin += 1;
            return;
        }
        let e = egress.0 as usize;

        if !core.admits(&self.cfg, e, pkt.size) {
            core.stats.dropped_packets += 1;
            core.stats.dropped_bytes += u64::from(pkt.size);
            self.sink.count_drop(egress, pkt.size);
            return;
        }

        core.buffered += u64::from(pkt.size);
        self.sink.buffer_level(core.buffered);
        let mut pkt = pkt;
        if let Some(k) = self.cfg.ecn_threshold {
            // Mark on the queue depth *including* the arriving frame, so
            // the exact frame that pushes the queue past K is CE-marked.
            // (Testing the pre-admission depth lets a queue hovering at K
            // admit unmarked traffic indefinitely — one frame of bias per
            // crossing, which a DCTCP-style sender never hears about.)
            if core.held_bytes[e] + u64::from(pkt.size) > k && pkt.is_data() {
                pkt.ce = true;
            }
        }
        core.held_bytes[e] += u64::from(pkt.size);

        if ctx.hybrid() {
            // Closed-form FIFO drain: the departure time is fully
            // determined at admission, so schedule the peer's arrival
            // directly and park the departure for lazy settlement instead
            // of materializing the queue and a TxComplete event.
            let link = *ctx
                .link(egress)
                .unwrap_or_else(|| panic!("node {:?} port {:?} is not wired", ctx.node(), egress));
            let ser = link.spec.ser_time(pkt.size);
            let dep = Nanos(now.0.max(core.free_at[e]) + ser.0);
            core.free_at[e] = dep.0;
            core.departures.push(dep, egress, pkt.size);
            core.next_dep = core.next_dep.min(dep.0);
            let (peer_node, peer_port) = link.peer;
            ctx.schedule_arrival(dep + link.spec.propagation, peer_node, peer_port, pkt);
        } else {
            self.queues[e].push_back(pkt);
            drop(core);
            self.try_start_tx(ctx, e);
        }
    }

    fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        let i = port.0 as usize;
        let pkt = self.in_flight[i].take().expect("tx-complete on idle port");
        {
            let mut core = self.core.borrow_mut();
            core.held_bytes[i] -= u64::from(pkt.size);
            core.buffered -= u64::from(pkt.size);
            core.stats.tx_packets += 1;
            core.stats.tx_bytes += u64::from(pkt.size);
            self.sink.count_tx(port, pkt.size);
            self.sink.buffer_level(core.buffered);
            core.policy.on_departure(i, u64::from(pkt.size));
        }
        self.try_start_tx(ctx, i);
    }

    fn settle_lazy(&mut self, now: Nanos) {
        self.core.borrow_mut().settle_to(now, &*self.sink);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::null_sink;
    use crate::link::LinkSpec;
    use crate::node::NodeId;
    use crate::packet::{FlowId, PacketKind, MTU_FRAME};
    use crate::routing::Route;
    use crate::sim::Simulator;
    use crate::time::Nanos;

    /// Sink node that counts arrivals (and their CE marks, in order).
    struct SinkHost {
        rx: u64,
        rx_bytes: u64,
        ce_flags: Vec<bool>,
    }
    impl SinkHost {
        fn new() -> Self {
            SinkHost {
                rx: 0,
                rx_bytes: 0,
                ce_flags: Vec::new(),
            }
        }
    }
    impl Node for SinkHost {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.rx += 1;
            self.rx_bytes += u64::from(pkt.size);
            self.ce_flags.push(pkt.ce);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Source node that blasts `n` packets to `dst` when its timer fires.
    struct Blaster {
        dst: NodeId,
        n: u32,
        size: u32,
        /// Send transport data segments (ECN-markable) instead of raw
        /// datagrams.
        data: bool,
    }
    impl Node for Blaster {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            // Model an unpaced NIC: hand the whole burst to the wire
            // back-to-back by scheduling each packet's arrival directly.
            // (Bypasses NIC queueing deliberately; this is a switch test.)
            let link = *ctx.link(PortId(0)).unwrap();
            let mut t = ctx.now();
            for i in 0..self.n {
                let kind = if self.data {
                    PacketKind::Data {
                        seq: i,
                        total: self.n,
                        flow_bytes: 0,
                        tag: 0,
                        retx: false,
                    }
                } else {
                    PacketKind::Raw { tag: 0 }
                };
                let pkt = Packet {
                    flow: FlowId(u64::from(i)),
                    kind,
                    src: ctx.node(),
                    dst: self.dst,
                    size: self.size,
                    created: ctx.now(),
                    ce: false,
                };
                t += link.spec.ser_time(self.size);
                // Serialize sequentially on our access link.
                ctx.schedule_arrival(t + link.spec.propagation, link.peer.0, link.peer.1, pkt);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Two senders fan in to one 10G receiver through the switch.
    fn fan_in_setup(
        buffer_bytes: u64,
        alpha: f64,
        burst: u32,
    ) -> (Simulator, NodeId, NodeId, SwitchStats) {
        fan_in_mode(buffer_bytes, alpha, burst, None)
    }

    fn fan_in_mode(
        buffer_bytes: u64,
        alpha: f64,
        burst: u32,
        hybrid: Option<bool>,
    ) -> (Simulator, NodeId, NodeId, SwitchStats) {
        let mut sim = Simulator::new();
        if let Some(h) = hybrid {
            sim.set_hybrid(h);
        }
        let recv = sim.add_node(Box::new(SinkHost::new()));
        let s1 = sim.add_node(Box::new(Blaster {
            dst: recv,
            n: burst,
            size: MTU_FRAME,
            data: false,
        }));
        let s2 = sim.add_node(Box::new(Blaster {
            dst: recv,
            n: burst,
            size: MTU_FRAME,
            data: false,
        }));

        let mut routing = RoutingTable::new(0);
        routing.set_route(recv, Route::Port(PortId(0)));
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig {
                ports: 3,
                buffer_bytes,
                policy: BufferPolicyCfg::dt(alpha),
                ecn_threshold: None,
            },
            routing,
            null_sink(),
        )));

        let spec = LinkSpec::gbps(10.0, Nanos(500));
        sim.connect((recv, PortId(0)), (sw, PortId(0)), spec);
        sim.connect((s1, PortId(0)), (sw, PortId(1)), spec);
        sim.connect((s2, PortId(0)), (sw, PortId(2)), spec);

        sim.schedule_timer(Nanos(0), s1, 0);
        sim.schedule_timer(Nanos(0), s2, 0);
        sim.run_until(Nanos::from_millis(100));

        let stats = sim.node::<Switch>(sw).stats();
        (sim, recv, sw, stats)
    }

    #[test]
    fn forwards_everything_with_big_buffer() {
        let (sim, recv, sw, stats) = fan_in_setup(64 << 20, 8.0, 200);
        assert_eq!(stats.rx_packets, 400);
        assert_eq!(stats.tx_packets, 400);
        assert_eq!(stats.dropped_packets, 0);
        assert_eq!(stats.unroutable, 0);
        assert_eq!(sim.node::<SinkHost>(recv).rx, 400);
        assert_eq!(sim.node::<Switch>(sw).buffered_bytes(), 0);
    }

    #[test]
    fn conservation_rx_equals_tx_plus_drops() {
        let (sim, recv, _sw, stats) = fan_in_setup(64 * 1024, 1.0, 500);
        assert_eq!(
            stats.rx_packets,
            stats.tx_packets + stats.dropped_packets + stats.unroutable + stats.hairpin
        );
        assert_eq!(stats.rx_bytes, stats.tx_bytes + stats.dropped_bytes);
        assert!(stats.dropped_packets > 0, "tiny buffer must drop");
        assert_eq!(sim.node::<SinkHost>(recv).rx, stats.tx_packets);
    }

    #[test]
    fn hybrid_matches_packet_mode() {
        // Uncongested, congested, and heavily-dropping fan-ins: the lazy
        // drain must reproduce packet-mode statistics and receiver-side
        // arrival counts exactly.
        for (buffer, alpha, burst) in [
            (64u64 << 20, 8.0, 200u32),
            (64 * 1024, 1.0, 500),
            (1 << 20, 0.25, 500),
        ] {
            let run = |h: bool| {
                let (sim, recv, sw, stats) = fan_in_mode(buffer, alpha, burst, Some(h));
                (
                    stats,
                    sim.node::<SinkHost>(recv).rx,
                    sim.node::<SinkHost>(recv).rx_bytes,
                    sim.node::<Switch>(sw).buffered_bytes(),
                )
            };
            assert_eq!(
                run(false),
                run(true),
                "mode divergence at buffer={buffer} alpha={alpha} burst={burst}"
            );
        }
    }

    #[test]
    fn smaller_alpha_drops_more() {
        let (_, _, _, loose) = fan_in_setup(1 << 20, 4.0, 500);
        let (_, _, _, tight) = fan_in_setup(1 << 20, 0.25, 500);
        assert!(
            tight.dropped_packets > loose.dropped_packets,
            "alpha=0.25 dropped {} <= alpha=4 dropped {}",
            tight.dropped_packets,
            loose.dropped_packets
        );
    }

    #[test]
    fn unroutable_is_counted_not_fatal() {
        let mut sim = Simulator::new();
        let recv = sim.add_node(Box::new(SinkHost::new()));
        let src = sim.add_node(Box::new(Blaster {
            dst: NodeId(999), // not in the routing table
            n: 3,
            size: 100,
            data: false,
        }));
        let routing = RoutingTable::new(0); // empty, no default
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::default(),
            routing,
            null_sink(),
        )));
        let spec = LinkSpec::gbps(10.0, Nanos(500));
        sim.connect((recv, PortId(0)), (sw, PortId(0)), spec);
        sim.connect((src, PortId(0)), (sw, PortId(1)), spec);
        sim.schedule_timer(Nanos(0), src, 0);
        sim.run_until(Nanos::from_millis(1));
        assert_eq!(sim.node::<Switch>(sw).stats().unroutable, 3);
        assert_eq!(sim.node::<SinkHost>(recv).rx, 0);
    }

    #[test]
    fn dt_threshold_shrinks_as_buffer_fills() {
        // Direct unit test of the admission rule.
        let mut routing = RoutingTable::new(0);
        routing.set_route(NodeId(0), Route::Port(PortId(0)));
        let sw = Switch::new(
            SwitchConfig {
                ports: 2,
                buffer_bytes: 10_000,
                policy: BufferPolicyCfg::dt(0.5),
                ecn_threshold: None,
            },
            routing,
            null_sink(),
        );
        // Empty buffer: threshold = 0.5 * 10_000 = 5_000.
        assert!(sw.admits(0, 4_000));
        assert!(!sw.admits(0, 6_000));
    }

    #[test]
    fn hairpin_routes_are_dropped_and_counted() {
        // A deliberately bad routing table: the route to `recv` points
        // back out the port the traffic arrives on. Release builds used
        // to bounce these frames back out the ingress; they must be
        // dropped and counted in their own class instead.
        let mut sim = Simulator::new();
        let recv = sim.add_node(Box::new(SinkHost::new()));
        let src = sim.add_node(Box::new(Blaster {
            dst: recv,
            n: 5,
            size: 100,
            data: false,
        }));
        let mut routing = RoutingTable::new(0);
        routing.set_route(recv, Route::Port(PortId(1))); // = src's ingress
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::default(),
            routing,
            null_sink(),
        )));
        let spec = LinkSpec::gbps(10.0, Nanos(500));
        sim.connect((recv, PortId(0)), (sw, PortId(0)), spec);
        sim.connect((src, PortId(0)), (sw, PortId(1)), spec);
        sim.schedule_timer(Nanos(0), src, 0);
        sim.run_until(Nanos::from_millis(1));
        let stats = sim.node::<Switch>(sw).stats();
        assert_eq!(stats.hairpin, 5);
        assert_eq!(stats.rx_packets, 5);
        assert_eq!(stats.tx_packets, 0, "hairpin frames must not forward");
        assert_eq!(
            stats.rx_packets,
            stats.tx_packets + stats.dropped_packets + stats.unroutable + stats.hairpin
        );
        assert_eq!(sim.node::<SinkHost>(recv).rx, 0);
    }

    /// One sender's frames through a slow egress with an ECN threshold of
    /// 3 MTU: queue depth at each admission is 0, 1, 2, 3, 4, 5 frames,
    /// so the 4th frame is the one that pushes the queue past K.
    fn ecn_fan_in(hybrid: bool) -> Vec<bool> {
        let mtu = u64::from(MTU_FRAME);
        let mut sim = Simulator::new();
        sim.set_hybrid(hybrid);
        let recv = sim.add_node(Box::new(SinkHost::new()));
        let src = sim.add_node(Box::new(Blaster {
            dst: recv,
            n: 6,
            size: MTU_FRAME,
            data: true, // only data segments are CE-markable
        }));
        let mut routing = RoutingTable::new(0);
        routing.set_route(recv, Route::Port(PortId(0)));
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig {
                ports: 2,
                buffer_bytes: 64 << 20, // no drops
                policy: BufferPolicyCfg::dt(8.0),
                ecn_threshold: Some(3 * mtu),
            },
            routing,
            null_sink(),
        )));
        // Egress ten times slower than ingress: all six frames are
        // admitted before the first departs, so the queue at admission i
        // holds exactly i-1 earlier frames.
        sim.connect(
            (recv, PortId(0)),
            (sw, PortId(0)),
            LinkSpec::gbps(1.0, Nanos(500)),
        );
        sim.connect(
            (src, PortId(0)),
            (sw, PortId(1)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
        sim.schedule_timer(Nanos(0), src, 0);
        sim.run_until(Nanos::from_millis(1));
        let flags = sim.node::<SinkHost>(recv).ce_flags.clone();
        assert_eq!(flags.len(), 6, "all six frames must arrive");
        flags
    }

    #[test]
    fn ecn_marks_the_exact_threshold_crossing_frame() {
        for hybrid in [false, true] {
            let flags = ecn_fan_in(hybrid);
            // Frame 4 takes the queue from 3 MTU to 4 MTU > K: it is the
            // crossing frame and must carry the first CE mark (the old
            // pre-admission test marked frame 5 instead).
            assert_eq!(
                flags,
                vec![false, false, false, true, true, true],
                "hybrid={hybrid}: first CE mark must be the crossing frame"
            );
        }
    }
}
