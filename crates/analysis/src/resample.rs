//! Coarse-grained resampling — the "SNMP view" of fine data.
//!
//! Figs. 1 and 2 show what production monitoring sees: utilization and
//! drops aggregated over minutes. This module turns a fine-grained
//! cumulative series into fixed coarse windows, so the harnesses can show
//! both views of the same simulated traffic, exactly as the paper contrasts
//! its framework with SNMP polling.

use uburst_core::Series;
use uburst_sim::time::Nanos;

/// One coarse window of a cumulative counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
    /// Counter delta attributed to this window.
    pub delta: u64,
}

impl Window {
    /// Average rate over the window in units/second.
    pub fn rate(&self) -> f64 {
        self.delta as f64 / (self.end - self.start).as_secs_f64()
    }

    /// Average utilization given the link speed in bits/second (for byte
    /// counters).
    pub fn utilization(&self, link_bps: u64) -> f64 {
        self.rate() / (link_bps as f64 / 8.0)
    }
}

/// Buckets a cumulative series into fixed windows of `width` starting at
/// `origin`. Each sample's delta is attributed to the window containing the
/// *end* of its interval (interval widths are microseconds against windows
/// of minutes, so the attribution error is negligible — the same
/// approximation an SNMP poller makes).
///
/// Windows before the first sample or without any samples report zero
/// delta, as a real poller's subtraction would.
pub fn to_windows(series: &Series, origin: Nanos, width: Nanos, end: Nanos) -> Vec<Window> {
    assert!(!width.is_zero(), "zero window width");
    assert!(end > origin, "empty range");
    let n_windows = (end - origin).as_nanos().div_ceil(width.as_nanos()) as usize;
    let mut deltas = vec![0u64; n_windows];
    for r in series.rates() {
        if r.t1 <= origin || r.t1 > end {
            continue;
        }
        let idx = ((r.t1 - origin).as_nanos() - 1) / width.as_nanos();
        deltas[idx as usize] += r.delta;
    }
    deltas
        .into_iter()
        .enumerate()
        .map(|(i, delta)| Window {
            start: origin + width * i as u64,
            end: (origin + width * (i as u64 + 1)).min(end),
            delta,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, u64)]) -> Series {
        let mut s = Series::new();
        for &(t, v) in points {
            s.push(Nanos(t), v);
        }
        s
    }

    #[test]
    fn deltas_land_in_their_windows() {
        // Samples every 10ns, value +5 per interval; windows of 20ns.
        let s = series(&[(0, 0), (10, 5), (20, 10), (30, 15), (40, 20)]);
        let w = to_windows(&s, Nanos(0), Nanos(20), Nanos(40));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].delta, 10);
        assert_eq!(w[1].delta, 10);
        assert_eq!(w[0].start, Nanos(0));
        assert_eq!(w[0].end, Nanos(20));
    }

    #[test]
    fn empty_windows_report_zero() {
        let s = series(&[(0, 0), (5, 100)]);
        let w = to_windows(&s, Nanos(0), Nanos(10), Nanos(40));
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].delta, 100);
        assert_eq!(w[1].delta, 0);
        assert_eq!(w[3].delta, 0);
    }

    #[test]
    fn total_is_conserved() {
        let s = series(&[(0, 0), (7, 3), (13, 9), (29, 10), (35, 40)]);
        let w = to_windows(&s, Nanos(0), Nanos(10), Nanos(40));
        let total: u64 = w.iter().map(|x| x.delta).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn rate_and_utilization() {
        let w = Window {
            start: Nanos(0),
            end: Nanos::from_secs(1),
            delta: 1_250_000_000, // 1.25 GB in 1s = 10 Gbps
        };
        assert!((w.rate() - 1.25e9).abs() < 1.0);
        assert!((w.utilization(10_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_outside_range_ignored() {
        let s = series(&[(0, 0), (50, 5), (150, 25)]);
        let w = to_windows(&s, Nanos(0), Nanos(100), Nanos(100));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].delta, 5, "the 150ns sample is out of range");
    }

    #[test]
    fn boundary_sample_goes_to_earlier_window() {
        // A delta ending exactly at a window boundary belongs to the window
        // it closed.
        let s = series(&[(0, 0), (20, 7)]);
        let w = to_windows(&s, Nanos(0), Nanos(20), Nanos(40));
        assert_eq!(w[0].delta, 7);
        assert_eq!(w[1].delta, 0);
    }
}
