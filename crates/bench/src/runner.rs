//! The shared benchmark runner behind every `benches/*.rs` harness.
//!
//! One timing policy instead of three copies of an ad-hoc loop:
//!
//! * **Warmup.** Each case runs untimed first, so page faults, lazy
//!   allocations, and cold caches (thread-local sort scratch, the OS file
//!   cache) are paid before the first measured iteration.
//! * **Minimum total time.** After the scale-adjusted iteration count
//!   ([`Scale::bench_iters`]) is met, the case keeps iterating until the
//!   measured time totals at least [`MIN_TOTAL_SECS`] (bounded by
//!   [`MAX_SAMPLES`]). Sub-millisecond cases on a noisy shared host get
//!   hundreds of samples instead of a handful, which is what makes the
//!   recorded median stable enough for the regression gate
//!   (`ext_bench_check`) to compare against committed baselines.
//!
//! The JSON schema is unchanged: each case still records
//! `{case, median_ms, best_ms, iters}`, with `iters` now the number of
//! samples actually taken.

use std::hint::black_box;
use std::time::Instant;

use crate::benchjson::BenchRecorder;
use crate::scale::Scale;

/// Keep sampling until at least this much measured time has accumulated.
const MIN_TOTAL_SECS: f64 = 0.3;

/// Hard cap on samples per case, so sub-microsecond cases terminate.
const MAX_SAMPLES: usize = 2_000;

/// Times `f`, prints one line, and records `{median, best, samples}` on
/// `rec`. `iters` is the full-scale iteration floor; the runner warms up
/// once, honors [`Scale::bench_iters`], then extends the run to
/// [`MIN_TOTAL_SECS`] of measured time. Returns the median in seconds.
pub fn bench<F: FnMut() -> u64>(
    rec: &mut BenchRecorder,
    name: &str,
    iters: usize,
    mut f: F,
) -> f64 {
    let floor = Scale::from_env().bench_iters(iters);
    let mut sink = black_box(f()); // warmup, untimed
    let mut times = Vec::with_capacity(floor);
    let mut total = 0.0f64;
    while times.len() < floor || (total < MIN_TOTAL_SECS && times.len() < MAX_SAMPLES) {
        let t0 = Instant::now();
        sink = sink.wrapping_add(black_box(f()));
        let dt = t0.elapsed().as_secs_f64();
        times.push(dt);
        total += dt;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    println!(
        "{name:<28} median {:>11.4} ms   best {:>11.4} ms   ({} samples)",
        median * 1e3,
        times[0] * 1e3,
        times.len()
    );
    rec.record(name, median * 1e3, times[0] * 1e3, times.len() as u32);
    black_box(sink);
    median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_cases_extend_to_the_time_floor() {
        // The recorder is only written on flush(), which this test never
        // calls — nothing touches the filesystem.
        let mut rec = BenchRecorder::new("runner-selftest");
        let mut calls = 0u64;
        let median = bench(&mut rec, "noop", 5, || {
            calls += 1;
            calls
        });
        // A no-op case must have been extended well past the 5-iteration
        // floor toward MIN_TOTAL_SECS (capped by MAX_SAMPLES).
        assert!(calls > 5, "only {calls} calls");
        assert!(median >= 0.0);
    }
}
