//! Pearson correlation (Fig. 1's corr coefficient, Fig. 8's heatmaps).

/// Number of independent accumulator lanes in the dot-product kernels.
///
/// A single running sum is a serial dependency chain: each add waits on
/// the previous one (~4 cycles on current cores), capping the campaign-
/// length dot products that dominate the k×k matrices at one element per
/// add latency. Four interleaved lanes keep the FP adder pipeline full.
/// The lane split and the combine order `(a0+a2)+(a1+a3)` then the tail
/// are part of the *defined* summation order: [`pearson`],
/// [`CenteredMatrix::new`], and [`CenteredMatrix::entry`] all use the
/// same scheme, which is what keeps them bit-identical to each other.
const LANES: usize = 4;

/// Dot product accumulated in [`LANES`] independent lanes (lane `l` sums
/// elements `l, l+LANES, …`), combined `(a0+a2)+(a1+a3)`, then the
/// remainder tail added serially.
fn dot_lanes(xs: &[f64], ys: &[f64]) -> f64 {
    let split = xs.len() - xs.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (xc, yc) in xs[..split]
        .chunks_exact(LANES)
        .zip(ys[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += xc[l] * yc[l];
        }
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (&x, &y) in xs[split..].iter().zip(&ys[split..]) {
        sum += x * y;
    }
    sum
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample has zero variance (a flat series is
/// uncorrelated with everything; this matches how heatmaps render idle
/// ports rather than propagating NaN).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty sample");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    // One pass, three sums, each in the same lane scheme as `dot_lanes`
    // so this stays bit-identical to `CenteredMatrix::entry`.
    let split = xs.len() - xs.len() % LANES;
    let mut axy = [0.0f64; LANES];
    let mut axx = [0.0f64; LANES];
    let mut ayy = [0.0f64; LANES];
    for (xc, yc) in xs[..split]
        .chunks_exact(LANES)
        .zip(ys[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            let dx = xc[l] - mx;
            let dy = yc[l] - my;
            axy[l] += dx * dy;
            axx[l] += dx * dx;
            ayy[l] += dy * dy;
        }
    }
    let mut sxy = (axy[0] + axy[2]) + (axy[1] + axy[3]);
    let mut sxx = (axx[0] + axx[2]) + (axx[1] + axx[3]);
    let mut syy = (ayy[0] + ayy[2]) + (ayy[1] + ayy[3]);
    for (&x, &y) in xs[split..].iter().zip(&ys[split..]) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// The shared O(k·n) precomputation behind [`correlation_matrix`]: each
/// series' centered values and (squared) norm, computed exactly once.
///
/// Splitting this out of the matrix driver lets callers distribute the
/// remaining O(k²·n) dot products however they like — the serial row loop
/// below, or a worker pool fanning rows (the bench crate's pooled driver)
/// — while every entry stays bit-identical: [`Self::entry`] performs the
/// same float operations in the same order as [`pearson`], and depends
/// only on `(i, j)`, never on which thread or in what order entries are
/// evaluated.
pub struct CenteredMatrix {
    centered: Vec<Vec<f64>>,
    sq_norms: Vec<f64>,
    norms: Vec<f64>,
}

impl CenteredMatrix {
    /// Centers every series and takes its norm — one pass per series,
    /// accumulated in the same order [`pearson`] would.
    ///
    /// # Panics
    /// Panics if series lengths differ.
    pub fn new(series: &[Vec<f64>]) -> Self {
        let n = series.first().map_or(0, Vec::len);
        assert!(series.iter().all(|s| s.len() == n), "unaligned series");
        let mut centered: Vec<Vec<f64>> = Vec::with_capacity(series.len());
        let mut sq_norms: Vec<f64> = Vec::with_capacity(series.len());
        for s in series {
            let m = s.iter().sum::<f64>() / n as f64;
            let c: Vec<f64> = s.iter().map(|&x| x - m).collect();
            sq_norms.push(dot_lanes(&c, &c));
            centered.push(c);
        }
        let norms: Vec<f64> = sq_norms.iter().map(|&s| s.sqrt()).collect();
        Self {
            centered,
            sq_norms,
            norms,
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.centered.len()
    }

    /// Whether there are no series.
    pub fn is_empty(&self) -> bool {
        self.centered.is_empty()
    }

    /// The correlation of series `i` and `j` — bit-identical to
    /// `pearson(&series[i], &series[j])` (and `1.0` on the diagonal).
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        if self.sq_norms[i] == 0.0 || self.sq_norms[j] == 0.0 {
            return 0.0;
        }
        let sxy = dot_lanes(&self.centered[i], &self.centered[j]);
        (sxy / (self.norms[i] * self.norms[j])).clamp(-1.0, 1.0)
    }

    /// The strict upper-triangle tail of row `i`: entries `(i, j)` for
    /// `j in i+1..k`. The unit of work a pooled driver fans out per row;
    /// symmetry fills the lower triangle.
    pub fn row_tail(&self, i: usize) -> Vec<f64> {
        ((i + 1)..self.len()).map(|j| self.entry(i, j)).collect()
    }

    /// Assembles the full symmetric matrix from per-row upper-triangle
    /// tails (as produced by [`Self::row_tail`] for each row in order).
    ///
    /// # Panics
    /// Panics if the tails do not form a strict upper triangle.
    pub fn assemble(&self, tails: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let k = self.len();
        assert_eq!(tails.len(), k, "wrong row count");
        let mut m = vec![vec![0.0; k]; k];
        for (i, tail) in tails.into_iter().enumerate() {
            assert_eq!(tail.len(), k - i - 1, "wrong tail length for row {i}");
            m[i][i] = 1.0;
            for (j, r) in ((i + 1)..k).zip(tail) {
                m[i][j] = r;
                m[j][i] = r;
            }
        }
        m
    }
}

/// Full correlation matrix across several aligned series — the server ×
/// server heatmap of Fig. 8.
///
/// Calling [`pearson`] per pair re-derives each series' mean and centered
/// values once per *pair* — O(k²·n) redundant passes for a 24×24 heatmap.
/// This centers each series exactly once via [`CenteredMatrix`], leaving
/// only the irreducible O(k²·n) dot products. Every entry is bit-identical
/// to the naive pairwise evaluation (asserted by
/// `matches_naive_pairwise_pearson` below).
///
/// # Panics
/// Panics if series lengths differ.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let c = CenteredMatrix::new(series);
    if c.is_empty() {
        return Vec::new();
    }
    let tails = (0..c.len()).map(|i| c.row_tail(i)).collect();
    c.assemble(tails)
}

/// Mean of the off-diagonal entries — a scalar "how correlated is this
/// rack" summary used when comparing rack types.
pub fn mean_offdiagonal(matrix: &[Vec<f64>]) -> f64 {
    let k = matrix.len();
    if k < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v;
                cnt += 1;
            }
        }
    }
    sum / cnt as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_near_zero() {
        // Deterministic "independent" pair: orthogonal sinusoid samples.
        let n = 10_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        assert!(pearson(&x, &y).abs() < 0.02);
    }

    #[test]
    fn constant_series_gives_zero() {
        let x = vec![5.0, 5.0, 5.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let s = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 1.0, 2.0, 2.0],
        ];
        let m = correlation_matrix(&s);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_offdiagonal_summary() {
        let m = vec![vec![1.0, 0.5], vec![0.5, 1.0]];
        assert!((mean_offdiagonal(&m) - 0.5).abs() < 1e-12);
        assert_eq!(mean_offdiagonal(&[]), 0.0);
    }

    #[test]
    fn empty_matrix_ok() {
        assert!(correlation_matrix(&[]).is_empty());
    }

    /// The optimized matrix must equal the naive per-pair evaluation
    /// **exactly** (same float ops in the same order), not just within an
    /// epsilon — Fig. 8's report strings depend on it.
    #[test]
    fn matches_naive_pairwise_pearson() {
        // Deterministic pseudo-random series, including a constant one to
        // exercise the zero-variance path.
        let k = 9;
        let n = 257;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut series: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            })
            .collect();
        series[4] = vec![0.375; n];

        let fast = correlation_matrix(&series);
        for i in 0..k {
            for j in 0..k {
                let naive = if i == j {
                    1.0
                } else {
                    pearson(&series[i], &series[j])
                };
                assert_eq!(
                    fast[i][j].to_bits(),
                    naive.to_bits(),
                    "entry ({i},{j}): fast {} != naive {naive}",
                    fast[i][j]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
