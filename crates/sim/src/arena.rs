//! Generational packet arena.
//!
//! Every transmission used to embed a full [`Packet`] (~64 bytes) inside
//! its `PacketArrive` event, so the calendar queue copied packet payloads
//! through every bucket push, merge-insert, and activation sort. The arena
//! splits that: in-flight packets live in one flat slot array, events carry
//! an 8-byte [`PacketRef`] handle, and slots are recycled through a
//! freelist — so a steady-state simulation performs **zero** per-packet
//! allocations and the event structures the scheduler actually moves
//! shrink to a third of their former size.
//!
//! Handles are **generational**: each slot carries a generation counter
//! bumped on free, and a [`PacketRef`] is only valid while its generation
//! matches. A stale or double [`PacketArena::take`] is a simulator bug
//! (an event delivered twice, or a packet freed behind the scheduler's
//! back) and panics loudly rather than silently aliasing a recycled slot.
//!
//! The arena is owned by the simulator; nodes never see handles — dispatch
//! resolves the handle back to a by-value [`Packet`] at delivery, so the
//! [`crate::node::Node::on_packet`] API is unchanged.

use crate::packet::Packet;

/// Handle to a packet parked in a [`PacketArena`]: slot index plus the
/// generation the slot had when allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    /// Whether the slot currently holds a live packet (guards `take`).
    live: bool,
    pkt: Packet,
}

/// Reuse and occupancy statistics (see [`PacketArena::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Handles ever allocated.
    pub allocated: u64,
    /// Handles ever taken back (freed).
    pub freed: u64,
    /// Allocations served from the freelist rather than by growing.
    pub reuse_hits: u64,
    /// Peak simultaneous live packets.
    pub high_water: usize,
}

/// A freelist-backed slot arena for in-flight packets.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    stats: ArenaStats,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pre-sized for `cap` simultaneously live packets.
    pub fn with_capacity(cap: usize) -> Self {
        PacketArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap.min(1024)),
            live: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Parks `pkt` in a slot and returns its handle.
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.stats.allocated += 1;
        self.live += 1;
        self.stats.high_water = self.stats.high_water.max(self.live);
        if let Some(idx) = self.free.pop() {
            self.stats.reuse_hits += 1;
            let slot = &mut self.slots[idx as usize];
            debug_assert!(!slot.live, "freelist pointed at a live slot");
            slot.live = true;
            slot.pkt = pkt;
            return PacketRef { idx, gen: slot.gen };
        }
        let idx = u32::try_from(self.slots.len()).expect("arena slot overflow");
        self.slots.push(Slot {
            gen: 0,
            live: true,
            pkt,
        });
        PacketRef { idx, gen: 0 }
    }

    /// Takes the packet back, freeing the slot for reuse.
    ///
    /// # Panics
    /// Panics if the handle is stale (its slot was already freed) — that is
    /// a double delivery, which would silently corrupt a simulation.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let slot = &mut self.slots[r.idx as usize];
        assert!(
            slot.live && slot.gen == r.gen,
            "stale packet ref {:?} (slot gen {}, live {})",
            r,
            slot.gen,
            slot.live
        );
        slot.live = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.stats.freed += 1;
        self.free.push(r.idx);
        slot.pkt
    }

    /// Read-only view of a live packet.
    ///
    /// # Panics
    /// Panics if the handle is stale.
    pub fn get(&self, r: PacketRef) -> &Packet {
        let slot = &self.slots[r.idx as usize];
        assert!(slot.live && slot.gen == r.gen, "stale packet ref {r:?}");
        &slot.pkt
    }

    /// Packets currently parked (allocated and not yet taken).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Slots ever created (peak footprint; freed slots are retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocation/reuse statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{FlowId, PacketKind};
    use crate::time::Nanos;

    fn pkt(tag: u64) -> Packet {
        Packet {
            flow: FlowId(tag),
            kind: PacketKind::Raw { tag },
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            created: Nanos::ZERO,
            ce: false,
        }
    }

    #[test]
    fn roundtrips_and_reuses_slots() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        let r2 = a.alloc(pkt(2));
        assert_eq!(a.live(), 2);
        assert!(matches!(a.take(r1).kind, PacketKind::Raw { tag: 1 }));
        let r3 = a.alloc(pkt(3));
        // r3 reuses r1's slot with a bumped generation.
        assert_eq!(a.capacity(), 2);
        assert_eq!(a.stats().reuse_hits, 1);
        assert!(matches!(a.take(r2).kind, PacketKind::Raw { tag: 2 }));
        assert!(matches!(a.take(r3).kind, PacketKind::Raw { tag: 3 }));
        assert_eq!(a.live(), 0);
        assert_eq!(a.stats().allocated, 3);
        assert_eq!(a.stats().freed, 3);
        assert_eq!(a.stats().high_water, 2);
    }

    #[test]
    #[should_panic(expected = "stale packet ref")]
    fn double_take_panics() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(1));
        let _ = a.take(r);
        let _ = a.take(r);
    }

    #[test]
    #[should_panic(expected = "stale packet ref")]
    fn recycled_slot_rejects_old_handle() {
        let mut a = PacketArena::new();
        let old = a.alloc(pkt(1));
        let _ = a.take(old);
        let _new = a.alloc(pkt(2)); // same slot, new generation
        let _ = a.take(old);
    }

    #[test]
    fn get_reads_without_freeing() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(9));
        assert!(matches!(a.get(r).kind, PacketKind::Raw { tag: 9 }));
        assert_eq!(a.live(), 1);
        let _ = a.take(r);
    }
}
