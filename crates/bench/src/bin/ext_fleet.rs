//! Extension experiment: fleet-scale collection with partial failure.
//!
//! The paper ran its framework on thousands of production ToRs, where the
//! interesting failure mode is partial: a few percent of switches flaky,
//! one uplink black-holed, an aggregator stalling. This harness runs the
//! whole pipeline at fleet width — N independent per-switch rack
//! simulations fanned out on the worker pool, shipped over per-switch
//! lossy links through regional aggregators into one merged store — and
//! reproduces the cross-rack readouts (ECMP uplink balance, inter-rack
//! correlation) at several injected failure rates. Every report carries
//! the coverage ledger saying which switches (and what fraction of their
//! samples) the figures include, plus the fleet's `uburst-obs` rollup.
//!
//! The second half is the **aggregator crash matrix**: the busiest
//! regional aggregator's WAL storage is killed at byte offsets swept
//! across its reference write stream; its switches re-shard to the
//! survivors by rendezvous hashing, the WAL is replayed on recovery, and
//! every report must still tile its coverage ledger and converge to full
//! fault-free coverage.
//!
//! Deterministic from the fleet seed: the same report prints byte for
//! byte under any `UBURST_THREADS` (CI diffs it).
//!
//! Run with `cargo run --release -p uburst-bench --bin ext_fleet`.
//! `UBURST_FLEET_SWITCHES` overrides the fleet width (default 200; CI
//! uses 32 to stay fast).

use uburst_bench::fleet::{render_report, run_fleet_spec, run_fleet_spec_crashed, FleetSpec};
use uburst_bench::report::Table;
use uburst_bench::Scale;
use uburst_core::failpoint::RegionCrashPlan;
use uburst_sim::bufpolicy::BufferPolicyCfg;
use uburst_sim::time::Nanos;

const FLEET_SEED: u64 = 0x000F_1EE7_CAFE;

/// Injected flaky-switch rates swept by the experiment.
const RATES: [f64; 3] = [0.0, 0.05, 0.20];

/// Crash offsets for the aggregator crash matrix, as fractions of the
/// victim region's reference-run WAL byte count: early (mid data rounds),
/// late, and near the end of the write stream.
const CRASH_FRACTIONS: [f64; 3] = [0.25, 0.60, 0.90];

fn fleet_width() -> u32 {
    match std::env::var("UBURST_FLEET_SWITCHES") {
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("UBURST_FLEET_SWITCHES={s:?} not a positive integer; using 200");
                200
            }
        },
        Err(_) => 200,
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = fleet_width();
    uburst_obs::enable();
    println!(
        "extension: fleet-scale collection with partial-failure tolerance ({} scale)",
        scale.label()
    );
    println!("{n} switches per fleet, rack types rotating Web/Cache/Hadoop, seed {FLEET_SEED:#x}");
    println!("flaky switches poll through a faulty ASIC bus and ship over a hostile link");

    // Region WAL byte counts from the fault-free run: the coordinate
    // system for the crash matrix below.
    let mut reference_wal_bytes: Vec<u64> = Vec::new();
    for rate in RATES {
        // Fresh telemetry per fleet so the rollup below is this fleet's.
        uburst_obs::reset();
        let spec = FleetSpec::new(n, FLEET_SEED, rate, scale);
        let run = run_fleet_spec(&spec);
        if rate == 0.0 {
            reference_wal_bytes = run.outcome.regions.iter().map(|r| r.wal_bytes).collect();
        }
        println!("\n=== fleet at {:.0}% flaky rate ===\n", rate * 100.0);
        print!("{}", render_report(&run));
        print_rollup();
    }

    // Aggregator crash matrix: kill the busiest region's WAL at byte
    // offsets swept across its reference write stream, and show that the
    // fleet re-shards around the outage, replays the WAL on recovery, and
    // still converges to full fault-free coverage — byte-identically
    // across thread counts (CI diffs this output at 1 vs. 8 threads).
    let victim = reference_wal_bytes
        .iter()
        .enumerate()
        .max_by_key(|(_, &b)| b)
        .map(|(r, _)| r)
        .expect("fleet has regions");
    let victim_bytes = reference_wal_bytes[victim];
    println!(
        "\ncrash matrix: region {victim} aggregator ({victim_bytes} reference WAL bytes), \
         fault-free fleet"
    );
    for frac in CRASH_FRACTIONS {
        uburst_obs::reset();
        let offset = (victim_bytes as f64 * frac) as u64;
        let spec = FleetSpec::new(n, FLEET_SEED, 0.0, scale);
        let run = run_fleet_spec_crashed(&spec, &RegionCrashPlan::kill(victim, offset));
        println!(
            "\n=== aggregator crash at {:.0}% of region {victim}'s WAL (byte {offset}) ===\n",
            frac * 100.0
        );
        print!("{}", render_report(&run));
        print_rollup();
    }

    // Buffer-policy sweep at fleet width (ROADMAP item-1 leftover): the
    // same fault-free fleet under each alternative ToR carving policy.
    // Collection must be indifferent to carving — coverage stays full —
    // while congestion discards shift exactly the way the single-rack
    // `ext_buffer_policy` sweep says they should.
    println!("\nbuffer-policy sweep: fault-free fleet, every ToR re-carved\n");
    let policies = [
        BufferPolicyCfg::dt(0.5),
        BufferPolicyCfg::StaticPartition,
        BufferPolicyCfg::BShare {
            target_delay: Nanos::from_micros(50),
            drain_bps: 10_000_000_000,
        },
        BufferPolicyCfg::FlexibleBuffering {
            reserved_bytes: 24 << 10,
        },
    ];
    let mut t = Table::new(&["policy", "tor_drops", "stored/produced", "sample_frac"]);
    let mut drops_by_policy = Vec::new();
    for policy in policies {
        let spec = FleetSpec::new(n, FLEET_SEED, 0.0, scale).with_policy(policy);
        let run = run_fleet_spec(&spec);
        let drops: u64 = run.switches.iter().map(|s| s.drops).sum();
        let produced: u64 = run
            .outcome
            .coverage
            .switches
            .iter()
            .map(|s| s.produced)
            .sum();
        let stored: u64 = run.outcome.coverage.switches.iter().map(|s| s.stored).sum();
        t.row(&[
            policy.label(),
            format!("{drops}"),
            format!("{stored}/{produced}"),
            format!("{:.4}", run.outcome.coverage.sample_fraction()),
        ]);
        drops_by_policy.push((policy, drops, run.outcome.coverage.sample_fraction()));
    }
    t.print();
    println!("\npolicy-sweep checks:");
    println!(
        "  [{}] collection tier is carving-agnostic (full coverage under every policy)",
        if drops_by_policy.iter().all(|&(_, _, f)| f == 1.0) {
            "ok"
        } else {
            "MISS"
        }
    );
    let dt_drops = drops_by_policy[0].1;
    let sp_drops = drops_by_policy[1].1;
    println!(
        "  [{}] static partitioning drops most at fleet width too ({sp_drops} vs DT {dt_drops})",
        if sp_drops > dt_drops { "ok" } else { "MISS" }
    );
}

fn print_rollup() {
    let rollup = uburst_obs::snapshot().prefix_rollup("uburst_fleet_");
    if rollup.is_empty() {
        println!("\nobs rollup (uburst_fleet_*): <empty>");
    } else {
        println!("\nobs rollup (uburst_fleet_*):\n{rollup}");
    }
}
