//! Host NIC model.
//!
//! A host's NIC owns one egress port and a finite transmit queue. The
//! transport hands it packets in window-sized batches, which the NIC
//! serializes back-to-back — exactly the segmentation-offload behaviour the
//! paper names as a defeater of TCP pacing (§7, "Implications for pacing").
//! An optional token-bucket pacer models the hardware/software pacing
//! proposals the paper points to.

use crate::node::{Ctx, PortId};
use crate::packet::Packet;
use crate::time::Nanos;
use std::collections::VecDeque;

/// NIC parameters.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Which local port the NIC drives.
    pub port: PortId,
    /// Transmit queue limit in bytes (qdisc + ring); drops beyond it.
    pub queue_limit_bytes: u64,
    /// Optional pacing rate in bits/sec. `None` sends at line rate
    /// back-to-back (the production default the paper observed).
    pub pace_bps: Option<u64>,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            port: PortId(0),
            queue_limit_bytes: 1 << 20,
            pace_bps: None,
        }
    }
}

/// Timer token the NIC uses for pacing gaps. Hosts embedding a NIC must
/// route this token to [`HostNic::on_timer`].
pub const NIC_PACE_TOKEN: u64 = u64::MAX - 1;

/// The NIC state machine. Embed in a host node; forward `on_tx_complete`
/// (and `on_timer` for [`NIC_PACE_TOKEN`]) to it, and `settle_lazy` to
/// [`HostNic::settle_to`].
#[derive(Debug)]
pub struct HostNic {
    cfg: NicConfig,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    busy: bool,
    /// Pacing: earliest time the next transmission may start.
    next_tx_at: Nanos,
    /// Hybrid mode: `(serialization start, size)` of handed-off frames
    /// whose start instant is still in the future (see [`crate::fastfwd`]).
    /// Until its start a frame counts toward `queued_bytes`, exactly like
    /// the packet-mode transmit queue it replaces.
    chain: VecDeque<(u64, u32)>,
    /// Hybrid mode: when the last handed-off frame finishes serializing.
    free_at: u64,
    /// Packets dropped at the local queue limit.
    pub dropped: u64,
    /// Packets handed to the wire.
    pub sent: u64,
    /// Bytes handed to the wire.
    pub sent_bytes: u64,
}

impl HostNic {
    /// An idle NIC with the given configuration.
    pub fn new(cfg: NicConfig) -> Self {
        HostNic {
            cfg,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            next_tx_at: Nanos::ZERO,
            chain: VecDeque::new(),
            free_at: 0,
            dropped: 0,
            sent: 0,
            sent_bytes: 0,
        }
    }

    /// The NIC's configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Bytes currently waiting in the transmit queue.
    pub fn queue_depth_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Applies deferred hybrid-mode accounting up to `now`: every frame
    /// whose serialization has started leaves the queue accounting and
    /// counts as sent, exactly when the packet-mode pump would have done
    /// it. Host nodes forward [`crate::node::Node::settle_lazy`] here.
    pub fn settle_to(&mut self, now: Nanos) {
        while let Some(&(start, size)) = self.chain.front() {
            if start > now.0 {
                break;
            }
            self.chain.pop_front();
            self.queued_bytes -= u64::from(size);
            self.sent += 1;
            self.sent_bytes += u64::from(size);
        }
    }

    /// Enqueues a packet for transmission. Returns `false` (and counts a
    /// local drop) when the queue limit would be exceeded.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) -> bool {
        if ctx.hybrid() && self.cfg.pace_bps.is_none() {
            return self.send_fastfwd(ctx, pkt);
        }
        if self.queued_bytes + u64::from(pkt.size) > self.cfg.queue_limit_bytes {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(pkt);
        self.queued_bytes += u64::from(pkt.size);
        self.pump(ctx);
        true
    }

    /// Hybrid-mode hand-off (see [`crate::fastfwd`]): the unpaced transmit
    /// ring is a work-conserving FIFO, so the serialization start of every
    /// accepted frame is `max(now, free_at)` — fully determined here.
    /// Schedules the peer's arrival directly and defers the queue/sent
    /// accounting to [`Self::settle_to`]; no `TxComplete` event exists.
    /// Paced NICs never take this path: their start times depend on pacer
    /// wakeups, so they keep the event-per-frame pump.
    fn send_fastfwd(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) -> bool {
        let now = ctx.now();
        self.settle_to(now);
        if self.queued_bytes + u64::from(pkt.size) > self.cfg.queue_limit_bytes {
            self.dropped += 1;
            return false;
        }
        let link = *ctx.link(self.cfg.port).unwrap_or_else(|| {
            panic!(
                "node {:?} port {:?} is not wired",
                ctx.node(),
                self.cfg.port
            )
        });
        let ser = link.spec.ser_time(pkt.size);
        let start = now.0.max(self.free_at);
        self.free_at = start + ser.0;
        if start > now.0 {
            self.chain.push_back((start, pkt.size));
            self.queued_bytes += u64::from(pkt.size);
        } else {
            self.sent += 1;
            self.sent_bytes += u64::from(pkt.size);
        }
        let (peer_node, peer_port) = link.peer;
        ctx.schedule_arrival(
            Nanos(self.free_at) + link.spec.propagation,
            peer_node,
            peer_port,
            pkt,
        );
        true
    }

    /// Call from the host's `Node::on_tx_complete`.
    pub fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.busy, "tx-complete on idle NIC");
        self.busy = false;
        self.pump(ctx);
    }

    /// Call from the host's `Node::on_timer` for [`NIC_PACE_TOKEN`].
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }

    /// Starts the next transmission if the port is idle, a packet is queued,
    /// and the pacer allows it.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.busy {
            return;
        }
        let Some(&front) = self.queue.front() else {
            return;
        };
        if let Some(_bps) = self.cfg.pace_bps {
            if ctx.now() < self.next_tx_at {
                // Wake up exactly when the pacer opens.
                ctx.timer_at(self.next_tx_at, NIC_PACE_TOKEN);
                return;
            }
        }
        self.queue.pop_front();
        self.queued_bytes -= u64::from(front.size);
        self.busy = true;
        self.sent += 1;
        self.sent_bytes += u64::from(front.size);
        ctx.start_tx(self.cfg.port, front);
        if let Some(bps) = self.cfg.pace_bps {
            // Token-bucket with zero depth: space packets at the pace rate.
            let gap = Nanos((u64::from(front.size) * 8).saturating_mul(1_000_000_000) / bps);
            self.next_tx_at = ctx.now() + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::node::{Node, NodeId};
    use crate::packet::{FlowId, PacketKind};
    use crate::sim::Simulator;
    use std::any::Any;

    /// Host that sends `n` packets through its NIC on the first timer.
    struct TestHost {
        nic: HostNic,
        n: u32,
        size: u32,
        dst: NodeId,
        rx: Vec<Nanos>,
    }

    impl Node for TestHost {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {
            self.rx.push(ctx.now());
        }
        fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
            self.nic.on_tx_complete(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == NIC_PACE_TOKEN {
                self.nic.on_timer(ctx);
                return;
            }
            for i in 0..self.n {
                let pkt = Packet {
                    flow: FlowId(u64::from(i)),
                    kind: PacketKind::Raw { tag: 0 },
                    src: ctx.node(),
                    dst: self.dst,
                    size: self.size,
                    created: ctx.now(),
                    ce: false,
                };
                self.nic.send(ctx, pkt);
            }
        }
        fn settle_lazy(&mut self, now: Nanos) {
            self.nic.settle_to(now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_hosts(cfg: NicConfig, n: u32, size: u32) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new();
        let b_id = NodeId(1);
        let a = sim.add_node(Box::new(TestHost {
            nic: HostNic::new(cfg),
            n,
            size,
            dst: b_id,
            rx: Vec::new(),
        }));
        let b = sim.add_node(Box::new(TestHost {
            nic: HostNic::new(NicConfig::default()),
            n: 0,
            size,
            dst: a,
            rx: Vec::new(),
        }));
        sim.connect(
            (a, PortId(0)),
            (b, PortId(0)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
        sim.schedule_timer(Nanos(0), a, 0);
        (sim, a, b)
    }

    #[test]
    fn unpaced_burst_is_back_to_back() {
        let (mut sim, _a, b) = two_hosts(NicConfig::default(), 5, 1500);
        sim.run_until(Nanos::from_millis(1));
        let rx = &sim.node::<TestHost>(b).rx;
        assert_eq!(rx.len(), 5);
        // Consecutive arrivals separated by exactly one serialization time.
        let ser = LinkSpec::gbps(10.0, Nanos(500)).ser_time(1500);
        for w in rx.windows(2) {
            assert_eq!(w[1] - w[0], ser);
        }
    }

    #[test]
    fn pacing_spreads_packets() {
        let cfg = NicConfig {
            pace_bps: Some(1_000_000_000), // 1 Gbps pacing on a 10 Gbps link
            ..NicConfig::default()
        };
        let (mut sim, _a, b) = two_hosts(cfg, 5, 1500);
        sim.run_until(Nanos::from_millis(1));
        let rx = &sim.node::<TestHost>(b).rx;
        assert_eq!(rx.len(), 5);
        let expected_gap = Nanos(1500 * 8); // 12000ns at 1Gbps
        for w in rx.windows(2) {
            assert!(
                w[1] - w[0] >= expected_gap,
                "gap {} < pace gap {}",
                w[1] - w[0],
                expected_gap
            );
        }
    }

    #[test]
    fn hybrid_matches_packet_mode() {
        // Same burst, both execution modes: identical arrival instants at
        // the receiver and identical sent/dropped accounting, including
        // when the queue limit binds.
        for limit in [3_000u64, 1 << 20] {
            let run = |hybrid: bool| {
                let cfg = NicConfig {
                    queue_limit_bytes: limit,
                    ..NicConfig::default()
                };
                let (mut sim, a, b) = two_hosts(cfg, 10, 1500);
                sim.set_hybrid(hybrid);
                sim.run_until(Nanos::from_millis(1));
                let host = sim.node::<TestHost>(a);
                (
                    host.nic.sent,
                    host.nic.sent_bytes,
                    host.nic.dropped,
                    host.nic.queue_depth_bytes(),
                    sim.node::<TestHost>(b).rx.clone(),
                )
            };
            assert_eq!(run(false), run(true), "limit {limit}");
        }
    }

    #[test]
    fn paced_nic_refuses_fastfwd() {
        // Pacing is the documented fallback case: even in hybrid mode the
        // NIC keeps the event-per-frame path, so spacing is preserved.
        let cfg = NicConfig {
            pace_bps: Some(1_000_000_000),
            ..NicConfig::default()
        };
        let (mut sim, _a, b) = two_hosts(cfg, 5, 1500);
        sim.set_hybrid(true);
        sim.run_until(Nanos::from_millis(1));
        let rx = &sim.node::<TestHost>(b).rx;
        assert_eq!(rx.len(), 5);
        let expected_gap = Nanos(1500 * 8);
        for w in rx.windows(2) {
            assert!(w[1] - w[0] >= expected_gap);
        }
    }

    #[test]
    fn queue_limit_drops() {
        let cfg = NicConfig {
            queue_limit_bytes: 3_000, // room for ~2 queued frames
            ..NicConfig::default()
        };
        let (mut sim, a, b) = two_hosts(cfg, 10, 1500);
        sim.run_until(Nanos::from_millis(1));
        let host = sim.node::<TestHost>(a);
        assert!(host.nic.dropped > 0);
        assert_eq!(
            host.nic.sent + host.nic.dropped,
            10,
            "every packet either sent or dropped"
        );
        assert_eq!(sim.node::<TestHost>(b).rx.len() as u64, host.nic.sent);
    }
}
