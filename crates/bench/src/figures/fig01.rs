//! Figure 1 — scatter of drop rate vs. utilization at coarse granularity.
//!
//! Paper's finding (§3): across ToR-server links sampled at SNMP
//! granularity (4-minute windows), utilization barely predicts drops —
//! correlation coefficient 0.098 — because congestion lives at timescales
//! the windows average away.
//!
//! Scaling: windows here are 20 ms (quick) / 100 ms (full) over sub-second
//! campaigns; rack instances span load levels and hours the way the
//! paper's sample spanned a day across a whole data center.

use std::fmt::Write;

use uburst_analysis::{pearson, to_windows};
use uburst_asic::CounterId;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

use crate::campaign::run_campaign;
use crate::pool::run_jobs;
use crate::report::Table;
use crate::scale::Scale;

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let interval = Nanos::from_micros(500);
    let window = match scale {
        Scale::Quick => Nanos::from_millis(20),
        Scale::Full => Nanos::from_millis(100),
    };
    let loads = [0.5, 0.8, 1.1, 1.4];
    let mut out = String::new();
    writeln!(
        out,
        "Figure 1: drop rate vs utilization of ToR-server links at {window} windows ({} scale)",
        scale.label()
    )
    .unwrap();

    // One campaign per (rack type, load); each worker reduces its run to
    // (util, drop rate, drops) window triples. Job order matches the old
    // nested loop, so the folded sample vectors are identical.
    let mut jobs = Vec::new();
    for rack_type in RackType::ALL {
        for (li, &load) in loads.iter().enumerate() {
            jobs.push((rack_type, li, load));
        }
    }
    let samples: Vec<Vec<(f64, f64, u64)>> = run_jobs(jobs, |(rack_type, li, load)| {
        let mut cfg = ScenarioConfig::new(rack_type, 20_000 + li as u64);
        cfg.load = load;
        let n = cfg.n_servers;
        let bps = cfg.clos.server_link.bandwidth_bps;
        let mut counters = Vec::new();
        for i in 0..n {
            counters.push(CounterId::TxBytes(PortId(i as u16)));
            counters.push(CounterId::Drops(PortId(i as u16)));
        }
        let run = run_campaign(cfg, counters, interval, scale.campaign_span());
        let mut triples = Vec::new();
        for i in 0..n {
            let p = PortId(i as u16);
            let bytes = run.series_for(CounterId::TxBytes(p));
            let drops = run.series_for(CounterId::Drops(p));
            let (origin, end) = (
                Nanos(bytes.ts[0]),
                Nanos(*bytes.ts.last().expect("non-empty")),
            );
            if end.saturating_sub(origin) < window {
                continue;
            }
            let bw = to_windows(bytes, origin, window, end);
            let dw = to_windows(drops, origin, window, end);
            for (b, d) in bw.iter().zip(&dw) {
                triples.push((b.utilization(bps), d.rate(), d.delta));
            }
        }
        triples
    });

    let mut utils: Vec<f64> = Vec::new();
    let mut drop_rates: Vec<f64> = Vec::new();
    let mut windows_with_drops = 0usize;
    let mut low_util_drop_windows = 0usize;
    for (util, rate, delta) in samples.into_iter().flatten() {
        utils.push(util);
        drop_rates.push(rate);
        if delta > 0 {
            windows_with_drops += 1;
            if util < 0.3 {
                low_util_drop_windows += 1;
            }
        }
    }

    let corr = pearson(&utils, &drop_rates);
    let n = utils.len();
    writeln!(
        out,
        "{} (port x window) samples across 3 rack types x {} loads",
        n,
        loads.len()
    )
    .unwrap();

    // A coarse scatter rendition: drop-rate quantiles by utilization band.
    let mut table = Table::new(&["util_band", "windows", "w/_drops", "mean_drop_rate"]);
    for band in [(0.0, 0.1), (0.1, 0.3), (0.3, 0.5), (0.5, 0.8), (0.8, 2.0)] {
        let idx: Vec<usize> = (0..n)
            .filter(|&i| utils[i] >= band.0 && utils[i] < band.1)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let with_drops = idx.iter().filter(|&&i| drop_rates[i] > 0.0).count();
        let mean_rate = idx.iter().map(|&i| drop_rates[i]).sum::<f64>() / idx.len() as f64;
        table.row(&[
            format!("{:.1}-{:.1}", band.0, band.1),
            format!("{}", idx.len()),
            format!("{with_drops}"),
            format!("{mean_rate:.1}/s"),
        ]);
    }
    writeln!(out, "{}", table.render()).unwrap();
    writeln!(
        out,
        "correlation(utilization, drop rate) = {corr:.3}   (paper: 0.098)"
    )
    .unwrap();
    writeln!(out, "\npaper-shape checks:").unwrap();
    writeln!(
        out,
        "  [{}] utilization is a weak predictor of drops (|corr| = {:.3} < 0.3)",
        if corr.abs() < 0.3 { "ok" } else { "MISS" },
        corr.abs()
    )
    .unwrap();
    writeln!(
        out,
        "  [{}] drops occur even in low-utilization windows ({low_util_drop_windows} of {windows_with_drops} drop windows below 30% util)",
        if windows_with_drops == 0 || low_util_drop_windows > 0 {
            "ok"
        } else {
            "MISS"
        }
    )
    .unwrap();
    out
}
