//! The counter banks a switching ASIC maintains.
//!
//! Models the three counter families the paper polls (§4.1):
//!
//! * **Byte/packet counters** — cumulative per-port RX/TX counts. Reads are
//!   non-destructive; rates are computed from deltas, so a missed sampling
//!   interval loses resolution but never bytes ("we still capture the total
//!   number of bytes and correct timestamp", Table 1 caption).
//! * **Packet-size histograms** — per-port RMON-style bins ("The ASIC bins
//!   packets into several buckets", §5.3).
//! * **Peak buffer occupancy** — a read-and-clear register tracking the
//!   maximum shared-buffer fill since the last read, "so that we do not miss
//!   any congestion events" (§4.1).
//!
//! All cells use interior mutability (`Cell`) because the switch data path
//! writes them while the polling framework holds a shared reference.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use uburst_sim::counters::{CounterSink, FlushHook};
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;

/// RMON-style packet-size histogram bin boundaries (inclusive upper edges,
/// in frame bytes). Mirrors the etherStatsPkts64/128/256/512/1024/1518
/// groups merchant ASICs implement, plus an oversize bin.
pub const SIZE_BIN_EDGES: [u32; 6] = [64, 127, 255, 511, 1023, 1518];

/// Number of histogram bins (the edges above plus the oversize bin).
pub const N_SIZE_BINS: usize = SIZE_BIN_EDGES.len() + 1;

/// Human-readable labels for the size bins, index-aligned with counters.
pub const SIZE_BIN_LABELS: [&str; N_SIZE_BINS] = [
    "<=64",
    "65-127",
    "128-255",
    "256-511",
    "512-1023",
    "1024-1518",
    ">1518",
];

/// Maps a frame size to its histogram bin index.
pub fn size_bin(bytes: u32) -> usize {
    SIZE_BIN_EDGES
        .iter()
        .position(|&edge| bytes <= edge)
        .unwrap_or(N_SIZE_BINS - 1)
}

/// Names one readable counter instance on the ASIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterId {
    /// Cumulative bytes received on a port.
    RxBytes(PortId),
    /// Cumulative frames received on a port.
    RxPackets(PortId),
    /// Cumulative bytes transmitted out of a port.
    TxBytes(PortId),
    /// Cumulative frames transmitted out of a port.
    TxPackets(PortId),
    /// Cumulative congestion discards charged to an egress port.
    Drops(PortId),
    /// One bin of the received-frame size histogram.
    RxSizeHist(PortId, u8),
    /// One bin of the transmitted-frame size histogram.
    TxSizeHist(PortId, u8),
    /// Instantaneous shared-buffer occupancy in bytes.
    BufferLevel,
    /// Peak shared-buffer occupancy since the last read (read-and-clear).
    BufferPeak,
}

impl CounterId {
    /// Is reading this counter destructive (read-and-clear)?
    pub fn is_read_and_clear(self) -> bool {
        matches!(self, CounterId::BufferPeak)
    }

    /// Is this a cumulative (monotonically increasing) counter, as opposed
    /// to a gauge? Only cumulative counters wrap at the register width and
    /// need wrap-aware delta decoding on the collection side.
    pub fn is_cumulative(self) -> bool {
        !matches!(self, CounterId::BufferLevel | CounterId::BufferPeak)
    }
}

/// Cells per port in the flat bank: five scalar counters plus both
/// size histograms.
const PORT_STRIDE: usize = 5 + 2 * N_SIZE_BINS;

// Per-port cell offsets within a port's stride.
const OFF_RX_BYTES: usize = 0;
const OFF_RX_PACKETS: usize = 1;
const OFF_TX_BYTES: usize = 2;
const OFF_TX_PACKETS: usize = 3;
const OFF_DROPS: usize = 4;
const OFF_RX_HIST: usize = 5;
const OFF_TX_HIST: usize = 5 + N_SIZE_BINS;

/// The full counter state of one ASIC.
///
/// Implements [`CounterSink`] so a [`uburst_sim::switch::Switch`] writes it
/// directly; the telemetry framework reads it through [`AsicCounters::read`]
/// — or, on the polling hot path, through a pre-resolved
/// [`ReadPlan`](crate::readplan::ReadPlan) that maps each counter to its
/// cell once instead of per poll.
///
/// Storage is one flat `Vec<Cell<u64>>` — `PORT_STRIDE` cells per port,
/// then the buffer level and peak registers — so a resolved counter is a
/// single index away and a batch of counters reads contiguously-allocated
/// cells, like the register file it models.
pub struct AsicCounters {
    cells: Vec<Cell<u64>>,
    n_ports: usize,
    /// Settlement callbacks registered by hybrid-mode writers (see
    /// [`CounterSink::register_flush`]); run by [`AsicCounters::flush_to`]
    /// before the poller samples the bank.
    flush_hooks: RefCell<Vec<FlushHook>>,
}

impl fmt::Debug for AsicCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsicCounters")
            .field("n_ports", &self.n_ports)
            .field("n_cells", &self.cells.len())
            .field("flush_hooks", &self.flush_hooks.borrow().len())
            .finish()
    }
}

impl AsicCounters {
    /// A zeroed counter bank for a switch with `n_ports` ports, wrapped for
    /// sharing between the switch and the poller.
    pub fn new_shared(n_ports: usize) -> Rc<Self> {
        Rc::new(Self::new(n_ports))
    }

    /// A zeroed counter bank for a switch with `n_ports` ports.
    pub fn new(n_ports: usize) -> Self {
        AsicCounters {
            cells: (0..n_ports * PORT_STRIDE + 2)
                .map(|_| Cell::new(0))
                .collect(),
            n_ports,
            flush_hooks: RefCell::new(Vec::new()),
        }
    }

    /// Runs every registered flush hook so deferred (hybrid fast-forward)
    /// writers settle their accounting into the bank up to `now`. The
    /// poller calls this before sampling; in per-packet mode no hooks are
    /// registered and this is a no-op.
    pub fn flush_to(&self, now: Nanos) {
        for hook in self.flush_hooks.borrow().iter() {
            hook(self, now);
        }
    }

    /// Number of per-port banks.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Total cells in the flat bank (used by read plans to verify they are
    /// applied to a bank of the same geometry they were resolved against).
    pub(crate) fn n_cells(&self) -> usize {
        self.cells.len()
    }

    fn port_base(&self, port: PortId) -> usize {
        let p = port.0 as usize;
        assert!(p < self.n_ports, "port {p} out of range");
        p * PORT_STRIDE
    }

    pub(crate) fn level_slot(&self) -> usize {
        self.n_ports * PORT_STRIDE
    }

    pub(crate) fn peak_slot(&self) -> usize {
        self.level_slot() + 1
    }

    /// The flat-cell index of a counter. Validates the port (and histogram
    /// bin) once — this is what lets a [`ReadPlan`](crate::readplan::ReadPlan)
    /// skip per-read dispatch.
    pub(crate) fn slot_of(&self, id: CounterId) -> usize {
        match id {
            CounterId::RxBytes(p) => self.port_base(p) + OFF_RX_BYTES,
            CounterId::RxPackets(p) => self.port_base(p) + OFF_RX_PACKETS,
            CounterId::TxBytes(p) => self.port_base(p) + OFF_TX_BYTES,
            CounterId::TxPackets(p) => self.port_base(p) + OFF_TX_PACKETS,
            CounterId::Drops(p) => self.port_base(p) + OFF_DROPS,
            CounterId::RxSizeHist(p, b) => {
                assert!((b as usize) < N_SIZE_BINS, "bin {b} out of range");
                self.port_base(p) + OFF_RX_HIST + b as usize
            }
            CounterId::TxSizeHist(p, b) => {
                assert!((b as usize) < N_SIZE_BINS, "bin {b} out of range");
                self.port_base(p) + OFF_TX_HIST + b as usize
            }
            CounterId::BufferLevel => self.level_slot(),
            CounterId::BufferPeak => self.peak_slot(),
        }
    }

    /// Reads the cell at a resolved slot, honoring read-and-clear
    /// semantics for the peak register.
    pub(crate) fn read_slot(&self, slot: usize) -> u64 {
        let v = self.cells[slot].get();
        if slot == self.peak_slot() {
            self.cells[slot].set(self.cells[self.level_slot()].get());
        }
        v
    }

    /// Reads one counter. `BufferPeak` is destructive: it returns the peak
    /// since the previous read and re-seeds the register with the current
    /// level, exactly like the hardware register the paper used.
    pub fn read(&self, id: CounterId) -> u64 {
        self.read_slot(self.slot_of(id))
    }

    /// Reads a group of counters in order (one "poll" worth).
    pub fn read_group(&self, ids: &[CounterId]) -> Vec<u64> {
        ids.iter().map(|&id| self.read(id)).collect()
    }

    /// Peeks at the peak register without clearing (diagnostics only; the
    /// hardware analogue does not exist).
    pub fn peek_buffer_peak(&self) -> u64 {
        self.cells[self.peak_slot()].get()
    }

    /// One port's cells as a fixed-size window: a single bounds check per
    /// packet, after which the constant offsets index check-free.
    #[inline]
    fn port_cells(&self, port: PortId) -> &[Cell<u64>; PORT_STRIDE] {
        let base = self.port_base(port);
        (&self.cells[base..base + PORT_STRIDE])
            .try_into()
            .expect("window is PORT_STRIDE long")
    }
}

#[inline]
fn add(c: &Cell<u64>, by: u64) {
    c.set(c.get() + by);
}

impl CounterSink for AsicCounters {
    fn count_rx(&self, port: PortId, bytes: u32) {
        let b = self.port_cells(port);
        add(&b[OFF_RX_BYTES], u64::from(bytes));
        add(&b[OFF_RX_PACKETS], 1);
        add(&b[OFF_RX_HIST + size_bin(bytes)], 1);
    }

    fn count_tx(&self, port: PortId, bytes: u32) {
        let b = self.port_cells(port);
        add(&b[OFF_TX_BYTES], u64::from(bytes));
        add(&b[OFF_TX_PACKETS], 1);
        add(&b[OFF_TX_HIST + size_bin(bytes)], 1);
    }

    fn count_drop(&self, port: PortId, _bytes: u32) {
        add(&self.port_cells(port)[OFF_DROPS], 1);
    }

    fn buffer_level(&self, used_bytes: u64) {
        self.cells[self.level_slot()].set(used_bytes);
        let peak = &self.cells[self.peak_slot()];
        if used_bytes > peak.get() {
            peak.set(used_bytes);
        }
    }

    fn register_flush(&self, hook: FlushHook) {
        self.flush_hooks.borrow_mut().push(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bins_cover_edges() {
        assert_eq!(size_bin(0), 0);
        assert_eq!(size_bin(64), 0);
        assert_eq!(size_bin(65), 1);
        assert_eq!(size_bin(127), 1);
        assert_eq!(size_bin(128), 2);
        assert_eq!(size_bin(512), 4);
        assert_eq!(size_bin(1518), 5);
        assert_eq!(size_bin(1519), 6);
        assert_eq!(size_bin(9000), 6);
    }

    #[test]
    fn rx_accounting() {
        let c = AsicCounters::new(2);
        c.count_rx(PortId(0), 100);
        c.count_rx(PortId(0), 1500);
        c.count_rx(PortId(1), 64);
        assert_eq!(c.read(CounterId::RxBytes(PortId(0))), 1600);
        assert_eq!(c.read(CounterId::RxPackets(PortId(0))), 2);
        assert_eq!(c.read(CounterId::RxBytes(PortId(1))), 64);
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(0), 1)), 1); // 100B
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(0), 5)), 1); // 1500B
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(1), 0)), 1); // 64B
    }

    #[test]
    fn tx_and_drop_accounting() {
        let c = AsicCounters::new(1);
        c.count_tx(PortId(0), 1000);
        c.count_drop(PortId(0), 1500);
        c.count_drop(PortId(0), 1500);
        assert_eq!(c.read(CounterId::TxBytes(PortId(0))), 1000);
        assert_eq!(c.read(CounterId::TxPackets(PortId(0))), 1);
        assert_eq!(c.read(CounterId::Drops(PortId(0))), 2);
    }

    #[test]
    fn reads_are_nondestructive_except_peak() {
        let c = AsicCounters::new(1);
        c.count_rx(PortId(0), 500);
        for _ in 0..3 {
            assert_eq!(c.read(CounterId::RxBytes(PortId(0))), 500);
        }
    }

    #[test]
    fn peak_register_semantics() {
        let c = AsicCounters::new(1);
        c.buffer_level(1000);
        c.buffer_level(5000);
        c.buffer_level(2000);
        assert_eq!(c.read(CounterId::BufferLevel), 2000);
        // First read returns the peak...
        assert_eq!(c.read(CounterId::BufferPeak), 5000);
        // ...and re-seeds with the current level.
        assert_eq!(c.read(CounterId::BufferPeak), 2000);
        // A new excursion is captured even if we never sample during it.
        c.buffer_level(9000);
        c.buffer_level(0);
        assert_eq!(c.read(CounterId::BufferPeak), 9000);
        assert_eq!(c.read(CounterId::BufferPeak), 0);
    }

    #[test]
    fn read_group_orders_values() {
        let c = AsicCounters::new(2);
        c.count_rx(PortId(0), 10);
        c.count_tx(PortId(1), 20);
        let vals = c.read_group(&[
            CounterId::RxBytes(PortId(0)),
            CounterId::TxBytes(PortId(1)),
            CounterId::Drops(PortId(0)),
        ]);
        assert_eq!(vals, vec![10, 20, 0]);
    }

    #[test]
    fn histogram_totals_match_packet_counts() {
        let c = AsicCounters::new(1);
        let sizes = [64, 65, 100, 300, 700, 1400, 1514, 2000];
        for s in sizes {
            c.count_rx(PortId(0), s);
        }
        let hist_total: u64 = (0..N_SIZE_BINS as u8)
            .map(|b| c.read(CounterId::RxSizeHist(PortId(0), b)))
            .sum();
        assert_eq!(hist_total, sizes.len() as u64);
        assert_eq!(c.read(CounterId::RxPackets(PortId(0))), sizes.len() as u64);
    }

    #[test]
    #[should_panic]
    fn out_of_range_port_panics() {
        let c = AsicCounters::new(1);
        c.read(CounterId::RxBytes(PortId(5)));
    }
}
