//! Benchmarks for the analysis library on campaign-sized inputs
//! (a 2-minute 25 µs campaign is ~5 M samples; these use 1 M).
//!
//! Self-contained `Instant`-based harness (no external bench framework);
//! run with `cargo bench --bench analysis`.

use uburst_analysis::{
    correlation_matrix, extract_bursts, fit_transition_matrix, hot_chain, ks_test_exponential,
    ks_test_exponential_sorted, mad_per_period, sort_f64, Ecdf, HOT_THRESHOLD,
};
use uburst_bench::benchjson::BenchRecorder;
use uburst_bench::runner::bench;
use uburst_core::series::UtilSample;
use uburst_sim::rng::Rng;
use uburst_sim::time::Nanos;

fn synth_utils(n: usize, seed: u64) -> Vec<UtilSample> {
    // A bursty synthetic series: sticky two-state chain plus noise.
    let mut rng = Rng::new(seed);
    let mut hot = false;
    let dt = Nanos::from_micros(25);
    (0..n)
        .map(|i| {
            if hot {
                hot = !rng.chance(0.3);
            } else {
                hot = rng.chance(0.02);
            }
            let util = if hot {
                rng.range_f64(0.6, 1.0)
            } else {
                rng.range_f64(0.0, 0.3)
            };
            UtilSample {
                t: dt * (i as u64 + 1),
                dt,
                util,
            }
        })
        .collect()
}

fn main() {
    let mut rec = BenchRecorder::new("analysis");
    let utils = synth_utils(1_000_000, 1);
    bench(&mut rec, "extract_bursts_1M", 20, || {
        extract_bursts(&utils, HOT_THRESHOLD).bursts.len() as u64
    });
    let chain = hot_chain(&utils, HOT_THRESHOLD);
    bench(&mut rec, "markov_fit_1M", 20, || {
        fit_transition_matrix(&chain).likelihood_ratio() as u64
    });

    let mut rng = Rng::new(2);
    let xs: Vec<f64> = (0..1_000_000).map(|_| rng.exp(100.0)).collect();
    bench(&mut rec, "sort_f64_1M", 20, || {
        let mut scratch = xs.clone();
        sort_f64(&mut scratch);
        scratch[scratch.len() / 2] as u64
    });
    bench(&mut rec, "ecdf_build_1M", 20, || {
        Ecdf::new(xs.clone()).quantile(0.9) as u64
    });
    bench(&mut rec, "quantile_select_1M", 20, || {
        let mut scratch = xs.clone();
        uburst_analysis::quantile(&mut scratch, 0.9) as u64
    });
    let smaller: Vec<f64> = xs.iter().take(100_000).copied().collect();
    bench(&mut rec, "ks_test_100k", 20, || {
        (ks_test_exponential(&smaller).p_value * 1e9) as u64
    });
    let mut presorted = smaller.clone();
    sort_f64(&mut presorted);
    bench(&mut rec, "ks_test_sorted_100k", 20, || {
        (ks_test_exponential_sorted(&presorted).p_value * 1e9) as u64
    });

    let mut rng = Rng::new(3);
    // 24 servers x 100k samples (a 250us campaign over 25s).
    let series: Vec<Vec<f64>> = (0..24)
        .map(|_| (0..100_000).map(|_| rng.f64()).collect())
        .collect();
    bench(&mut rec, "pearson_matrix_24x100k", 10, || {
        (correlation_matrix(&series)[0][1] * 1e9) as u64
    });
    bench(&mut rec, "pearson_pooled_24x100k", 10, || {
        (uburst_bench::correlation_matrix_pooled(&series)[0][1] * 1e9) as u64
    });
    let uplinks: Vec<Vec<f64>> = series[..4].to_vec();
    bench(&mut rec, "mad_per_period_4x100k", 10, || {
        mad_per_period(&uplinks).len() as u64
    });
    rec.flush();
}
