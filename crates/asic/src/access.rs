//! The counter access-latency model.
//!
//! The paper's maximum polling rate is bounded by how long the switch CPU
//! takes to read a counter out of the ASIC: "The maximum polling rate
//! depends on the target counter as well as the target switch ASIC.
//! Differences arise due to hardware limitations: some counters are
//! implemented in registers versus memory, others may involve multiple
//! registers or memory blocks" (§4.1). This module models exactly that:
//!
//! * every poll pays a fixed **bus transaction overhead** (PCIe/MDIO setup),
//! * each counter adds a cost set by its **storage class**,
//! * additional counters in the same poll are cheaper than the first
//!   (amortized transaction setup), reproducing the paper's "sublinear
//!   increase in sampling rate" for multi-counter campaigns,
//! * the shared-buffer peak register is a **wide** read spanning multiple
//!   memory blocks, which is why the paper could poll it only every 50 µs.
//!
//! The default constants are calibrated so a single byte-counter campaign
//! reproduces Table 1 (1 µs → ~100 % missed intervals, 10 µs → ~10 %,
//! 25 µs → ~1 %) when combined with the CPU jitter model in `uburst-core`.

use crate::counters::CounterId;
use uburst_sim::time::Nanos;

/// Where a counter lives on the ASIC, which sets its read cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageClass {
    /// A directly addressable hardware register (byte/packet counters).
    Register,
    /// A counter held in on-chip counter memory (histograms, drop counters):
    /// the read goes through an indirection that costs more.
    Memory,
    /// A value assembled from multiple memory blocks (the shared-buffer
    /// statistics): the slowest reads on the chip.
    WideMemory,
}

impl CounterId {
    /// The storage class of this counter on the modeled ASIC.
    pub fn storage_class(self) -> StorageClass {
        match self {
            CounterId::RxBytes(_)
            | CounterId::TxBytes(_)
            | CounterId::RxPackets(_)
            | CounterId::TxPackets(_) => StorageClass::Register,
            CounterId::Drops(_) | CounterId::RxSizeHist(_, _) | CounterId::TxSizeHist(_, _) => {
                StorageClass::Memory
            }
            CounterId::BufferLevel | CounterId::BufferPeak => StorageClass::WideMemory,
        }
    }
}

/// Deterministic read-cost model for a poll of one or more counters.
///
/// Stochastic effects (kernel interrupts, scheduler preemption) are *not*
/// modeled here — they belong to the CPU the poller runs on and live in
/// `uburst-core`'s poller. Splitting the two mirrors reality: the bus
/// transaction takes what it takes; the jitter comes from the OS.
#[derive(Debug, Clone, Copy)]
pub struct AccessModel {
    /// Fixed per-poll transaction setup cost.
    pub overhead: Nanos,
    /// Cost of one register-class read.
    pub register_read: Nanos,
    /// Cost of one memory-class read.
    pub memory_read: Nanos,
    /// Cost of one wide-memory read.
    pub wide_read: Nanos,
    /// Cost multiplier for the second and subsequent counters of a poll
    /// (amortized setup). 1.0 disables the discount; must be in (0, 1].
    pub batch_factor: f64,
}

impl Default for AccessModel {
    fn default() -> Self {
        AccessModel {
            overhead: Nanos(1_800),
            register_read: Nanos(700),
            memory_read: Nanos(2_400),
            wide_read: Nanos(42_000),
            batch_factor: 0.4,
        }
    }
}

impl AccessModel {
    fn class_cost(&self, class: StorageClass) -> Nanos {
        match class {
            StorageClass::Register => self.register_read,
            StorageClass::Memory => self.memory_read,
            StorageClass::WideMemory => self.wide_read,
        }
    }

    /// Deterministic time for the CPU to read `ids` in one poll.
    ///
    /// # Panics
    /// Panics on an empty group (a poll must read something).
    pub fn poll_cost(&self, ids: &[CounterId]) -> Nanos {
        assert!(!ids.is_empty(), "empty counter group");
        debug_assert!(self.batch_factor > 0.0 && self.batch_factor <= 1.0);
        let mut total = self.overhead;
        for (i, id) in ids.iter().enumerate() {
            let base = self.class_cost(id.storage_class());
            if i == 0 {
                total += base;
            } else {
                total += Nanos((base.as_nanos() as f64 * self.batch_factor) as u64);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::node::PortId;

    const P: PortId = PortId(0);

    #[test]
    fn storage_classes() {
        assert_eq!(
            CounterId::RxBytes(P).storage_class(),
            StorageClass::Register
        );
        assert_eq!(
            CounterId::TxPackets(P).storage_class(),
            StorageClass::Register
        );
        assert_eq!(CounterId::Drops(P).storage_class(), StorageClass::Memory);
        assert_eq!(
            CounterId::TxSizeHist(P, 0).storage_class(),
            StorageClass::Memory
        );
        assert_eq!(
            CounterId::BufferPeak.storage_class(),
            StorageClass::WideMemory
        );
    }

    #[test]
    fn single_byte_counter_cost_supports_25us_interval() {
        // The deterministic cost must leave jitter headroom below 10us so
        // that Table 1's 10us row shows ~10% (not ~100%) missed intervals.
        let m = AccessModel::default();
        let cost = m.poll_cost(&[CounterId::TxBytes(P)]);
        assert!(cost > Nanos::from_micros(1), "1us intervals must all miss");
        assert!(
            cost < Nanos::from_micros(7),
            "deterministic part must fit well under 10us, got {cost}"
        );
    }

    #[test]
    fn buffer_peak_is_slow() {
        let m = AccessModel::default();
        let cost = m.poll_cost(&[CounterId::BufferPeak]);
        assert!(
            cost > Nanos::from_micros(40) && cost < Nanos::from_micros(50),
            "peak read should be ~a 50us interval, got {cost}"
        );
    }

    #[test]
    fn batching_is_sublinear() {
        let m = AccessModel::default();
        let one = m.poll_cost(&[CounterId::TxBytes(P)]);
        let four = m.poll_cost(&[
            CounterId::TxBytes(PortId(0)),
            CounterId::TxBytes(PortId(1)),
            CounterId::TxBytes(PortId(2)),
            CounterId::TxBytes(PortId(3)),
        ]);
        assert!(four < one * 4, "batch {four} should undercut 4x single");
        assert!(four > one, "more counters still cost more");
    }

    #[test]
    fn batch_factor_one_is_linear_in_reads() {
        let m = AccessModel {
            batch_factor: 1.0,
            ..AccessModel::default()
        };
        let a = m.poll_cost(&[CounterId::TxBytes(P)]);
        let b = m.poll_cost(&[CounterId::TxBytes(P), CounterId::TxBytes(PortId(1))]);
        assert_eq!(b - a, m.register_read);
    }

    #[test]
    #[should_panic(expected = "empty counter group")]
    fn empty_group_panics() {
        AccessModel::default().poll_cost(&[]);
    }
}
