//! Kolmogorov–Smirnov goodness-of-fit test against an exponential.
//!
//! §5.2: "we can also see that the arrival rate of µbursts is not a
//! homogeneous/constant-rate Poisson process. We tested that using a
//! Kolmogorov-Smirnov goodness of fit test on the inter-arrival time with
//! exponential distribution, and got a p-value close to 0."
//!
//! The statistic is the usual sup-distance between the ECDF and the fitted
//! exponential CDF; the p-value uses the asymptotic Kolmogorov distribution.
//! (Fitting the rate from the same data makes the test slightly
//! conservative — the Lilliefors correction would shrink p further, which
//! only strengthens a rejection.)

/// Result of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_n(x) - F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsResult {
    /// Convenience: rejection at the given significance level.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Tests whether `samples` are exponentially distributed, with the rate
/// fitted as `1/mean` (the MLE).
///
/// Copies and sorts the sample (via the O(n) radix path of
/// [`sort_f64`](crate::sortf64::sort_f64)). Callers that already hold
/// sorted data should use [`ks_test_exponential_sorted`] or
/// [`ks_test_exponential_with_ecdf`] instead and skip the sort.
///
/// # Panics
/// Panics on an empty sample or non-positive mean.
pub fn ks_test_exponential(samples: &[f64]) -> KsResult {
    assert!(!samples.is_empty(), "empty sample");
    // The rate is fitted before sorting: summation order is part of the
    // result's bit pattern, and entry points must agree on it.
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut xs = samples.to_vec();
    crate::sortf64::sort_f64(&mut xs);
    ks_sorted_with_mean(&xs, mean)
}

/// [`ks_test_exponential`] for a sample that is **already sorted
/// ascending** — no copy, no sort. The rate is fitted from the sorted
/// order, so on the same data this matches
/// `ks_test_exponential(sorted)` only up to summation order; figure
/// harnesses that need bit-identity with the unsorted entry point should
/// use [`ks_test_exponential_with_ecdf`].
///
/// # Panics
/// Panics on an empty or unsorted sample, or a non-positive mean.
pub fn ks_test_exponential_sorted(sorted: &[f64]) -> KsResult {
    assert!(!sorted.is_empty(), "empty sample");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "unsorted sample");
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    ks_sorted_with_mean(sorted, mean)
}

/// KS test and [`Ecdf`](crate::Ecdf) over one sample, sorting **once**.
///
/// Bit-identical to the pair
/// `(ks_test_exponential(&samples), Ecdf::new(samples))` — the rate is
/// fitted from the sample in its given order before the single shared
/// sort — but does half the work, for the harnesses (Fig. 4) that plot
/// the CDF the test was run on.
///
/// # Panics
/// As [`ks_test_exponential`].
pub fn ks_test_exponential_with_ecdf(samples: Vec<f64>) -> (KsResult, crate::Ecdf) {
    assert!(!samples.is_empty(), "empty sample");
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let ecdf = crate::Ecdf::new(samples);
    (ks_sorted_with_mean(ecdf.values(), mean), ecdf)
}

/// The KS core over order statistics: `D = sup |F_n(x) - F(x)|` against
/// `Exp(1/mean)`, then the asymptotic p-value.
fn ks_sorted_with_mean(xs: &[f64], mean: f64) -> KsResult {
    assert!(mean > 0.0, "non-positive mean");
    let n = xs.len();

    // D = max over order statistics of the one-sided deviations.
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = 1.0 - (-x / mean).exp();
        let upper = (i as f64 + 1.0) / n as f64 - f;
        let lower = f - i as f64 / n as f64;
        d = d.max(upper).max(lower);
    }
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf((n as f64).sqrt() * d),
        n,
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2 k² λ²}`.
///
/// For small λ the alternating series converges too slowly for floating
/// point, so (as numerical references do) the dual theta-function form
/// `P(λ) = (√(2π)/λ) Σ_{k≥1} e^{-(2k-1)² π² / (8 λ²)}` is used there.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda > 6.0 {
        return 0.0; // below double precision
    }
    if lambda < 1.18 {
        // CDF via the small-λ series, then SF = 1 - CDF.
        let f = std::f64::consts::PI * std::f64::consts::PI / (8.0 * lambda * lambda);
        let mut cdf_sum = 0.0;
        for k in 1..=20u32 {
            let m = f64::from(2 * k - 1);
            let term = (-(m * m) * f).exp();
            cdf_sum += term;
            if term < 1e-16 {
                break;
            }
        }
        let cdf = (2.0 * std::f64::consts::PI).sqrt() / lambda * cdf_sum;
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::rng::Rng;

    #[test]
    fn exponential_data_is_not_rejected() {
        let mut rng = Rng::new(5);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.exp(3.0)).collect();
        let r = ks_test_exponential(&xs);
        assert!(
            r.p_value > 0.01,
            "true exponential rejected: D={} p={}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn heavy_tailed_data_is_rejected() {
        let mut rng = Rng::new(6);
        // Pareto inter-arrivals — the kind of process µbursts resemble.
        let xs: Vec<f64> = (0..5_000).map(|_| rng.pareto(1.0, 1.2)).collect();
        let r = ks_test_exponential(&xs);
        assert!(r.p_value < 1e-6, "pareto not rejected: p={}", r.p_value);
        assert!(r.rejects_at(0.001));
    }

    #[test]
    fn bimodal_data_is_rejected() {
        let mut rng = Rng::new(7);
        let xs: Vec<f64> = (0..5_000)
            .map(|_| if rng.chance(0.5) { 1.0 } else { 100.0 })
            .collect();
        let r = ks_test_exponential(&xs);
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Known points of the Kolmogorov distribution.
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.005, "K(1.36)");
        assert!((kolmogorov_sf(1.63) - 0.010).abs() < 0.003, "K(1.63)");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(10.0), 0.0);
        // Small-lambda branch: essentially certain to exceed.
        assert!(kolmogorov_sf(1e-6) > 0.999999);
        assert!(kolmogorov_sf(0.3) > 0.999);
        // Continuity across the branch switch at 1.18.
        let below = kolmogorov_sf(1.1799);
        let above = kolmogorov_sf(1.1801);
        assert!((below - above).abs() < 1e-3, "{below} vs {above}");
    }

    #[test]
    fn statistic_in_unit_interval() {
        let mut rng = Rng::new(8);
        let xs: Vec<f64> = (0..100).map(|_| rng.exp(1.0)).collect();
        let r = ks_test_exponential(&xs);
        assert!((0.0..=1.0).contains(&r.statistic));
        assert_eq!(r.n, 100);
    }

    #[test]
    fn sorted_entry_point_skips_the_sort_but_matches() {
        let mut rng = Rng::new(9);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.exp(2.0)).collect();
        let full = ks_test_exponential(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let from_sorted = ks_test_exponential_sorted(&sorted);
        // Same statistic; p/mean agree up to summation order of the mean.
        assert_eq!(from_sorted.n, full.n);
        assert!((from_sorted.statistic - full.statistic).abs() < 1e-12);
    }

    #[test]
    fn with_ecdf_is_bit_identical_to_the_pair() {
        let mut rng = Rng::new(10);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.exp(0.7)).collect();
        let separate_ks = ks_test_exponential(&xs);
        let separate_ecdf = crate::Ecdf::new(xs.clone());
        let (ks, ecdf) = ks_test_exponential_with_ecdf(xs);
        assert_eq!(ks.statistic.to_bits(), separate_ks.statistic.to_bits());
        assert_eq!(ks.p_value.to_bits(), separate_ks.p_value.to_bits());
        assert_eq!(ks.n, separate_ks.n);
        for (a, b) in ecdf.values().iter().zip(separate_ecdf.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "unsorted sample")]
    fn sorted_entry_point_rejects_unsorted() {
        ks_test_exponential_sorted(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        ks_test_exponential(&[]);
    }
}
