//! # uburst-core — the high-resolution counter collection framework
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§4.1): a framework that polls switch ASIC counters at 10s–100s of
//! microseconds with minimal impact on switch operation. It provides:
//!
//! * [`poller`] — the best-effort sampling loop, run on a modeled switch CPU
//!   inside the simulation, paying real (simulated) time per counter read
//!   and suffering kernel-jitter-induced missed intervals;
//! * [`spec`] — measurement campaigns and the dedicated vs. shared core
//!   timing model;
//! * [`tuning`] — automated minimum-interval search at a target sampling
//!   loss (the paper's manual Table 1 procedure);
//! * [`batch`] / [`output`] — sample batching toward the collector;
//! * [`collector`] / [`store`] — the (actually multithreaded) collector
//!   service and its sample store, with CSV export;
//! * [`series`] — timestamped cumulative-counter series and the
//!   delta-to-rate/utilization conversions the analyses build on.
//!
//! ## End-to-end shape
//!
//! ```text
//! Switch (uburst-sim) ──writes──► AsicCounters (uburst-asic)
//!                                     ▲ reads (AccessModel cost)
//!                               Poller (this crate, simulated CPU)
//!                                     │ Batcher
//!                                     ▼
//!                      crossbeam channel ──► Collector threads ──► SampleStore
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod collector;
pub mod output;
pub mod poller;
pub mod series;
pub mod spec;
pub mod store;
pub mod tuning;

pub use batch::{Batch, BatchPolicy, Batcher, SourceId};
pub use collector::Collector;
pub use output::{ChannelSink, MemorySink, SampleOutput};
pub use poller::{Poller, PollerStats};
pub use series::{RateSample, Series, UtilSample};
pub use spec::{CampaignConfig, CoreMode};
pub use store::{counter_label, parse_counter_label, SampleStore, SeriesKey};
pub use tuning::{probe_loss_profile, probe_miss_fraction, tune_min_interval, TuningConfig, TuningResult};
