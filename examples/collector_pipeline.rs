//! The full collection pipeline of §4.1: switch CPUs batch samples and
//! ship them to a **distributed collector service** — real OS threads
//! draining a bounded channel into a shared store — while the data center
//! simulation runs. Ends with a CSV export, like the paper's published raw
//! data.
//!
//! Run with `cargo run --release --example collector_pipeline`. Pass a
//! path argument to also write the full CSV to disk (feed it to the
//! `analyze_csv` tool for offline re-analysis).

use uburst::prelude::*;
use uburst::telemetry::{BatchPolicy, ChannelSink, Collector, Poller, SourceId};

fn main() {
    // Record the pipeline's own behaviour (poll costs, batch flushes,
    // collector ingest) alongside the measurement data it produces.
    uburst::obs::enable();

    // A fleet of three measured racks, one per application type.
    let fleet: Vec<(RackType, u64)> = vec![
        (RackType::Web, 11),
        (RackType::Cache, 22),
        (RackType::Hadoop, 33),
    ];

    // The collector service: 2 worker threads, a bounded queue of 256
    // batches (backpressure instead of loss).
    let (collector, tx) = Collector::start(2, 256).expect("collector starts");

    for (i, (rack_type, seed)) in fleet.iter().enumerate() {
        let mut s = build_scenario(ScenarioConfig::new(*rack_type, *seed));
        let warmup = s.recommended_warmup();
        s.sim.run_until(warmup);

        // One multi-counter campaign per switch: the four uplink byte
        // counters at 40us, batched toward the collector.
        let counters: Vec<CounterId> = s
            .uplink_ports()
            .iter()
            .map(|&p| CounterId::TxBytes(p))
            .collect();
        let campaign = CampaignConfig::group(
            format!("{}-uplinks", rack_type.name()),
            counters.clone(),
            Nanos::from_micros(40),
        );
        let sink = ChannelSink::new(
            SourceId(i as u32),
            format!("{}-uplinks", rack_type.name()),
            counters,
            BatchPolicy::default(),
            tx.clone(),
        );
        let poller = Poller::new(
            s.counters.clone(),
            AccessModel::default(),
            campaign,
            *seed,
            Box::new(sink),
        )
        .expect("valid campaign");
        let stop = warmup + Nanos::from_millis(120);
        let id = poller
            .spawn(&mut s.sim, warmup, stop)
            .expect("valid window");
        s.sim.run_until(stop + Nanos::from_millis(1));

        let stats = s.sim.node_mut::<Poller>(id).stats();
        println!(
            "{}: shipped {} polls ({:.2}% missed deadlines)",
            rack_type.name(),
            stats.polls,
            stats.deadline_miss_fraction() * 100.0
        );
    }

    // Structured shutdown: drop the last sender, then join the workers.
    drop(tx);
    let (store, report) = collector.shutdown().expect("clean shutdown");
    println!(
        "collector ingested {} batches ({} quarantined), {} samples across {} series",
        report.ingested,
        report.quarantined,
        store.total_samples(),
        store.keys().len()
    );

    // Export like the paper's raw-data release; show the first rows.
    let mut csv = Vec::new();
    store.export_csv(&mut csv).expect("csv export");
    let text = String::from_utf8(csv).expect("utf8");
    println!("\nfirst CSV rows:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    println!("  ... ({} rows total)", text.lines().count() - 1);

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &text).expect("write csv");
        println!("wrote {path}");
    }

    // The pipeline watching itself: simulated-time latency rollup plus the
    // full metric set, Prometheus-style. Byte-identical across runs — every
    // aggregate is commutative and clocked on simulated time.
    let snap = uburst::obs::snapshot();
    println!("\npipeline telemetry (simulated time):");
    print!("{}", snap.flame_rollup());
    println!("\nmetrics:");
    print!("{}", snap.to_prometheus());
}
