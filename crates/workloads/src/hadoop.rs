//! The Hadoop rack workload.
//!
//! §4.2: "Hadoop servers are used for offline analysis and data mining" —
//! not on the interactive path. The properties the paper measures:
//!
//! * **high utilization with full-MTU packets** (Figs. 5, 6): shuffle and
//!   HDFS transfers are bulk flows;
//! * the **longest bursts** of the three rack types, but still almost all
//!   under 0.5 ms (Fig. 3) — window-limited transport fragments even long
//!   transfers into line-rate trains separated by ACK stalls;
//! * **modest cross-server correlation** (Fig. 8c): map waves put several
//!   servers to work at roughly the same time;
//! * **server-directed bursts** (Fig. 9): reducers fan in from many
//!   mappers ("for these racks, bursts tend to be a result of high fan-in").
//!
//! The wave structure is derived deterministically from a shared seed so
//! every host computes the same schedule without coordination — a stand-in
//! for the job tracker.

use uburst_sim::node::NodeId;
use uburst_sim::time::Nanos;

use crate::host::{App, Env, Incoming};
use crate::web::SizeDist;

/// Hadoop host tuning.
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// Rack-local peers (reduce targets live here).
    pub rack_nodes: Vec<NodeId>,
    /// Remote peers (cross-rack shuffle / HDFS replication targets).
    pub remote_nodes: Vec<NodeId>,
    /// Mean spacing between map waves.
    pub wave_period: Nanos,
    /// Probability this host participates in a given wave.
    pub join_prob: f64,
    /// Reducers drawn per wave from `rack_nodes`.
    pub reducers_per_wave: usize,
    /// Shuffle transfer size per mapper per wave.
    pub transfer: SizeDist,
    /// Independent background transfers per second (HDFS writes, spills).
    pub background_rate_per_s: f64,
    /// Background transfer size.
    pub background: SizeDist,
    /// Probability a background transfer leaves the rack.
    pub background_remote_prob: f64,
    /// Probability a wave transfer ships cross-rack (remote shuffle /
    /// replication) instead of to this wave's in-rack reducers.
    pub remote_wave_prob: f64,
    /// Shared seed all hosts derive the wave schedule from.
    pub schedule_seed: u64,
}

impl Default for HadoopConfig {
    fn default() -> Self {
        HadoopConfig {
            rack_nodes: Vec::new(),
            remote_nodes: Vec::new(),
            wave_period: Nanos::from_millis(8),
            join_prob: 0.55,
            reducers_per_wave: 3,
            transfer: SizeDist {
                median: 600_000,
                sigma: 1.0,
                cap: 20_000_000,
            },
            background_rate_per_s: 40.0,
            background: SizeDist {
                median: 250_000,
                sigma: 1.0,
                cap: 5_000_000,
            },
            background_remote_prob: 0.5,
            remote_wave_prob: 0.25,
            schedule_seed: 0x4A0B,
        }
    }
}

impl HadoopConfig {
    /// Analytic per-host offered rate in bytes/sec, from the closed-form
    /// means of the wave and background processes:
    ///
    /// * waves fire every `wave_period` and this host joins with
    ///   `join_prob`, shipping one `transfer`-distributed flow;
    /// * background flows arrive Poisson at `background_rate_per_s`.
    ///
    /// This is steady-state metadata for the hybrid fast-forward engine
    /// (`uburst_sim::fastfwd`): scenario builders use it to pre-size the
    /// event calendar for the in-flight packet population instead of
    /// growing through the doubling phase mid-campaign. It deliberately
    /// ignores self-addressed draws (a host never sends to itself), so it
    /// is a slight upper bound.
    pub fn offered_bytes_per_sec(&self) -> f64 {
        let wave = self.join_prob / self.wave_period.as_secs_f64() * self.transfer.mean_bytes();
        let background = self.background_rate_per_s * self.background.mean_bytes();
        wave + background
    }
}

const TOKEN_WAVE: u64 = 1;
const TOKEN_BACKGROUND: u64 = 2;

/// One Hadoop worker (mapper + reducer + HDFS node in one).
pub struct HadoopApp {
    cfg: HadoopConfig,
    wave_index: u64,
    /// Shuffle transfers started (diagnostics).
    pub transfers_started: u64,
    /// Bytes of completed incoming transfers (diagnostics).
    pub bytes_received: u64,
}

/// SplitMix64 finalizer for deriving per-wave pseudo-randomness that every
/// host agrees on.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HadoopApp {
    /// A worker with the given tuning.
    pub fn new(cfg: HadoopConfig) -> Self {
        assert!(!cfg.rack_nodes.is_empty(), "no rack peers");
        assert!(cfg.reducers_per_wave >= 1);
        assert!(cfg.reducers_per_wave <= cfg.rack_nodes.len());
        HadoopApp {
            cfg,
            wave_index: 0,
            transfers_started: 0,
            bytes_received: 0,
        }
    }

    /// When wave `k` fires (same for every host): `k * period` plus a
    /// deterministic jitter of up to a quarter period.
    fn wave_time(&self, k: u64) -> Nanos {
        let base = self.cfg.wave_period * k;
        let jitter = mix(self.cfg.schedule_seed ^ k) % (self.cfg.wave_period.as_nanos() / 4 + 1);
        base + Nanos(jitter)
    }

    /// The reducers of wave `k` (indices into `rack_nodes`), identical on
    /// every host.
    fn wave_reducers(&self, k: u64) -> Vec<usize> {
        let n = self.cfg.rack_nodes.len();
        let mut picked = Vec::with_capacity(self.cfg.reducers_per_wave);
        let mut salt = 0u64;
        while picked.len() < self.cfg.reducers_per_wave {
            let idx = (mix(self.cfg.schedule_seed ^ (k << 8) ^ salt) % n as u64) as usize;
            if !picked.contains(&idx) {
                picked.push(idx);
            }
            salt += 1;
        }
        picked
    }

    fn schedule_wave(&self, env: &mut Env<'_, '_>, k: u64) {
        let at = self.wave_time(k);
        let now = env.now();
        let delay = at.saturating_sub(now).max(Nanos(1));
        env.timer_in(delay, TOKEN_WAVE);
    }

    fn schedule_background(&self, env: &mut Env<'_, '_>) {
        if self.cfg.background_rate_per_s <= 0.0 {
            return;
        }
        let gap = env.rng.exp(1.0 / self.cfg.background_rate_per_s);
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_BACKGROUND);
    }

    fn run_wave(&mut self, env: &mut Env<'_, '_>) {
        let k = self.wave_index;
        self.wave_index += 1;
        if env.rng.chance(self.cfg.join_prob) {
            let remote =
                !self.cfg.remote_nodes.is_empty() && env.rng.chance(self.cfg.remote_wave_prob);
            let dst = if remote {
                // Cross-rack shuffle: this wave's output leaves the rack.
                *env.rng.pick(&self.cfg.remote_nodes)
            } else {
                // In-rack reduce: ship to one of this wave's reducers.
                let reducers = self.wave_reducers(k);
                let idx = reducers[env.rng.below(reducers.len() as u64) as usize];
                self.cfg.rack_nodes[idx]
            };
            if dst != env.host() {
                let bytes = self.cfg.transfer.sample(env.rng);
                env.send_data(dst, bytes, k as u32);
                self.transfers_started += 1;
            }
        }
        self.schedule_wave(env, self.wave_index);
    }

    fn run_background(&mut self, env: &mut Env<'_, '_>) {
        let remote =
            !self.cfg.remote_nodes.is_empty() && env.rng.chance(self.cfg.background_remote_prob);
        let dst = if remote {
            *env.rng.pick(&self.cfg.remote_nodes)
        } else {
            *env.rng.pick(&self.cfg.rack_nodes)
        };
        if dst != env.host() {
            let bytes = self.cfg.background.sample(env.rng);
            env.send_data(dst, bytes, 0);
            self.transfers_started += 1;
        }
        self.schedule_background(env);
    }
}

impl App for HadoopApp {
    fn start(&mut self, env: &mut Env<'_, '_>) {
        // Wave schedule is absolute; figure out which wave is next.
        let now = env.now();
        let mut k = now / self.cfg.wave_period;
        while self.wave_time(k) < now {
            k += 1;
        }
        self.wave_index = k;
        self.schedule_wave(env, k);
        self.schedule_background(env);
    }

    fn on_timer(&mut self, env: &mut Env<'_, '_>, token: u64) {
        match token {
            TOKEN_WAVE => self.run_wave(env),
            TOKEN_BACKGROUND => self.run_background(env),
            other => debug_assert!(false, "unknown hadoop token {other}"),
        }
    }

    fn on_flow_received(&mut self, _env: &mut Env<'_, '_>, msg: Incoming) {
        self.bytes_received += msg.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::AppHost;
    use uburst_sim::counters::null_sink;
    use uburst_sim::link::LinkSpec;
    use uburst_sim::nic::NicConfig;
    use uburst_sim::node::PortId;
    use uburst_sim::routing::{Route, RoutingTable};
    use uburst_sim::sim::Simulator;
    use uburst_sim::switch::{Switch, SwitchConfig};
    use uburst_sim::transport::TransportConfig;

    fn test_cfg(rack: Vec<NodeId>) -> HadoopConfig {
        HadoopConfig {
            rack_nodes: rack,
            remote_nodes: Vec::new(),
            wave_period: Nanos::from_millis(2),
            join_prob: 0.9,
            reducers_per_wave: 2,
            transfer: SizeDist {
                median: 100_000,
                sigma: 0.5,
                cap: 1_000_000,
            },
            background_rate_per_s: 100.0,
            ..HadoopConfig::default()
        }
    }

    #[test]
    fn wave_schedule_is_identical_across_hosts() {
        let rack = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let a = HadoopApp::new(test_cfg(rack.clone()));
        let b = HadoopApp::new(test_cfg(rack));
        for k in 0..100 {
            assert_eq!(a.wave_time(k), b.wave_time(k));
            assert_eq!(a.wave_reducers(k), b.wave_reducers(k));
        }
    }

    #[test]
    fn wave_reducers_are_distinct_and_vary() {
        let rack: Vec<NodeId> = (0..8).map(NodeId).collect();
        let app = HadoopApp::new(test_cfg(rack));
        let mut seen = std::collections::HashSet::new();
        for k in 0..50 {
            let r = app.wave_reducers(k);
            assert_eq!(r.len(), 2);
            assert_ne!(r[0], r[1]);
            seen.insert(r);
        }
        assert!(seen.len() > 10, "reducer sets should vary across waves");
    }

    #[test]
    fn waves_are_monotone_in_time() {
        let rack = vec![NodeId(0), NodeId(1)];
        let app = HadoopApp::new(HadoopConfig {
            reducers_per_wave: 1,
            ..test_cfg(rack)
        });
        for k in 0..100 {
            assert!(app.wave_time(k + 1) > app.wave_time(k));
        }
    }

    #[test]
    fn analytic_offered_rate_matches_sampled_means() {
        let cfg = test_cfg(vec![NodeId(0), NodeId(1)]);
        // Empirical mean of the transfer distribution vs the closed form.
        let mut rng = uburst_sim::rng::Rng::new(7);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| cfg.transfer.sample(&mut rng)).sum();
        let empirical = sum as f64 / n as f64;
        let analytic = cfg.transfer.mean_bytes();
        let err = (empirical - analytic).abs() / analytic;
        assert!(
            err < 0.05,
            "transfer mean: empirical {empirical:.0} vs analytic {analytic:.0}"
        );

        // The offered rate is exactly the two-process composition.
        let expect = cfg.join_prob / cfg.wave_period.as_secs_f64() * cfg.transfer.mean_bytes()
            + cfg.background_rate_per_s * cfg.background.mean_bytes();
        assert_eq!(cfg.offered_bytes_per_sec(), expect);
        // Sanity: the default test tuning offers on the order of a few
        // tens of MB/s per host — enough to congest a 10G link rack-wide.
        assert!(cfg.offered_bytes_per_sec() > 10e6);
    }

    #[test]
    fn cluster_moves_bytes() {
        let mut sim = Simulator::new();
        let rack_size = 6;
        // Create hosts with placeholder configs, then fix the peer lists.
        let hosts: Vec<NodeId> = (0..rack_size)
            .map(|i| {
                AppHost::spawn(
                    &mut sim,
                    Box::new(HadoopApp::new(test_cfg(vec![NodeId(998), NodeId(999)]))),
                    NicConfig::default(),
                    TransportConfig::default(),
                    40 + i,
                    Nanos::from_micros(i * 10),
                )
            })
            .collect();
        for &h in &hosts {
            let cfg = test_cfg(hosts.clone());
            let app: &mut HadoopApp = {
                let host = sim.node_mut::<AppHost>(h);
                // Reach into the app to swap the config before start fires.
                (host_app_mut(host)) as _
            };
            app.cfg = cfg;
        }

        let mut routing = RoutingTable::new(0);
        for (i, &h) in hosts.iter().enumerate() {
            routing.set_route(h, Route::Port(PortId(i as u16)));
        }
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::default(),
            routing,
            null_sink(),
        )));
        for (i, &h) in hosts.iter().enumerate() {
            sim.connect(
                (h, PortId(0)),
                (sw, PortId(i as u16)),
                LinkSpec::gbps(10.0, Nanos(500)),
            );
        }

        sim.run_until(Nanos::from_millis(60));

        let started: u64 = hosts
            .iter()
            .map(|&h| sim.node::<AppHost>(h).app::<HadoopApp>().transfers_started)
            .sum();
        let received: u64 = hosts
            .iter()
            .map(|&h| sim.node::<AppHost>(h).app::<HadoopApp>().bytes_received)
            .sum();
        assert!(started > 20, "only {started} transfers started");
        assert!(received > 5_000_000, "only {received} bytes moved in 60ms");
    }

    /// Test helper: mutable access to a host's HadoopApp before start.
    fn host_app_mut(host: &mut AppHost) -> &mut HadoopApp {
        host.app_mut::<HadoopApp>()
    }
}
