//! Pre-resolved batched counter reads.
//!
//! A poller reads the same counter list every interval, yet the naive path
//! re-does the full per-counter work on every poll: match on the
//! [`CounterId`](crate::CounterId) variant, bounds-check the port, and walk
//! the access-latency model to price the batch. A [`ReadPlan`] hoists all
//! of that out of the hot loop: it resolves each counter to its flat cell
//! slot once, and tabulates the simulated cost of every counter-list
//! prefix once, so a poll is an indexed gather plus a table lookup.
//!
//! The prefix-cost table exists because load shedding (see
//! `uburst-core`'s poller) always drops counters from the *tail* of the
//! campaign list — every read set the poller can issue is a prefix of the
//! plan, so one table covers all of them. Costs are computed with
//! [`AccessModel::poll_cost`] itself, so planned costs are bit-identical
//! to the unplanned path and simulated timelines do not move.

use crate::access::AccessModel;
use crate::counters::{AsicCounters, CounterId};
use uburst_sim::time::Nanos;

/// A counter list resolved against one bank geometry and one access model.
///
/// Built once per campaign with [`AsicCounters::read_plan`]; executed every
/// poll with [`AsicCounters::read_planned`]. Read-and-clear semantics (the
/// buffer peak register) are preserved — the plan resolves *where* each
/// counter lives, not *how* it reads.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    /// Flat cell index of each counter, in campaign order.
    slots: Vec<u32>,
    /// `prefix_costs[k-1]` is the simulated cost of polling the first `k`
    /// counters, exactly as [`AccessModel::poll_cost`] would price them.
    prefix_costs: Vec<Nanos>,
    /// Geometry stamp: cell count of the bank the plan was resolved for.
    n_cells: usize,
}

impl ReadPlan {
    /// Number of counters in the plan.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the plan is empty (an empty plan prices and reads nothing).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Simulated cost of polling the first `k` counters of the plan.
    ///
    /// # Panics
    /// Panics if `k` is zero (a poll must read something) or exceeds the
    /// plan length.
    pub fn cost(&self, k: usize) -> Nanos {
        assert!(k > 0, "empty counter group");
        self.prefix_costs[k - 1]
    }
}

impl AsicCounters {
    /// Resolves `ids` against this bank and `access` into a [`ReadPlan`].
    ///
    /// Validates every port and histogram bin up front (panicking exactly
    /// where [`AsicCounters::read`] would), then prices every prefix of the
    /// list with [`AccessModel::poll_cost`] so later cost lookups are a
    /// table index.
    pub fn read_plan(&self, ids: &[CounterId], access: &AccessModel) -> ReadPlan {
        let slots = ids.iter().map(|&id| self.slot_of(id) as u32).collect();
        let prefix_costs = (1..=ids.len())
            .map(|k| access.poll_cost(&ids[..k]))
            .collect();
        ReadPlan {
            slots,
            prefix_costs,
            n_cells: self.n_cells(),
        }
    }

    /// Reads the first `k` counters of `plan` into `out` (cleared first),
    /// in plan order, honoring read-and-clear registers.
    ///
    /// Equivalent to [`AsicCounters::read_group`] over the same prefix, but
    /// with all dispatch and validation done at plan-build time.
    ///
    /// # Panics
    /// Panics if the plan was resolved for a bank of different geometry, or
    /// if `k` exceeds the plan length.
    pub fn read_planned(&self, plan: &ReadPlan, k: usize, out: &mut Vec<u64>) {
        assert_eq!(
            plan.n_cells,
            self.n_cells(),
            "read plan was resolved for a different bank geometry"
        );
        out.clear();
        out.extend(plan.slots[..k].iter().map(|&s| self.read_slot(s as usize)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::counters::CounterSink;
    use uburst_sim::node::PortId;

    fn mixed_ids() -> Vec<CounterId> {
        vec![
            CounterId::TxBytes(PortId(0)),
            CounterId::RxPackets(PortId(1)),
            CounterId::Drops(PortId(2)),
            CounterId::TxSizeHist(PortId(3), 4),
            CounterId::BufferLevel,
            CounterId::BufferPeak,
        ]
    }

    #[test]
    fn plan_costs_match_poll_cost_for_every_prefix() {
        let bank = AsicCounters::new(4);
        let access = AccessModel::default();
        let ids = mixed_ids();
        let plan = bank.read_plan(&ids, &access);
        assert_eq!(plan.len(), ids.len());
        for k in 1..=ids.len() {
            assert_eq!(plan.cost(k), access.poll_cost(&ids[..k]), "prefix {k}");
        }
    }

    #[test]
    fn planned_reads_match_read_group() {
        let bank = AsicCounters::new(4);
        for p in 0..4 {
            bank.count_tx(PortId(p), 700 + 100 * u32::from(p));
            bank.count_rx(PortId(p), 64);
            bank.count_drop(PortId(p), 64);
        }
        bank.buffer_level(9_000);
        bank.buffer_level(2_000);

        let ids = mixed_ids();
        let reference = AsicCounters::new(4);
        for p in 0..4 {
            reference.count_tx(PortId(p), 700 + 100 * u32::from(p));
            reference.count_rx(PortId(p), 64);
            reference.count_drop(PortId(p), 64);
        }
        reference.buffer_level(9_000);
        reference.buffer_level(2_000);

        let plan = bank.read_plan(&ids, &AccessModel::default());
        let mut out = Vec::new();
        bank.read_planned(&plan, ids.len(), &mut out);
        assert_eq!(out, reference.read_group(&ids));
    }

    #[test]
    fn planned_read_clears_the_peak_register() {
        let bank = AsicCounters::new(1);
        bank.buffer_level(5_000);
        bank.buffer_level(1_000);
        let ids = [CounterId::BufferPeak];
        let plan = bank.read_plan(&ids, &AccessModel::default());
        let mut out = Vec::new();
        bank.read_planned(&plan, 1, &mut out);
        assert_eq!(out, vec![5_000]);
        // Re-seeded with the current level, exactly like a direct read.
        bank.read_planned(&plan, 1, &mut out);
        assert_eq!(out, vec![1_000]);
    }

    #[test]
    fn prefix_read_skips_tail_counters() {
        let bank = AsicCounters::new(2);
        bank.count_tx(PortId(0), 1_000);
        bank.buffer_level(4_000);
        let ids = [CounterId::TxBytes(PortId(0)), CounterId::BufferPeak];
        let plan = bank.read_plan(&ids, &AccessModel::default());
        let mut out = Vec::new();
        bank.read_planned(&plan, 1, &mut out);
        assert_eq!(out, vec![1_000]);
        // The shed peak register was not touched, so it still holds 4_000.
        assert_eq!(bank.peek_buffer_peak(), 4_000);
    }

    #[test]
    #[should_panic(expected = "different bank geometry")]
    fn plan_rejects_a_mismatched_bank() {
        let small = AsicCounters::new(2);
        let large = AsicCounters::new(8);
        let plan = small.read_plan(&[CounterId::BufferLevel], &AccessModel::default());
        let mut out = Vec::new();
        large.read_planned(&plan, 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_build_validates_ports() {
        let bank = AsicCounters::new(2);
        bank.read_plan(&[CounterId::TxBytes(PortId(7))], &AccessModel::default());
    }

    #[test]
    #[should_panic(expected = "empty counter group")]
    fn zero_prefix_cost_panics() {
        let bank = AsicCounters::new(1);
        let plan = bank.read_plan(&[CounterId::BufferLevel], &AccessModel::default());
        plan.cost(0);
    }
}
