//! Acceptance tests for the fault-injection and graceful-degradation
//! layer: a 25 µs campaign under realistic hardware faults must complete
//! without stalls, reconstruct rates the wrap decoder cannot distinguish
//! from fault-free hardware, and account for every injected fault.

use uburst::prelude::*;

/// Runs a 25 µs byte campaign on one Hadoop ToR port, optionally under a
/// fault plan; returns the poller's stats, fault stats, and the series.
fn faulted_rack(seed: u64, plan: Option<FaultPlan>) -> (PollerStats, Option<FaultStats>, Series) {
    faulted_rack_mode(seed, plan, None)
}

/// [`faulted_rack`] with the execution mode forced (`Some(true)` hybrid
/// fast-forward, `Some(false)` per-packet, `None` environment default).
fn faulted_rack_mode(
    seed: u64,
    plan: Option<FaultPlan>,
    hybrid: Option<bool>,
) -> (PollerStats, Option<FaultStats>, Series) {
    let mut cfg = ScenarioConfig::new(RackType::Hadoop, seed);
    cfg.hybrid = hybrid;
    let mut s = build_scenario(cfg);
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let port = s.host_ports()[1];
    let campaign =
        CampaignConfig::single("bytes", CounterId::TxBytes(port), Nanos::from_micros(25));
    let mut poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, seed)
        .expect("valid campaign");
    if let Some(plan) = plan {
        poller = poller.with_faults(FaultInjector::new(plan));
    }
    let stop = warmup + Nanos::from_millis(100);
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));
    let p = s.sim.node_mut::<Poller>(id);
    let stats = p.stats();
    let faults = p.fault_stats();
    let series = p.take_series().expect("in-memory")[0].1.clone();
    (stats, faults, series)
}

fn mean_rate(s: &Series) -> f64 {
    let dv = s.vs.last().unwrap() - s.vs[0];
    let dt = Nanos(s.ts.last().unwrap() - s.ts[0]).as_secs_f64();
    dv as f64 / dt
}

#[test]
fn faulted_campaign_matches_fault_free_within_one_percent() {
    // The ISSUE acceptance bar: 1% transient failures + 32-bit counter
    // wrap, 25us campaign — completes, and reconstructed rates land within
    // 1% of the fault-free run on the identical rack.
    let (clean_stats, _, clean) = faulted_rack(17, None);
    let plan = FaultPlan::none(0xFA17)
        .with_transient_failure(0.01)
        .with_counter_bits(32);
    let (stats, faults, series) = faulted_rack(17, Some(plan));
    let faults = faults.expect("injector attached");

    // The campaign ran to completion at full length: no stall, no panic.
    assert!(stats.polls > 3_500, "only {} polls", stats.polls);
    assert!(stats.stopped_at > stats.started_at);

    // Wrap decoding: the series is monotone despite dozens of 32-bit reads.
    assert!(series.vs.windows(2).all(|w| w[1] >= w[0]), "wrap glitch");

    // Accuracy: within 1% of fault-free.
    let err = (mean_rate(&series) - mean_rate(&clean)).abs() / mean_rate(&clean);
    assert!(err < 0.01, "rate error {:.3}% vs fault-free", err * 100.0);

    // Loss stays near the fault-free Table-1 level (retries absorb faults).
    let loss = |s: &PollerStats| {
        (s.missed_deadlines + s.abandoned_polls()) as f64 / (s.polls + s.missed_deadlines) as f64
    };
    assert!(
        loss(&stats) < loss(&clean_stats) + 0.05,
        "faults blew up sampling loss: {:.2}% vs {:.2}%",
        loss(&stats) * 100.0,
        loss(&clean_stats) * 100.0
    );

    // Accounting: every injected fault shows up in the poller's books.
    assert!(stats.read_errors > 0, "1% plan injected nothing in 100ms");
    assert_eq!(faults.bus_timeouts, stats.read_errors);
    assert_eq!(faults.stale_values, stats.stale_reads);
    assert_eq!(stats.read_errors, stats.retries + stats.abandoned_polls());
}

#[test]
fn faulted_campaign_is_deterministic_from_its_seeds() {
    let plan = FaultPlan::none(0xFA17)
        .with_transient_failure(0.02)
        .with_stale_read(0.01)
        .with_counter_bits(32);
    let (sa, fa, a) = faulted_rack(23, Some(plan));
    let (sb, fb, b) = faulted_rack(23, Some(plan));
    assert_eq!(sa, sb);
    assert_eq!(fa, fb);
    assert_eq!(a.ts, b.ts);
    assert_eq!(a.vs, b.vs);
}

#[test]
fn faulted_campaign_is_identical_across_execution_modes() {
    // Fault injection acts on the measurement plane (the poller's reads),
    // never on the data plane, so the hybrid fast-forward engine must
    // reproduce a faulted campaign bit-for-bit: the same reads get the
    // same injected latency spikes, stale raws, and 32-bit wraps, and the
    // decoded timeline comes out byte-identical to per-packet mode.
    // 24-bit registers wrap several times over 100 ms of bulk traffic, so
    // the wrap decoder is genuinely in the loop.
    let plan = FaultPlan::none(0xFA57)
        .with_transient_failure(0.01)
        .with_latency_spike(0.02)
        .with_stale_read(0.01)
        .with_counter_bits(24);
    let (ps, pf, pseries) = faulted_rack_mode(47, Some(plan), Some(false));
    let (hs, hf, hseries) = faulted_rack_mode(47, Some(plan), Some(true));
    assert_eq!(ps, hs, "poller stats diverge across modes");
    assert_eq!(pf, hf, "fault accounting diverges across modes");
    assert_eq!(pseries.ts, hseries.ts, "poll timestamps diverge");
    assert_eq!(pseries.vs, hseries.vs, "decoded timeline diverges");
    // The comparison is only meaningful if faults actually fired.
    let f = pf.expect("injector attached");
    assert!(f.bus_timeouts > 0, "no transient failures injected");
    assert!(f.stale_values > 0, "no stale reads injected");
    assert!(
        *pseries.vs.last().unwrap() - pseries.vs[0] > 1 << 24,
        "campaign never crossed a 24-bit wrap"
    );
}

#[test]
fn stale_snooped_reads_cannot_fake_counter_wraps() {
    // The stale x wrap interaction: with a shared read-snoop register
    // (one bank-wide latch), a stale read on counter B can return counter
    // A's older, *smaller* raw. A bare modular decoder cannot tell that
    // regression from a genuine 32-bit wrap and would jump the series by
    // nearly 2^32; the plausibility guard (armed from the link rate)
    // rejects it and the next genuine read recovers exactly.
    let run = |plan: Option<FaultPlan>| -> (PollerStats, Vec<(CounterId, Series)>, u64) {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 31));
        let warmup = s.recommended_warmup();
        s.sim.run_until(warmup);
        let ports = s.host_ports();
        let counters = vec![CounterId::TxBytes(ports[0]), CounterId::TxBytes(ports[1])];
        let link_bps = s.server_link_bps();
        let campaign = CampaignConfig::group("snoop", counters, Nanos::from_micros(25));
        let mut poller =
            Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, 31)
                .expect("valid campaign");
        if let Some(plan) = plan {
            poller = poller
                .with_faults(FaultInjector::new(plan))
                .with_wrap_guard(link_bps);
        }
        let stop = warmup + Nanos::from_millis(100);
        let id = poller
            .spawn(&mut s.sim, warmup, stop)
            .expect("valid window");
        s.sim.run_until(stop + Nanos::from_millis(1));
        let p = s.sim.node_mut::<Poller>(id);
        let stats = p.stats();
        let series = p.take_series().expect("in-memory");
        (stats, series, link_bps)
    };

    let (_, clean, _) = run(None);
    let plan = FaultPlan::none(0x5A0F)
        .with_stale_read(0.05)
        .with_shared_snoop()
        .with_counter_bits(32);
    let (stats, series, _) = run(Some(plan));

    // The snoop produced at least one regressed raw, and every one was
    // rejected by the guard rather than decoded as a wrap.
    assert!(stats.stale_reads > 0, "5% stale plan injected nothing");
    assert!(
        stats.wrap_regressions > 0,
        "shared snoop never regressed a raw in 100ms"
    );

    for ((counter, got), (_, want)) in series.iter().zip(clean.iter()) {
        // No fake wraps: the decoded series never jumps anywhere near 2^32.
        let max_jump = got.vs.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        assert!(
            max_jump < 1 << 31,
            "{counter:?}: fake wrap jump of {max_jump}"
        );
        assert!(got.vs.windows(2).all(|w| w[1] >= w[0]), "wrap glitch");
        // And the reconstructed rate stays close to the fault-free run.
        let err = (mean_rate(got) - mean_rate(want)).abs() / mean_rate(want);
        assert!(
            err < 0.10,
            "{counter:?}: rate error {:.1}% under stale+snoop",
            err * 100.0
        );
    }
}

#[test]
fn hardened_pipeline_ships_faulted_samples_through_the_collector() {
    // End to end: faulted poller -> bounded channel -> supervised collector
    // -> store. Nothing may be quarantined or lost, and the shipped series
    // must equal what an in-memory sink would have recorded.
    let mut s = build_scenario(ScenarioConfig::new(RackType::Web, 29));
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let port = s.host_ports()[0];
    let campaign =
        CampaignConfig::single("bytes", CounterId::TxBytes(port), Nanos::from_micros(50));
    let (collector, tx) = Collector::start(2, 64).expect("collector starts");
    let sink = ChannelSink::new(
        SourceId(7),
        "bytes",
        vec![CounterId::TxBytes(port)],
        BatchPolicy {
            max_samples: 128,
            max_age: Nanos::from_millis(2),
        },
        tx,
    );
    let plan = FaultPlan::none(5)
        .with_transient_failure(0.01)
        .with_counter_bits(32);
    let poller = Poller::new(
        s.counters.clone(),
        AccessModel::default(),
        campaign,
        29,
        Box::new(sink),
    )
    .expect("valid campaign")
    .with_faults(FaultInjector::new(plan));
    let stop = warmup + Nanos::from_millis(60);
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));
    let polls = s.sim.node_mut::<Poller>(id).stats().polls;
    drop(s); // drops the poller's sink, flushing and closing the channel

    let (store, report) = collector.shutdown().expect("clean shutdown");
    assert_eq!(
        report.quarantined, 0,
        "well-formed batches were quarantined"
    );
    assert_eq!(report.restarts, 0);
    let got = store
        .series(SourceId(7), CounterId::TxBytes(port))
        .expect("series shipped");
    assert_eq!(got.len() as u64, polls, "samples lost in the pipeline");
    assert!(got.vs.windows(2).all(|w| w[1] >= w[0]), "wrap glitch");
}
