//! End-to-end integration: scenario → switch → ASIC counters → poller →
//! analysis, across all crates.

use uburst::prelude::*;
use uburst::sim::switch::Switch;

/// Builds, warms up, and polls one port of a rack; returns everything the
/// assertions need.
fn measured_rack(
    rack_type: RackType,
    seed: u64,
    span: Nanos,
) -> (Scenario, PollerStats, Vec<UtilSample>) {
    let mut s = build_scenario(ScenarioConfig::new(rack_type, seed));
    let warmup = s.recommended_warmup();
    s.sim.run_until(warmup);
    let port = s.host_ports()[1];
    let campaign =
        CampaignConfig::single("bytes", CounterId::TxBytes(port), Nanos::from_micros(25));
    let poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, seed)
        .expect("valid campaign");
    let stop = warmup + span;
    let id = poller
        .spawn(&mut s.sim, warmup, stop)
        .expect("valid window");
    s.sim.run_until(stop + Nanos::from_millis(1));
    let stats = s.sim.node_mut::<Poller>(id).stats();
    let series = &s
        .sim
        .node_mut::<Poller>(id)
        .take_series()
        .expect("in-memory")[0]
        .1;
    let utils = series.utilization(s.server_link_bps());
    (s, stats, utils)
}

#[test]
fn bytes_are_conserved_at_the_tor() {
    for rack_type in RackType::ALL {
        let (s, _, _) = measured_rack(rack_type, 5, Nanos::from_millis(50));
        let stats = s.sim.node::<Switch>(s.tor()).stats();
        assert_eq!(
            stats.rx_bytes,
            stats.tx_bytes + stats.dropped_bytes + s.sim.node::<Switch>(s.tor()).buffered_bytes(),
            "{}: rx != tx + dropped + buffered",
            rack_type.name()
        );
        assert_eq!(stats.unroutable, 0, "{}", rack_type.name());
    }
}

#[test]
fn asic_counters_match_switch_stats() {
    let (s, _, _) = measured_rack(RackType::Cache, 9, Nanos::from_millis(50));
    let stats = s.sim.node::<Switch>(s.tor()).stats();
    let n_ports = s.cfg.n_servers + s.cfg.clos.n_fabric;
    let counter_tx: u64 = (0..n_ports)
        .map(|i| s.counters.read(CounterId::TxBytes(PortId(i as u16))))
        .sum();
    let counter_rx: u64 = (0..n_ports)
        .map(|i| s.counters.read(CounterId::RxBytes(PortId(i as u16))))
        .sum();
    let counter_drops: u64 = (0..n_ports)
        .map(|i| s.counters.read(CounterId::Drops(PortId(i as u16))))
        .sum();
    assert_eq!(counter_tx, stats.tx_bytes);
    assert_eq!(counter_rx, stats.rx_bytes);
    assert_eq!(counter_drops, stats.dropped_packets);
}

#[test]
fn poller_achieves_paper_loss_rate_under_live_traffic() {
    let (_, stats, utils) = measured_rack(RackType::Hadoop, 3, Nanos::from_millis(100));
    assert!(
        stats.deadline_miss_fraction() < 0.05,
        "25us campaign missed {:.2}%",
        stats.deadline_miss_fraction() * 100.0
    );
    // ~4000 deadlines in 100ms at 25us.
    assert!(stats.polls > 3_800, "only {} polls", stats.polls);
    assert_eq!(stats.polls as usize, utils.len() + 1);
}

#[test]
fn utilization_is_physical() {
    for rack_type in RackType::ALL {
        let (_, _, utils) = measured_rack(rack_type, 11, Nanos::from_millis(50));
        let mut weighted = 0.0;
        let mut span = 0.0;
        for u in &utils {
            assert!(u.util >= 0.0, "{}: negative util", rack_type.name());
            // A single interval can read above 1.0: sample timestamps carry
            // per-poll jitter, so a measured interval may be shorter than
            // the window the bytes accumulated over. It is bounded by the
            // jitter ratio (~25us nominal vs >=18us measured).
            assert!(
                u.util < 1.4,
                "{}: util {} beyond jitter-explainable range",
                rack_type.name(),
                u.util
            );
            weighted += u.util * u.dt.as_secs_f64();
            span += u.dt.as_secs_f64();
        }
        // Over the whole campaign the jitter cancels: the time-weighted
        // mean cannot exceed line rate (minus wire overhead).
        assert!(
            weighted / span < 0.99,
            "{}: mean util {} at/above line rate",
            rack_type.name(),
            weighted / span
        );
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let (_, stats_a, utils_a) = measured_rack(RackType::Web, 77, Nanos::from_millis(40));
    let (_, stats_b, utils_b) = measured_rack(RackType::Web, 77, Nanos::from_millis(40));
    assert_eq!(stats_a, stats_b);
    assert_eq!(utils_a.len(), utils_b.len());
    for (a, b) in utils_a.iter().zip(&utils_b) {
        assert_eq!(a.t, b.t);
        assert_eq!(a.util, b.util);
    }
}

#[test]
fn burst_analysis_is_consistent_with_raw_utils() {
    let (_, _, utils) = measured_rack(RackType::Hadoop, 21, Nanos::from_millis(100));
    let analysis = extract_bursts(&utils, HOT_THRESHOLD);
    let hot_direct = utils.iter().filter(|u| u.util > HOT_THRESHOLD).count();
    assert_eq!(analysis.hot_samples, hot_direct);
    assert_eq!(analysis.total_samples, utils.len());
    let samples_in_bursts: usize = analysis.bursts.iter().map(|b| b.samples).sum();
    assert_eq!(samples_in_bursts, hot_direct);
    // Gaps fit strictly between bursts.
    assert_eq!(analysis.gaps.len(), analysis.bursts.len().saturating_sub(1));
}

#[test]
fn different_hours_change_load_through_the_whole_stack() {
    let mut peak = ScenarioConfig::new(RackType::Cache, 31);
    peak.hour = 20.0;
    let mut trough = ScenarioConfig::new(RackType::Cache, 31);
    trough.hour = 8.0;
    let run = |cfg: ScenarioConfig| {
        let mut s = build_scenario(cfg);
        s.sim.run_until(Nanos::from_millis(80));
        (0..s.cfg.n_servers + 4)
            .map(|i| s.counters.read(CounterId::RxBytes(PortId(i as u16))))
            .sum::<u64>()
    };
    let bytes_peak = run(peak);
    let bytes_trough = run(trough);
    assert!(
        (bytes_trough as f64) < 0.8 * bytes_peak as f64,
        "diurnal trough {bytes_trough} should be well below peak {bytes_peak}"
    );
}
