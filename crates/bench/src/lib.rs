//! # uburst-bench — experiment harnesses
//!
//! Shared machinery for the per-figure/table reproduction binaries (see
//! `src/bin/`) and the performance benchmarks (see `benches/`). Each binary
//! rebuilds one table or figure from the paper by running measured-rack
//! scenarios, attaching the collection framework, and printing the same
//! rows/series the paper reports.
//!
//! Set `EXP_SCALE=full` for longer campaigns (smoother distributions);
//! the default `quick` scale keeps every harness under a couple of minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchjson;
pub mod campaign;
pub mod figures;
pub mod fleet;
pub mod pearson_pool;
pub mod pool;
pub mod report;
pub mod runner;
pub mod scale;

pub use campaign::{
    measure_buffer_and_ports, measure_port_groups, measure_single_port, port_bps,
    representative_port, run_campaign_hardened, CampaignRun, CampaignSpec, NetSnapshot,
};
pub use fleet::{
    render_report, run_fleet_spec, run_fleet_spec_on, FleetRun, FleetSpec, SwitchMeta,
};
pub use pearson_pool::{correlation_matrix_pooled, correlation_matrix_pooled_on};
pub use pool::{run_jobs, run_jobs_on, run_parallel, run_parallel_on};
pub use report::{fmt_bytes, fmt_fraction, print_cdf_table, Table};
pub use runner::bench;
pub use scale::Scale;

/// Standard CDF evaluation points for burst-duration figures, microseconds.
pub const DURATION_POINTS_US: [f64; 12] = [
    25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1_000.0, 5_000.0, 20_000.0, 100_000.0,
];
