//! Snapshot rendering: Prometheus text, JSON, and the flamegraph rollup.
//!
//! All three renderings iterate `BTreeMap`s, so output is a pure function
//! of the recorded multiset of updates — the property the telemetry
//! determinism CI job diffs across thread counts. No wall-clock
//! timestamps appear anywhere in the output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::NS_BOUNDS;

/// Immutable view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is the
    /// overflow (`+Inf`) bucket. Bounds are [`NS_BOUNDS`].
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistSnapshot {
    /// Prometheus-style cumulative bucket counts (ends at `count`).
    pub fn cumulative(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .scan(0u64, |acc, &c| {
                *acc += c;
                Some(*acc)
            })
            .collect()
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Immutable view of one span path's aggregate stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed spans on this path.
    pub count: u64,
    /// Total simulated time across them, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// An ordered, immutable view of the whole registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Max-aggregated gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Span stats by `/`-separated path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

/// Splits `name{label="x"}` into `("name", Some("label=\"x\""))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Joins a base name with existing labels plus one extra label pair.
fn with_label(base: &str, labels: Option<&str>, extra: &str) -> String {
    match labels {
        Some(l) => format!("{base}{{{l},{extra}}}"),
        None => format!("{base}{{{extra}}}"),
    }
}

/// Fixed-format human duration used by the rollup: deterministic for a
/// given input, scaled to s/ms/µs/ns.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`; spans emit `uburst_span_{count,total_ns,max_ns}`
    /// families keyed by a `path` label.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            let line = format!("# TYPE {base} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };

        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.hists {
            let (base, labels) = split_labels(name);
            type_line(&mut out, base, "histogram");
            let cum = h.cumulative();
            for (i, c) in cum.iter().enumerate() {
                let le = if i < NS_BOUNDS.len() {
                    NS_BOUNDS[i].to_string()
                } else {
                    "+Inf".to_owned()
                };
                let series = with_label(&format!("{base}_bucket"), labels, &format!("le=\"{le}\""));
                let _ = writeln!(out, "{series} {c}");
            }
            let sum_name = match labels {
                Some(l) => format!("{base}_sum{{{l}}}"),
                None => format!("{base}_sum"),
            };
            let count_name = match labels {
                Some(l) => format!("{base}_count{{{l}}}"),
                None => format!("{base}_count"),
            };
            let _ = writeln!(out, "{sum_name} {}", h.sum);
            let _ = writeln!(out, "{count_name} {}", h.count);
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE uburst_span_count counter\n");
            for (path, s) in &self.spans {
                let _ = writeln!(out, "uburst_span_count{{path=\"{path}\"}} {}", s.count);
            }
            out.push_str("# TYPE uburst_span_total_ns counter\n");
            for (path, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "uburst_span_total_ns{{path=\"{path}\"}} {}",
                    s.total_ns
                );
            }
            out.push_str("# TYPE uburst_span_max_ns gauge\n");
            for (path, s) in &self.spans {
                let _ = writeln!(out, "uburst_span_max_ns{{path=\"{path}\"}} {}", s.max_ns);
            }
        }
        out
    }

    /// Renders the snapshot as a single stable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"buckets\": [{}], \"sum\": {}, \"count\": {}, \"max\": {}}}",
                json_escape(k),
                buckets.join(", "),
                h.sum,
                h.count,
                h.max
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"spans\": {");
        first = true;
        for (k, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                json_escape(k),
                s.count,
                s.total_ns,
                s.max_ns
            );
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push('}');
        out.push('\n');
        out
    }

    /// Rolls every counter and gauge under a name prefix into one
    /// deterministic text block — the per-fleet summary `ext_fleet`
    /// stamps onto its reports (e.g. `prefix_rollup("uburst_fleet_")`).
    ///
    /// Counters render in name order with a trailing sum; gauges follow
    /// (max-aggregated values, so no sum — adding maxima means nothing).
    /// Pure function of the snapshot: thread-count invariant like every
    /// other rendering here.
    pub fn prefix_rollup(&self, prefix: &str) -> String {
        let mut out = String::new();
        let mut total = 0u64;
        let mut n = 0usize;
        for (name, v) in self.counters.range(prefix.to_owned()..) {
            if !name.starts_with(prefix) {
                break;
            }
            let _ = writeln!(out, "  counter {name} {v}");
            total += v;
            n += 1;
        }
        if n > 1 {
            let _ = writeln!(out, "  counter {prefix}* (sum) {total}");
        }
        for (name, v) in self.gauges.range(prefix.to_owned()..) {
            if !name.starts_with(prefix) {
                break;
            }
            let _ = writeln!(out, "  gauge {name} {v}");
        }
        out
    }

    /// Flamegraph-style rollup of the recorded spans: paths nested by
    /// `/` prefix, each line showing count, total simulated time, and
    /// self time (total minus direct children).
    ///
    /// Ancestor paths that were never recorded directly appear as
    /// synthetic group nodes whose totals are the sum of their children.
    pub fn flame_rollup(&self) -> String {
        if self.spans.is_empty() {
            return String::new();
        }
        // Every node that must appear: recorded paths plus all ancestors.
        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // path -> (count, total)
        for (path, s) in &self.spans {
            totals
                .entry(path.clone())
                .and_modify(|e| {
                    e.0 += s.count;
                    e.1 += s.total_ns;
                })
                .or_insert((s.count, s.total_ns));
            let mut p = path.as_str();
            while let Some((parent, _)) = p.rsplit_once('/') {
                let e = totals.entry(parent.to_owned()).or_insert((0, 0));
                if !self.spans.contains_key(parent) {
                    // Synthetic group: aggregate the child into it.
                    e.0 += s.count;
                    e.1 += s.total_ns;
                }
                p = parent;
            }
        }
        // Direct-children totals, for self-time.
        let mut child_total: BTreeMap<&str, u64> = BTreeMap::new();
        for (path, &(_, total)) in &totals {
            if let Some((parent, _)) = path.rsplit_once('/') {
                *child_total.entry(parent).or_default() += total;
            }
        }
        let mut out = String::new();
        for (path, &(count, total)) in &totals {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let self_ns =
                total.saturating_sub(child_total.get(path.as_str()).copied().unwrap_or(0));
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{name}");
            let _ = writeln!(
                out,
                "  {label:<28} count {count:>9}  total {:>12}  self {:>12}",
                fmt_ns(total),
                fmt_ns(self_ns)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_split_and_merge() {
        assert_eq!(split_labels("a_total"), ("a_total", None));
        assert_eq!(
            split_labels("a_ns{mode=\"shared\"}"),
            ("a_ns", Some("mode=\"shared\""))
        );
        assert_eq!(
            with_label("a_ns_bucket", Some("mode=\"x\""), "le=\"250\""),
            "a_ns_bucket{mode=\"x\",le=\"250\"}"
        );
        assert_eq!(
            with_label("a_ns_bucket", None, "le=\"+Inf\""),
            "a_ns_bucket{le=\"+Inf\"}"
        );
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(2_500), "2.500us");
        assert_eq!(fmt_ns(1_234_567), "1.235ms");
        assert_eq!(fmt_ns(16_000_000_000), "16.000s");
    }

    #[test]
    fn json_is_well_formed_for_empty_and_escaped_names() {
        let empty = Snapshot::default();
        let j = empty.to_json();
        assert!(j.contains("\"counters\": {}"));
        let mut s = Snapshot::default();
        s.counters.insert("weird{q=\"a\\b\"}".into(), 1);
        let j = s.to_json();
        assert!(j.contains("weird{q=\\\"a\\\\b\\\"}"));
    }

    #[test]
    fn prefix_rollup_selects_and_sums() {
        let mut s = Snapshot::default();
        s.counters.insert("uburst_fleet_rejoins_total".into(), 3);
        s.counters
            .insert("uburst_fleet_quarantines_total".into(), 5);
        s.counters.insert("uburst_ship_acked_total".into(), 99);
        s.gauges.insert("uburst_fleet_switches".into(), 200);
        s.gauges.insert("uburst_ship_window_peak".into(), 32);
        let r = s.prefix_rollup("uburst_fleet_");
        assert!(r.contains("counter uburst_fleet_quarantines_total 5"));
        assert!(r.contains("counter uburst_fleet_rejoins_total 3"));
        assert!(r.contains("counter uburst_fleet_* (sum) 8"));
        assert!(r.contains("gauge uburst_fleet_switches 200"));
        assert!(!r.contains("ship"), "prefix filter is exact");
        // A single matching counter gets no redundant sum line.
        let single = s.prefix_rollup("uburst_ship_acked");
        assert!(single.contains("counter uburst_ship_acked_total 99"));
        assert!(!single.contains("(sum)"));
        // Empty prefix space renders empty, not a header.
        assert_eq!(s.prefix_rollup("nope_"), "");
    }

    #[test]
    fn flame_rollup_nests_and_computes_self_time() {
        let mut s = Snapshot::default();
        s.spans.insert(
            "campaign".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 1_000,
                max_ns: 600,
            },
        );
        s.spans.insert(
            "campaign/poll".into(),
            SpanSnapshot {
                count: 10,
                total_ns: 700,
                max_ns: 90,
            },
        );
        let flame = s.flame_rollup();
        let lines: Vec<String> = flame
            .lines()
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("campaign"));
        assert!(lines[0].contains("self 300ns"), "{}", lines[0]);
        assert!(lines[1].contains("poll"));
        assert!(lines[1].contains("self 700ns"));
    }

    #[test]
    fn flame_rollup_synthesizes_missing_parents() {
        let mut s = Snapshot::default();
        s.spans.insert(
            "wal/append".into(),
            SpanSnapshot {
                count: 4,
                total_ns: 400,
                max_ns: 100,
            },
        );
        s.spans.insert(
            "wal/fsync".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 100,
                max_ns: 50,
            },
        );
        let flame = s.flame_rollup();
        let lines: Vec<String> = flame
            .lines()
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("wal"));
        assert!(lines[0].contains("total 500ns"));
        assert!(lines[0].contains("self 0ns"), "group node has no self time");
    }
}
