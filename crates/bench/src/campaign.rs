//! Running measurement campaigns against scenarios.
//!
//! Mirrors the paper's methodology (§4.1/§4.2): build a measured rack, let
//! it warm up, attach the collection framework to the ToR's ASIC, poll for
//! a campaign window, convert cumulative byte series to per-interval
//! utilization.

use uburst_asic::{AccessModel, CounterId, FaultInjector, FaultPlan, FaultStats};
use uburst_core::degrade::DegradationPolicy;
use uburst_core::poller::{Poller, RetryPolicy};
use uburst_core::series::{Series, UtilSample};
use uburst_core::spec::CampaignConfig;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{build_scenario, Scenario, ScenarioConfig};

/// The outcome of one campaign on one rack instance.
pub struct CampaignRun {
    /// The scenario after the run (counters, stats, hosts all inspectable).
    pub scenario: Scenario,
    /// `(counter, series)` pairs in campaign order.
    pub series: Vec<(CounterId, Series)>,
    /// Poller behaviour during the campaign.
    pub poller_stats: uburst_core::poller::PollerStats,
    /// Injected-fault counts, when the campaign ran under a fault plan.
    pub fault_stats: Option<FaultStats>,
    /// Final adaptive-degradation level (0 unless degradation was armed).
    pub degrade_level: u32,
}

impl CampaignRun {
    /// The series for `counter`, panicking if it was not in the campaign.
    pub fn series_for(&self, counter: CounterId) -> &Series {
        &self
            .series
            .iter()
            .find(|(c, _)| *c == counter)
            .unwrap_or_else(|| panic!("counter {counter:?} not in campaign"))
            .1
    }

    /// Utilization samples for a TX byte counter on a port with link rate
    /// `bps`.
    pub fn utilization(&self, counter: CounterId, bps: u64) -> Vec<UtilSample> {
        self.series_for(counter).utilization(bps)
    }
}

/// Runs one campaign on a freshly built scenario: warm up, then poll
/// `counters` together at `interval` for `span`.
pub fn run_campaign(
    cfg: ScenarioConfig,
    counters: Vec<CounterId>,
    interval: Nanos,
    span: Nanos,
) -> CampaignRun {
    run_campaign_hardened(
        cfg,
        counters,
        interval,
        span,
        None,
        RetryPolicy::default(),
        None,
    )
}

/// [`run_campaign`] with the robustness layer armed: an optional
/// [`FaultPlan`] applied to every counter read, a retry policy for failed
/// transactions, and optional adaptive degradation under overload.
pub fn run_campaign_hardened(
    cfg: ScenarioConfig,
    counters: Vec<CounterId>,
    interval: Nanos,
    span: Nanos,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    degradation: Option<DegradationPolicy>,
) -> CampaignRun {
    let seed = cfg.seed;
    let mut scenario = build_scenario(cfg);
    let warmup = scenario.recommended_warmup();
    scenario.sim.run_until(warmup);
    let campaign = CampaignConfig::group("bench", counters, interval);
    let mut poller = Poller::in_memory(
        scenario.counters.clone(),
        AccessModel::default(),
        campaign,
        seed ^ 0x9e37_79b9,
    )
    .expect("bench campaign is well-formed")
    .with_retry(retry);
    if let Some(plan) = faults {
        poller = poller.with_faults(FaultInjector::new(plan));
    }
    if let Some(policy) = degradation {
        poller = poller.with_degradation(policy);
    }
    let stop = warmup + span;
    let id = poller
        .spawn(&mut scenario.sim, warmup, stop)
        .expect("bench campaign window is non-empty");
    // Slack past the stop so the final in-flight poll completes.
    scenario.sim.run_until(stop + Nanos::from_millis(1));
    let poller_ref = scenario.sim.node_mut::<Poller>(id);
    let poller_stats = poller_ref.stats();
    let fault_stats = poller_ref.fault_stats();
    let degrade_level = poller_ref.degrade_level();
    let series = poller_ref.take_series().expect("in-memory campaign");
    CampaignRun {
        scenario,
        series,
        poller_stats,
        fault_stats,
        degrade_level,
    }
}

/// The port a single-port campaign measures for a rack type, chosen
/// pseudo-randomly from the seed the way the paper picked "a random port"
/// per rack. Bursts concentrate where the rack's bottleneck is (Fig. 9):
/// Web and Hadoop burst toward servers, so a random active port is a
/// downlink; Cache bursts on its uplinks, so the representative port is an
/// uplink (a random Cache *downlink* is ~idle — it only carries requests).
pub fn representative_port(cfg: &ScenarioConfig) -> PortId {
    let salt = (cfg.seed as usize).wrapping_mul(31);
    match cfg.rack_type {
        uburst_workloads::RackType::Cache => {
            PortId((cfg.n_servers + salt % cfg.clos.n_fabric) as u16)
        }
        _ => PortId((salt % cfg.n_servers) as u16),
    }
}

/// The link speed of a ToR port in bits/sec (downlink vs. uplink).
pub fn port_bps(cfg: &ScenarioConfig, port: PortId) -> u64 {
    if (port.0 as usize) < cfg.n_servers {
        cfg.clos.server_link.bandwidth_bps
    } else {
        cfg.clos.uplink.bandwidth_bps
    }
}

/// Single-port, single-counter campaign at the paper's highest resolution:
/// the egress byte counter of one ToR port. `port_index` selects an
/// explicit port (`None` uses [`representative_port`]).
pub fn measure_single_port(
    cfg: ScenarioConfig,
    port_index: Option<usize>,
    interval: Nanos,
    span: Nanos,
) -> (CampaignRun, PortId) {
    let port = match port_index {
        Some(i) => PortId(i as u16),
        None => representative_port(&cfg),
    };
    let run = run_campaign(cfg, vec![CounterId::TxBytes(port)], interval, span);
    (run, port)
}

/// Multi-port campaign: TX+RX byte counters for each requested port,
/// aligned on the same poll timestamps.
pub fn measure_port_groups(
    cfg: ScenarioConfig,
    ports: &[PortId],
    interval: Nanos,
    span: Nanos,
) -> CampaignRun {
    let mut counters = Vec::with_capacity(ports.len() * 2);
    for &p in ports {
        counters.push(CounterId::TxBytes(p));
    }
    for &p in ports {
        counters.push(CounterId::RxBytes(p));
    }
    run_campaign(cfg, counters, interval, span)
}

/// All-port TX bytes plus the shared-buffer peak register — the Fig. 9 /
/// Fig. 10 campaign.
pub fn measure_buffer_and_ports(
    cfg: ScenarioConfig,
    interval: Nanos,
    span: Nanos,
) -> (CampaignRun, Vec<PortId>) {
    let all_ports: Vec<PortId> = (0..(cfg.n_servers + cfg.clos.n_fabric))
        .map(|i| PortId(i as u16))
        .collect();
    let mut counters: Vec<CounterId> = all_ports.iter().map(|&p| CounterId::TxBytes(p)).collect();
    counters.push(CounterId::BufferPeak);
    let run = run_campaign(cfg, counters, interval, span);
    (run, all_ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_workloads::scenario::RackType;

    #[test]
    fn single_port_campaign_produces_util_series() {
        let cfg = ScenarioConfig::new(RackType::Web, 42);
        let bps = 10_000_000_000;
        let (run, port) =
            measure_single_port(cfg, Some(3), Nanos::from_micros(25), Nanos::from_millis(30));
        assert_eq!(port, PortId(3));
        let util = run.utilization(CounterId::TxBytes(port), bps);
        assert!(util.len() > 800, "only {} samples", util.len());
        assert!(util.iter().all(|u| u.util >= 0.0));
        // The poller missed ~1% of deadlines, not more.
        assert!(run.poller_stats.deadline_miss_fraction() < 0.05);
    }

    #[test]
    fn port_groups_are_aligned() {
        let cfg = ScenarioConfig::new(RackType::Cache, 7);
        let ports = [PortId(0), PortId(1)];
        let run = measure_port_groups(cfg, &ports, Nanos::from_micros(100), Nanos::from_millis(20));
        let a = run.series_for(CounterId::TxBytes(PortId(0)));
        let b = run.series_for(CounterId::RxBytes(PortId(1)));
        assert_eq!(a.ts, b.ts, "group campaign series share timestamps");
    }

    #[test]
    fn buffer_campaign_includes_peak() {
        let cfg = ScenarioConfig::new(RackType::Hadoop, 9);
        let (run, ports) =
            measure_buffer_and_ports(cfg, Nanos::from_micros(300), Nanos::from_millis(20));
        assert_eq!(ports.len(), 24 + 4);
        let peak = run.series_for(CounterId::BufferPeak);
        assert!(!peak.is_empty());
        // Hadoop must have put something in the buffer at some point.
        assert!(peak.vs.iter().any(|&v| v > 0), "buffer never occupied");
    }

    #[test]
    #[should_panic(expected = "not in campaign")]
    fn missing_counter_panics() {
        let cfg = ScenarioConfig::new(RackType::Web, 1);
        let (run, _) =
            measure_single_port(cfg, Some(0), Nanos::from_micros(100), Nanos::from_millis(5));
        run.series_for(CounterId::Drops(PortId(0)));
    }
}
