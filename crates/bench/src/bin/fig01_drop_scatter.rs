//! Reproduction harness for the paper's fig01. See
//! `uburst_bench::figures::fig01` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig01::run(scale));
}
