//! Runs every table/figure harness and prints a combined report —
//! the data behind EXPERIMENTS.md.
//!
//! Experiments run on the parallel engine (experiment-level jobs on top of
//! each harness's campaign-level jobs; the shared worker budget caps total
//! threads at `Scale::threads()`). Reports are printed in paper order and
//! are byte-identical for any `UBURST_THREADS` value; per-experiment
//! timings go to stderr so stdout stays deterministic.

use std::time::Instant;

fn main() {
    let scale = uburst_bench::Scale::from_env();
    let t0 = Instant::now();
    println!("uburst reproduction report (scale: {})", scale.label());
    println!("====================================================");
    let experiments = uburst_bench::figures::all_experiments();
    let reports = uburst_bench::run_jobs(experiments, |(id, title, runner)| {
        let t = Instant::now();
        let report = runner(scale);
        eprintln!("[{id} completed in {:.1}s]", t.elapsed().as_secs_f64());
        (id, title, report)
    });
    for (id, title, report) in reports {
        println!("\n### {id}: {title}\n");
        print!("{report}");
    }
    eprintln!(
        "[all experiments completed in {:.1}s on {} thread(s)]",
        t0.elapsed().as_secs_f64(),
        uburst_bench::Scale::threads()
    );
}
