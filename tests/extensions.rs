//! Integration tests for the extension mechanisms (flowlet ECMP, ECN/DCTCP,
//! fabric instrumentation, FCT records) wired through full scenarios.

use uburst::prelude::*;
use uburst::sim::routing::EcmpMode;
use uburst::sim::switch::Switch;
use uburst::workloads::host::AppHost;

fn run_rack(mut cfg: ScenarioConfig, millis: u64) -> Scenario {
    cfg.seed ^= 0xE47;
    let mut s = build_scenario(cfg);
    s.sim.run_until(Nanos::from_millis(millis));
    s
}

#[test]
fn flowlet_mode_routes_all_traffic() {
    let mut cfg = ScenarioConfig::new(RackType::Hadoop, 91);
    cfg.clos.ecmp_mode = EcmpMode::Flowlet {
        gap: Nanos::from_micros(100),
    };
    let s = run_rack(cfg, 80);
    let stats = s.sim.node::<Switch>(s.tor()).stats();
    assert_eq!(stats.unroutable, 0);
    assert!(stats.tx_packets > 10_000, "traffic flowed: {stats:?}");
    // All four uplinks carried something.
    for &p in s.uplink_ports() {
        assert!(
            s.counters.read(CounterId::TxBytes(p)) > 0,
            "uplink {p:?} unused under flowlets"
        );
    }
}

#[test]
fn ecn_scenario_reduces_drops_at_same_load() {
    let drops_with = |ecn: bool| {
        let mut cfg = ScenarioConfig::new(RackType::Hadoop, 92);
        cfg.load = 2.0;
        if ecn {
            cfg.clos.tor_switch.ecn_threshold = Some(40 << 10);
            cfg.transport.ecn = true;
        }
        let s = run_rack(cfg, 120);
        s.sim.node::<Switch>(s.tor()).stats().dropped_packets
    };
    let plain = drops_with(false);
    let ecn = drops_with(true);
    assert!(
        plain > 50,
        "baseline must drop under load 2.0 (got {plain})"
    );
    assert!(
        ecn * 2 < plain,
        "ECN should at least halve drops: {ecn} vs {plain}"
    );
}

#[test]
fn fabric_instrumentation_counts_real_traffic() {
    let mut cfg = ScenarioConfig::new(RackType::Cache, 93);
    cfg.instrument_fabric = true;
    let s = run_rack(cfg, 80);
    assert_eq!(s.fabric_counters.len(), 4);
    // Cache responses leave via the uplinks, so every fabric switch's
    // rack-facing port saw traffic in both directions.
    let mut total_rx = 0;
    for fc in &s.fabric_counters {
        total_rx += fc.read(CounterId::RxBytes(PortId(0)));
    }
    assert!(total_rx > 1_000_000, "fabric rx {total_rx}");
    // Fabric counters are consistent with the fabric switches' own stats.
    let fabric_stats_rx: u64 = s
        .handles
        .fabrics
        .iter()
        .map(|&f| s.sim.node::<Switch>(f).stats().rx_bytes)
        .sum();
    let fabric_counter_rx: u64 = s
        .fabric_counters
        .iter()
        .map(|fc| fc.read(CounterId::RxBytes(PortId(0))) + fc.read(CounterId::RxBytes(PortId(1))))
        .sum();
    assert_eq!(fabric_stats_rx, fabric_counter_rx);
}

#[test]
fn uninstrumented_scenarios_have_no_fabric_counters() {
    let s = run_rack(ScenarioConfig::new(RackType::Web, 94), 40);
    assert!(s.fabric_counters.is_empty());
}

#[test]
fn fct_records_flow_through_scenarios() {
    let s = run_rack(ScenarioConfig::new(RackType::Cache, 95), 100);
    let mut total = 0usize;
    for &h in &s.rack_hosts {
        for r in s.sim.node::<AppHost>(h).fcts() {
            assert!(r.fct > Nanos::ZERO);
            assert!(r.fct < Nanos::from_millis(100));
            total += 1;
        }
    }
    assert!(
        total > 500,
        "cache servers completed {total} response flows"
    );
}

#[test]
fn pacing_reduces_hot_fraction_end_to_end() {
    let hot_with = |pace: Option<u64>| {
        let mut cfg = ScenarioConfig::new(RackType::Cache, 96);
        cfg.nic_pace_bps = pace;
        let uplink = PortId(cfg.n_servers as u16);
        let bps = cfg.clos.uplink.bandwidth_bps;
        let mut s = build_scenario(cfg);
        let warmup = s.recommended_warmup();
        s.sim.run_until(warmup);
        let campaign =
            CampaignConfig::single("bytes", CounterId::TxBytes(uplink), Nanos::from_micros(25));
        let poller = Poller::in_memory(s.counters.clone(), AccessModel::default(), campaign, 5)
            .expect("valid campaign");
        let stop = warmup + Nanos::from_millis(120);
        let id = poller
            .spawn(&mut s.sim, warmup, stop)
            .expect("valid window");
        s.sim.run_until(stop + Nanos::from_millis(1));
        let series = &s
            .sim
            .node_mut::<Poller>(id)
            .take_series()
            .expect("in-memory")[0]
            .1;
        extract_bursts(&series.utilization(bps), HOT_THRESHOLD).hot_fraction()
    };
    let unpaced = hot_with(None);
    let paced = hot_with(Some(2_500_000_000));
    assert!(
        paced < unpaced,
        "2.5G pacing should reduce uplink hot fraction: {paced} vs {unpaced}"
    );
}
