//! Workload calibration probe.
//!
//! Not a paper figure: prints the shape metrics every figure depends on
//! (utilization, hot fractions, burst duration quantiles, directionality,
//! correlation, burstiness ratios) for each rack type, next to the paper's
//! target values, so workload parameters can be tuned. Run with
//! `cargo run --release -p uburst-bench --bin calibrate`.

use uburst_analysis::{
    extract_bursts, fit_transition_matrix, hot_chain, mean_offdiagonal, pearson, Ecdf,
    HOT_THRESHOLD,
};
use uburst_asic::CounterId;
use uburst_bench::campaign::{measure_port_groups, measure_single_port, port_bps};
use uburst_bench::report::Table;
use uburst_bench::run_jobs;
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

fn main() {
    let span = Nanos::from_millis(
        std::env::var("CAL_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300),
    );
    let interval = Nanos::from_micros(25);

    let mut table = Table::new(&[
        "rack",
        "port",
        "util",
        "hot%",
        "bursts",
        "p50us",
        "p90us",
        "p99us",
        "maxus",
        "gap_p50us",
        "markov_r",
    ]);

    // --- single random downlink at 25us (Fig 3/4/6 view), one campaign
    // per (rack type, seed), run on the parallel engine -------------------
    let mut probe_jobs = Vec::new();
    for rack_type in RackType::ALL {
        for seed in [1u64, 2, 3] {
            probe_jobs.push((rack_type, seed));
        }
    }
    let rows = run_jobs(probe_jobs, |(rack_type, seed)| {
        let cfg = ScenarioConfig::new(rack_type, seed);
        let n_servers = cfg.n_servers;
        let port = uburst_bench::representative_port(&cfg);
        let port_speed = port_bps(&cfg, port);
        let (run, port) = measure_single_port(cfg, Some(port.0 as usize), interval, span);
        let util = run.utilization(CounterId::TxBytes(port), port_speed);
        let mean_util: f64 = util.iter().map(|u| u.util).sum::<f64>() / util.len() as f64;
        let analysis = extract_bursts(&util, HOT_THRESHOLD);
        let chain = hot_chain(&util, HOT_THRESHOLD);
        let m = fit_transition_matrix(&chain);
        let durations: Vec<f64> = analysis
            .durations()
            .iter()
            .map(|d| d.as_micros_f64())
            .collect();
        let gaps: Vec<f64> = analysis.gaps.iter().map(|g| g.as_micros_f64()).collect();
        let (p50, p90, p99, maxd) = if durations.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            let e = Ecdf::new(durations);
            (e.quantile(0.5), e.quantile(0.9), e.quantile(0.99), e.max())
        };
        let gap50 = if gaps.is_empty() {
            0.0
        } else {
            Ecdf::new(gaps).quantile(0.5)
        };
        [
            format!("{}/{}", rack_type.name(), seed),
            format!(
                "{}{}",
                if (port.0 as usize) < n_servers {
                    "dn"
                } else {
                    "up"
                },
                port.0
            ),
            format!("{:.3}", mean_util),
            format!("{:.1}", analysis.hot_fraction() * 100.0),
            format!("{}", analysis.bursts.len()),
            format!("{p50:.0}"),
            format!("{p90:.0}"),
            format!("{p99:.0}"),
            format!("{maxd:.0}"),
            format!("{gap50:.0}"),
            format!("{:.1}", m.likelihood_ratio()),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    table.print();

    // --- directionality + correlation at coarser granularity -------------
    let mut t2 = Table::new(&[
        "rack",
        "dn_util",
        "up_util",
        "hot_up_share",
        "corr_all",
        "corr_pod",
        "drops",
        "drop_dir_dn%",
    ]);
    let rows2 = run_jobs(RackType::ALL.to_vec(), |rack_type| {
        let cfg = ScenarioConfig::new(rack_type, 11);
        let n = cfg.n_servers;
        let all_ports: Vec<PortId> = (0..(n + 4)).map(|i| PortId(i as u16)).collect();
        let bps: Vec<u64> = all_ports.iter().map(|&p| port_bps(&cfg, p)).collect();
        let run = measure_port_groups(cfg, &all_ports, Nanos::from_micros(300), span);
        let utils: Vec<Vec<f64>> = all_ports
            .iter()
            .zip(&bps)
            .map(|(&p, &b)| {
                run.utilization(CounterId::TxBytes(p), b)
                    .iter()
                    .map(|u| u.util)
                    .collect()
            })
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let dn_util = mean(&utils[..n].iter().map(|u| mean(u)).collect::<Vec<_>>());
        let up_util = mean(&utils[n..].iter().map(|u| mean(u)).collect::<Vec<_>>());
        let hot = |v: &[f64]| v.iter().filter(|&&u| u > HOT_THRESHOLD).count();
        let hot_dn: usize = utils[..n].iter().map(|u| hot(u)).sum();
        let hot_up: usize = utils[n..].iter().map(|u| hot(u)).sum();
        let hot_share = if hot_dn + hot_up == 0 {
            0.0
        } else {
            hot_up as f64 / (hot_dn + hot_up) as f64
        };
        // Server correlation on downlink utilization.
        let m = uburst_bench::correlation_matrix_pooled(&utils[..n]);
        let corr_all = mean_offdiagonal(&m);
        // Mean correlation within pods of 4 (cache structure).
        let mut pod_sum = 0.0;
        let mut pod_cnt = 0;
        for pod_start in (0..n).step_by(4) {
            for i in pod_start..(pod_start + 4).min(n) {
                for j in (i + 1)..(pod_start + 4).min(n) {
                    pod_sum += pearson(&utils[i], &utils[j]);
                    pod_cnt += 1;
                }
            }
        }
        let corr_pod = pod_sum / pod_cnt.max(1) as f64;
        // Drops and their direction (from the run's reduced snapshot).
        let dn_drops = run.net.downlink_drops(n);
        let up_drops = run.net.uplink_drops(n);
        let total_drops = dn_drops + up_drops;
        [
            rack_type.name().to_string(),
            format!("{dn_util:.3}"),
            format!("{up_util:.3}"),
            format!("{:.2}", hot_share),
            format!("{corr_all:.3}"),
            format!("{corr_pod:.3}"),
            format!("{total_drops}"),
            format!(
                "{:.0}",
                if total_drops == 0 {
                    0.0
                } else {
                    dn_drops as f64 / total_drops as f64 * 100.0
                }
            ),
        ]
    });
    for row in &rows2 {
        t2.row(row);
    }
    t2.print();

    println!();
    println!("paper targets:");
    println!("  Web:    util~0.05-0.1, p90 dur ~50us, r~120, corr~0, hot mostly downlink");
    println!("  Cache:  util moderate, p90 dur ~100-200us, r~45, corr_pod >> corr_all, hot mostly uplink");
    println!("  Hadoop: util~0.2-0.4, p90 dur <=200us tail to 500us, r~15, corr modest, hot mostly downlink (18% uplink)");
    println!("  drops ~90% toward servers overall");
}
