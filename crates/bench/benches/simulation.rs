//! Benchmarks for the simulator: host time to simulate fixed spans of each
//! measured-rack scenario, and raw event throughput.
//!
//! Self-contained `Instant`-based harness (no external bench framework);
//! run with `cargo bench --bench simulation`.

use std::hint::black_box;
use std::time::Instant;

use uburst_bench::benchjson::BenchRecorder;
use uburst_bench::scale::Scale;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{build_scenario, RackType, ScenarioConfig};

fn bench<F: FnMut() -> u64>(rec: &mut BenchRecorder, name: &str, iters: usize, mut f: F) -> f64 {
    let iters = Scale::from_env().bench_iters(iters);
    let mut sink = black_box(f()); // warmup
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink = sink.wrapping_add(black_box(f()));
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = times[times.len() / 2];
    println!(
        "{name:<28} median {:>9.2} ms   best {:>9.2} ms",
        median * 1e3,
        times[0] * 1e3
    );
    rec.record(name, median * 1e3, times[0] * 1e3, iters as u32);
    black_box(sink);
    median
}

fn main() {
    let mut rec = BenchRecorder::new("simulation");
    println!("== simulate 20ms of each rack scenario ==");
    for rack_type in RackType::ALL {
        bench(&mut rec, rack_type.name(), 10, || {
            let mut s = build_scenario(ScenarioConfig::new(rack_type, 9));
            s.sim.run_until(Nanos::from_millis(20));
            s.sim.dispatched()
        });
    }

    println!("== DES event rate (heaviest scenario) ==");
    let events = {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    };
    let median = bench(&mut rec, "hadoop_20ms_events", 10, || {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    });
    println!(
        "{events} events in {:.2} ms -> {:.1} M events/s",
        median * 1e3,
        events as f64 / median / 1e6
    );
    rec.flush();
}
