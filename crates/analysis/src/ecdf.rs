//! Empirical cumulative distribution functions.
//!
//! Every CDF figure in the paper (Figs. 3, 4, 6, 7) is an ECDF over one of
//! the derived per-sample quantities; this module is the shared machinery.

/// An empirical CDF over `f64` observations.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from unsorted observations. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics on NaN/infinite input or an empty sample.
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "empty sample");
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite observation");
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); present for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of observations `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        // partition_point gives the first index with value > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in [0, 1], by the nearest-rank method
    /// (what the paper's pXX notation means).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sorted observations (read-only view).
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF at each of `points`, yielding `(x, F(x))` rows —
    /// the series a figure harness prints.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.5), 0.5);
        assert_eq!(e.fraction_at_or_below(4.0), 1.0);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.9), 90.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
        assert!((e.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_single_point() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.quantile(0.0), 7.0);
        assert_eq!(e.quantile(0.5), 7.0);
        assert_eq!(e.quantile(1.0), 7.0);
    }

    #[test]
    fn ties_are_counted() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
    }

    #[test]
    fn curve_evaluates_points() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        let c = e.curve(&[0.0, 1.0, 3.0]);
        assert_eq!(c, vec![(0.0, 0.0), (1.0, 0.5), (3.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }
}
