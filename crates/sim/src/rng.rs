//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own PRNG (xoshiro256**) instead of depending on
//! the `rand` crate so that every experiment is bit-reproducible from a seed
//! across platforms and across `rand` version bumps. The distribution
//! samplers implemented here are the ones the workload models need:
//! exponential (Poisson arrivals), normal/lognormal (response sizes),
//! Pareto (heavy-tailed ON periods), and uniform utilities.

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
///
/// This is the generator family recommended by its authors for all-purpose
/// simulation use; it is small, fast, and passes BigCrush.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from the Box–Muller pair.
    spare_normal: Option<f64>,
}

/// SplitMix64 step, used to expand a single `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is fine;
    /// SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; used to give every node its own
    /// stream so that adding a node never perturbs another node's randomness.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean (inverse-CDF method). The mean is the
    /// natural parameterization for inter-arrival times.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller, caching the spare variate.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln(u) is finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Lognormal with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Pareto (type I) with minimum `scale` and tail index `shape`.
    /// Smaller `shape` means a heavier tail; `shape <= 1` has infinite mean.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        scale / (1.0 - self.f64()).powf(1.0 / shape)
    }

    /// Samples `k` distinct indices from `[0, n)` using Floyd's algorithm.
    /// Returned order is insertion order of Floyd's method (effectively
    /// arbitrary but deterministic for a given RNG state).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below((j + 1) as u64) as usize;
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }

    /// Picks one element of a slice uniformly.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10_000; a 10% tolerance is ~30 sigma.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = Rng::new(19);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(2.0, 0.7)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of lognormal is exp(mu).
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = Rng::new(23);
        for _ in 0..10_000 {
            assert!(r.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::new(29);
        for _ in 0..100 {
            let s = r.sample_indices(20, 8);
            assert_eq!(s.len(), 8);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut r = Rng::new(31);
        let mut s = r.sample_indices(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(37);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
