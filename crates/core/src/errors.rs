//! Typed errors for the collection pipeline.
//!
//! The pipeline is a best-effort production service (§4.1): misconfiguration
//! and partial failure must surface as values the caller can route, log, or
//! degrade on — never as panics that would take the switch CPU's sampling
//! loop (or the collector tier) down with them.

use std::fmt;

use uburst_sim::time::Nanos;

/// Errors raised while configuring or running a [`crate::Poller`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollError {
    /// The campaign polls no counters.
    EmptyCampaign,
    /// The campaign's target interval is zero.
    ZeroInterval,
    /// `spawn` was asked for a campaign window with `stop <= start`.
    EmptyWindow {
        /// Requested campaign start.
        start: Nanos,
        /// Requested campaign stop.
        stop: Nanos,
    },
    /// A result accessor needed a [`crate::MemorySink`] output, but the
    /// poller ships to a channel (or a custom sink).
    NotMemorySink,
}

impl fmt::Display for PollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PollError::EmptyCampaign => write!(f, "campaign with no counters"),
            PollError::ZeroInterval => write!(f, "zero sampling interval"),
            PollError::EmptyWindow { start, stop } => {
                write!(f, "empty campaign window [{start}, {stop})")
            }
            PollError::NotMemorySink => {
                write!(f, "poller output is not a MemorySink")
            }
        }
    }
}

impl std::error::Error for PollError {}

/// Errors raised by the sequenced shipping layer ([`crate::ship`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipError {
    /// The shipper's outstanding-batch memory (in-flight window plus
    /// untransmitted backlog) is at its configured cap and the offered
    /// batch was refused. This is what a stalled aggregator looks like
    /// from the switch: the caller must shed (and account) the batch
    /// rather than buffer without bound.
    WindowExhausted {
        /// The source whose shipper is saturated.
        source: crate::batch::SourceId,
        /// Outstanding batches (window + backlog) at refusal time.
        outstanding: usize,
    },
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::WindowExhausted {
                source,
                outstanding,
            } => write!(
                f,
                "shipper for source {} exhausted: {outstanding} batches outstanding",
                source.0
            ),
        }
    }
}

impl std::error::Error for ShipError {}

/// Errors raised while starting or stopping a [`crate::Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectorError {
    /// `start` was asked for a pool of zero workers.
    NoWorkers,
    /// `start` was asked for a zero-capacity batch queue.
    ZeroCapacity,
    /// The OS refused to spawn a worker thread.
    Spawn(String),
    /// A worker could not be joined at shutdown. Contained panics inside
    /// the ingest loop do **not** produce this — the supervisor absorbs
    /// those and restarts the worker; this is the outer join failing.
    WorkerLost {
        /// Index of the unjoinable worker.
        worker: usize,
    },
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::NoWorkers => write!(f, "collector needs at least one worker"),
            CollectorError::ZeroCapacity => {
                write!(f, "collector queue needs nonzero capacity")
            }
            CollectorError::Spawn(e) => write!(f, "failed to spawn collector worker: {e}"),
            CollectorError::WorkerLost { worker } => {
                write!(f, "collector worker {worker} could not be joined")
            }
        }
    }
}

impl std::error::Error for CollectorError {}

/// Errors raised by the write-ahead log ([`crate::wal`]). Not `Clone`/
/// `PartialEq` like its siblings: it wraps [`std::io::Error`], which is
/// neither — callers match on the variant (or on
/// [`crate::failpoint::is_injected_crash`] for the `Io` payload) instead.
#[derive(Debug)]
pub enum WalError {
    /// The storage backend failed (includes injected crashes from the
    /// fault harness; probe with [`crate::failpoint::is_injected_crash`]).
    Io(std::io::Error),
    /// A segment was structurally unusable beyond torn-tail repair.
    BadSegment {
        /// Index of the offending segment.
        index: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl WalError {
    /// Whether this error is a deterministic crash injected by the fault
    /// harness (as opposed to a real storage failure).
    pub fn is_injected_crash(&self) -> bool {
        match self {
            WalError::Io(e) => crate::failpoint::is_injected_crash(e),
            WalError::BadSegment { .. } => false,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::BadSegment { index, reason } => {
                write!(f, "wal segment {index} unusable: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::BadSegment { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        assert_eq!(
            PollError::EmptyCampaign.to_string(),
            "campaign with no counters"
        );
        let e = PollError::EmptyWindow {
            start: Nanos::from_micros(5),
            stop: Nanos::from_micros(5),
        };
        assert!(e.to_string().contains("empty campaign window"));
        assert!(CollectorError::Spawn("nope".into())
            .to_string()
            .contains("nope"));
        assert!(CollectorError::WorkerLost { worker: 3 }
            .to_string()
            .contains('3'));
        let w = WalError::BadSegment {
            index: 4,
            reason: "magic mismatch".into(),
        };
        assert!(w.to_string().contains("segment 4"));
        assert!(!w.is_injected_crash());
        let crash = WalError::Io(crate::failpoint::crash_error());
        assert!(crash.is_injected_crash());
        assert!(std::error::Error::source(&crash).is_some());
    }
}
