//! # uburst-core — the high-resolution counter collection framework
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§4.1): a framework that polls switch ASIC counters at 10s–100s of
//! microseconds with minimal impact on switch operation. It provides:
//!
//! * [`poller`] — the best-effort sampling loop, run on a modeled switch CPU
//!   inside the simulation, paying real (simulated) time per counter read
//!   and suffering kernel-jitter-induced missed intervals; failed reads are
//!   retried with bounded exponential backoff and narrow counters are
//!   wrap-decoded to full width;
//! * [`degrade`] — the adaptive controller that sheds counters or stretches
//!   the interval when the loop cannot keep up, and recovers when it can;
//! * [`errors`] — typed [`PollError`] / [`CollectorError`] values for every
//!   configuration and runtime failure the pipeline can surface;
//! * [`spec`] — measurement campaigns and the dedicated vs. shared core
//!   timing model;
//! * [`tuning`] — automated minimum-interval search at a target sampling
//!   loss (the paper's manual Table 1 procedure);
//! * [`batch`] / [`output`] — sample batching toward the collector, with
//!   block/drop-oldest/drop-newest shipping policies and per-source loss
//!   accounting;
//! * [`channel`] — the in-repo bounded MPMC channel the shipping path and
//!   collector share;
//! * [`collector`] / [`store`] — the (actually multithreaded) collector
//!   service — supervised workers that contain and survive panics — and its
//!   sample store, which quarantines malformed batches and exports CSV;
//! * [`series`] — timestamped cumulative-counter series, wrap-aware
//!   decoding, and the delta-to-rate/utilization conversions the analyses
//!   build on.
//!
//! ## End-to-end shape
//!
//! ```text
//! Switch (uburst-sim) ──writes──► AsicCounters (uburst-asic)
//!                                     ▲ reads (AccessModel cost, faults)
//!                               Poller (this crate, simulated CPU)
//!                                     │ Batcher + ShipPolicy
//!                                     ▼
//!                      bounded channel ──► supervised Collector ──► SampleStore
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod collector;
pub mod degrade;
pub mod errors;
pub mod output;
pub mod poller;
pub mod series;
pub mod spec;
pub mod store;
pub mod tuning;

pub use batch::{Batch, BatchPolicy, Batcher, SourceId};
pub use collector::{Collector, CollectorHealth, CollectorReport};
pub use degrade::{DegradationController, DegradationPolicy, DegradeMode};
pub use errors::{CollectorError, PollError};
pub use output::{ChannelSink, MemorySink, SampleOutput, ShipPolicy};
pub use poller::{Poller, PollerStats, RetryPolicy};
pub use series::{RateSample, Series, UtilSample, WrapDecoder};
pub use spec::{CampaignConfig, CoreMode};
pub use store::{
    counter_label, parse_counter_label, QuarantineReason, SampleStore, SeriesKey, StoreStats,
};
pub use tuning::{
    probe_loss_profile, probe_miss_fraction, tune_min_interval, TuningConfig, TuningResult,
};
