//! Reproduction harness for the paper's fig05. See
//! `uburst_bench::figures::fig05` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig05::run(scale));
}
