//! The parallel campaign execution engine.
//!
//! The paper's framework exists to run *many* concurrent measurement
//! campaigns (30 racks × 24 h × several counter classes); our reproduction
//! builds every campaign from a seed, which makes them embarrassingly
//! parallel: no campaign observes another. This module fans independent
//! jobs across a scoped worker pool and hands the results back **in
//! submission order**, so every report a harness renders is byte-identical
//! to what a sequential run produces — the thread count only changes
//! wall-clock time.
//!
//! Design notes:
//!
//! * **Std-only.** Workers are `std::thread::scope` threads; the work
//!   queue and the result queue are [`uburst_core::channel`] MPMC channels
//!   (the same bounded channel the collector tier ships batches on).
//!   Simulations are full of `Rc`/`Cell` and are **not** `Send`, so a job
//!   builds, runs, and reduces its scenario entirely inside one worker and
//!   only the reduced (`Send`) result crosses threads — see
//!   [`crate::campaign::CampaignRun`].
//! * **Determinism.** Jobs are seeded and independent; results are
//!   reordered by submission index before they are returned. A run with
//!   `UBURST_THREADS=1` executes the jobs inline on the caller, which is
//!   exactly the old sequential code path.
//! * **Nesting.** Harnesses compose (`run_all_experiments` parallelizes
//!   over experiments, each experiment over campaigns), so a global permit
//!   budget of `Scale::threads() - 1` extra workers caps the total number
//!   of live worker threads across nested [`run_jobs`] calls. A nested
//!   call that finds the budget drained simply runs its jobs inline on the
//!   worker it already owns — no oversubscription, no deadlock (the caller
//!   always participates, so progress never depends on acquiring a
//!   permit).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use uburst_core::channel;

use crate::campaign::{CampaignRun, CampaignSpec};
use crate::scale::Scale;

/// Permits for *extra* worker threads, shared across nested pools.
static EXTRA_WORKERS: OnceLock<AtomicUsize> = OnceLock::new();

fn budget() -> &'static AtomicUsize {
    EXTRA_WORKERS.get_or_init(|| AtomicUsize::new(Scale::threads().saturating_sub(1)))
}

/// Takes up to `want` permits from the global budget, returning how many
/// were actually acquired.
fn acquire_workers(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let mut got = 0;
    let _ = budget().fetch_update(Ordering::AcqRel, Ordering::Acquire, |avail| {
        got = avail.min(want);
        Some(avail - got)
    });
    got
}

fn release_workers(n: usize) {
    if n > 0 {
        budget().fetch_add(n, Ordering::AcqRel);
    }
}

/// Runs `f` over every input on the worker pool, returning the results in
/// submission order. The calling thread always participates, so this is
/// exactly sequential execution when no extra workers are available
/// (`UBURST_THREADS=1`, a single core, or a drained nested budget).
///
/// # Panics
/// Propagates the first panicking job (the scope joins its workers).
pub fn run_jobs<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let want = inputs.len().min(Scale::threads()).saturating_sub(1);
    let extra = acquire_workers(want);
    let out = run_jobs_with_extra_workers(extra, inputs, f);
    release_workers(extra);
    out
}

/// [`run_jobs`] with an explicit worker-thread count, bypassing both
/// `UBURST_THREADS` and the global budget. `threads` counts the calling
/// thread, so `threads = 1` is sequential. Tests use this to exercise the
/// cross-thread path regardless of the host's core count.
pub fn run_jobs_on<T, R, F>(threads: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let extra = threads.max(1).min(inputs.len().max(1)) - 1;
    run_jobs_with_extra_workers(extra, inputs, f)
}

fn run_jobs_with_extra_workers<T, R, F>(extra: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = inputs.len();
    if uburst_obs::enabled() {
        // Submitted-job accounting: counts inputs, not workers, so the
        // total is identical whatever the thread budget resolves to.
        uburst_obs::counter_add("uburst_pool_jobs_total", n as u64);
    }
    if extra == 0 || n <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let (job_tx, job_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for pair in inputs.into_iter().enumerate() {
        if job_tx.send(pair).is_err() {
            unreachable!("job receiver alive until the scope below");
        }
    }
    // Senders must be gone before workers drain the queue to completion.
    drop(job_tx);

    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..extra {
            let rx = job_rx.clone();
            let tx = res_tx.clone();
            s.spawn(move || {
                while let Ok((i, t)) = rx.recv() {
                    if tx.send((i, f(t))).is_err() {
                        break;
                    }
                }
            });
        }
        // The caller is a worker too: progress never requires a spawn.
        while let Ok((i, t)) = job_rx.recv() {
            let _ = res_tx.send((i, f(t)));
        }
    });
    drop(res_tx);

    // Restore submission order: index i goes to slot i.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Some((i, r)) = res_rx.try_recv() {
        debug_assert!(slots[i].is_none(), "job {i} completed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

/// Runs every campaign spec on the pool, returning the runs in submission
/// order. Each worker builds its scenario, simulates the campaign, and
/// reduces it to a `Send` [`CampaignRun`]; byte-for-byte the same results
/// as calling [`CampaignSpec::run`] in a loop.
pub fn run_parallel(specs: Vec<CampaignSpec>) -> Vec<CampaignRun> {
    run_jobs(specs, CampaignSpec::run)
}

/// [`run_parallel`] with an explicit thread count (see [`run_jobs_on`]).
pub fn run_parallel_on(threads: usize, specs: Vec<CampaignSpec>) -> Vec<CampaignRun> {
    run_jobs_on(threads, specs, CampaignSpec::run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs finish out of order on purpose: later jobs sleep less.
        let inputs: Vec<u64> = (0..32).collect();
        let out = run_jobs_on(4, inputs, |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |i: u64| -> u64 {
            // A little deterministic arithmetic per job.
            (0..1_000).fold(i, |acc, k| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(k)
            })
        };
        let seq = run_jobs_on(1, (0..64).collect(), work);
        let par = run_jobs_on(8, (0..64).collect(), work);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = run_jobs_on(4, Vec::<u32>::new(), |x| x);
        assert!(none.is_empty());
        assert_eq!(run_jobs_on(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn nested_pools_do_not_deadlock() {
        let out = run_jobs_on(3, (0..6u32).collect(), |i| {
            run_jobs((0..4u32).collect(), move |j| i * 10 + j)
        });
        assert_eq!(out.len(), 6);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(
                *inner,
                (0..4).map(|j| i as u32 * 10 + j).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn budget_is_restored_after_use() {
        let before = budget().load(Ordering::Acquire);
        let _ = run_jobs((0..8u32).collect(), |x| x * 2);
        assert_eq!(budget().load(Ordering::Acquire), before);
    }
}
