//! Benchmarks for the simulator: host time to simulate fixed spans of each
//! measured-rack scenario, and raw event throughput.
//!
//! Self-contained `Instant`-based harness (no external bench framework);
//! run with `cargo bench --bench simulation`.

use uburst_bench::benchjson::BenchRecorder;
use uburst_bench::runner::bench;
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{build_scenario, RackType, ScenarioConfig};

fn main() {
    let mut rec = BenchRecorder::new("simulation");
    println!("== simulate 20ms of each rack scenario ==");
    for rack_type in RackType::ALL {
        bench(&mut rec, rack_type.name(), 10, || {
            let mut s = build_scenario(ScenarioConfig::new(rack_type, 9));
            s.sim.run_until(Nanos::from_millis(20));
            s.sim.dispatched()
        });
    }

    println!("== DES event rate (heaviest scenario) ==");
    let events = {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    };
    let median = bench(&mut rec, "hadoop_20ms_events", 10, || {
        let mut s = build_scenario(ScenarioConfig::new(RackType::Hadoop, 9));
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    });
    println!(
        "{events} events in {:.2} ms -> {:.1} M events/s",
        median * 1e3,
        events as f64 / median / 1e6
    );

    println!("== hybrid fast-forward engine (forced on) ==");
    // The rack rows above follow `UBURST_HYBRID`, so this row pins the
    // hybrid engine explicitly: it keeps measuring the fast-forward path
    // even in a per-packet (`UBURST_HYBRID=0`) bench run, and the gate's
    // baseline for it can never silently flip execution modes.
    bench(&mut rec, "hybrid_fastforward_hadoop", 10, || {
        let mut cfg = ScenarioConfig::new(RackType::Hadoop, 9);
        cfg.hybrid = Some(true);
        let mut s = build_scenario(cfg);
        s.sim.run_until(Nanos::from_millis(20));
        s.sim.dispatched()
    });
    rec.flush();
}
