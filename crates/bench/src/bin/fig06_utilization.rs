//! Reproduction harness for the paper's fig06. See
//! `uburst_bench::figures::fig06` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig06::run(scale));
}
