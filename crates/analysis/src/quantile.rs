//! Selection-based quantiles for callers that never need the full [`Ecdf`].
//!
//! [`Ecdf::new`](crate::Ecdf::new) sorts its sample — O(n log n) — which is
//! the right tool when a harness then evaluates a whole CDF curve. But the
//! hot paths that ask for a single p50/p90 (auto-tuning probes, ablation
//! sweeps, bench kernels) pay the full sort for one order statistic. These
//! functions use `select_nth_unstable` (introselect, O(n)) instead, with
//! the **same nearest-rank semantics**: for any sample and any `q`,
//! `quantile(&mut xs, q) == Ecdf::new(xs).quantile(q)` (asserted by
//! `agrees_with_ecdf_quantile` below).

/// The `q`-quantile of `xs` by the nearest-rank method, in O(n) via
/// selection. Reorders `xs` (that is what makes it cheap — no allocation,
/// no full sort).
///
/// # Panics
/// Panics on an empty sample, a NaN observation, or `q` outside [0, 1].
pub fn quantile(xs: &mut [f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let n = xs.len();
    // Nearest rank, exactly as Ecdf::quantile: rank ceil(q*n) clamped to
    // [1, n], 1-indexed; q = 0 means the minimum.
    let rank = if q == 0.0 {
        1
    } else {
        (q * n as f64).ceil() as usize
    };
    let idx = rank.clamp(1, n) - 1;
    *xs.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("NaN observation"))
        .1
}

/// Several quantiles of one sample in a single call, returned in the order
/// requested. Sorts once when that beats repeated selection.
///
/// # Panics
/// As [`quantile`].
pub fn quantiles(xs: &mut [f64], qs: &[f64]) -> Vec<f64> {
    // Repeated selection is O(k·n); a sort is O(n log n). For the small
    // k (2–4) the harnesses use, selection wins until k ~ log n.
    if qs.len() as f64 > (xs.len().max(2) as f64).log2() {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        let n = xs.len();
        assert!(n > 0, "empty sample");
        qs.iter()
            .map(|&q| {
                assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
                let rank = if q == 0.0 {
                    1
                } else {
                    (q * n as f64).ceil() as usize
                };
                xs[rank.clamp(1, n) - 1]
            })
            .collect()
    } else {
        qs.iter().map(|&q| quantile(xs, q)).collect()
    }
}

/// The sample median, in O(n).
pub fn median(xs: &mut [f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    fn lcg_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// The whole contract: selection must reproduce Ecdf::quantile exactly,
    /// for every rank, including edge qs and heavily tied samples.
    #[test]
    fn agrees_with_ecdf_quantile() {
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for n in [1usize, 2, 3, 10, 101, 1024] {
            for seed in [1u64, 42] {
                let sample = lcg_sample(n, seed);
                let tied: Vec<f64> = sample.iter().map(|x| (x * 4.0).round()).collect();
                for xs in [sample, tied] {
                    let e = Ecdf::new(xs.clone());
                    for &q in &qs {
                        let mut scratch = xs.clone();
                        assert_eq!(
                            quantile(&mut scratch, q).to_bits(),
                            e.quantile(q).to_bits(),
                            "n={n} seed={seed} q={q}"
                        );
                    }
                    let mut scratch = xs.clone();
                    let many = quantiles(&mut scratch, &qs);
                    for (&q, &v) in qs.iter().zip(&many) {
                        assert_eq!(v.to_bits(), e.quantile(q).to_bits(), "batched q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn median_of_odd_sample() {
        let mut xs = vec![9.0, 1.0, 5.0];
        assert_eq!(median(&mut xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        quantile(&mut [], 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_rejected() {
        quantile(&mut [1.0], 1.5);
    }
}
