//! Load-balance dispersion: mean absolute deviation across uplinks (Fig. 7).
//!
//! For each sampling period the paper computes the mean absolute deviation
//! (MAD) of the four uplinks' utilization, normalized by the mean so "an
//! average deviation of 100 %" is meaningful across load levels. A value of
//! 0 means perfect balance.

/// Relative MAD of one sampling period's per-uplink values:
/// `mean(|x_i - mean|) / mean`. Returns 0 for an all-zero period (nothing
/// to balance).
///
/// # Panics
/// Panics on an empty slice.
pub fn relative_mad(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "no uplinks");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let mad = values.iter().map(|v| (v - mean).abs()).sum::<f64>() / n;
    mad / mean
}

/// Per-period relative MAD across aligned uplink series: input is one
/// series per uplink; output has one value per sampling period.
///
/// Periods where every uplink is zero are skipped (idle rack tells us
/// nothing about balance), matching the paper's conditioning on activity.
///
/// # Panics
/// Panics if the series are unaligned.
pub fn mad_per_period(uplinks: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = uplinks.first() else {
        return Vec::new();
    };
    let n = first.len();
    assert!(uplinks.iter().all(|s| s.len() == n), "unaligned series");
    let mut out = Vec::with_capacity(n);
    let mut buf = vec![0.0; uplinks.len()];
    for i in 0..n {
        for (b, s) in buf.iter_mut().zip(uplinks) {
            *b = s[i];
        }
        if buf.iter().all(|&v| v == 0.0) {
            continue;
        }
        out.push(relative_mad(&buf));
    }
    out
}

/// Aggregates fine-grained per-uplink utilization into coarse windows of
/// `factor` consecutive periods (averaging), used for the paper's 1 s
/// granularity curves next to the 40 µs ones.
pub fn coarsen(series: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0);
    series
        .chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_is_zero() {
        assert_eq!(relative_mad(&[0.3, 0.3, 0.3, 0.3]), 0.0);
    }

    #[test]
    fn one_hot_uplink_is_maximally_unbalanced() {
        // One uplink carries everything: mean = x/4,
        // MAD = (3·x/4 + 3·x/4·... ) → relative MAD = 1.5 for 4 links.
        let m = relative_mad(&[1.0, 0.0, 0.0, 0.0]);
        assert!((m - 1.5).abs() < 1e-12, "got {m}");
    }

    #[test]
    fn idle_period_is_zero() {
        assert_eq!(relative_mad(&[0.0, 0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn scale_invariant() {
        let a = relative_mad(&[0.1, 0.2, 0.3, 0.4]);
        let b = relative_mad(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn per_period_skips_idle() {
        let u1 = vec![0.0, 0.5, 0.5];
        let u2 = vec![0.0, 0.5, 0.0];
        let m = mad_per_period(&[u1, u2]);
        assert_eq!(m.len(), 2, "all-idle period skipped");
        assert_eq!(m[0], 0.0); // balanced period
        assert!(m[1] > 0.9); // one-sided period
    }

    #[test]
    fn coarsen_averages() {
        let s = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(coarsen(&s, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(coarsen(&s, 5), vec![5.0]);
        assert_eq!(coarsen(&s, 1), s);
    }

    #[test]
    fn coarse_windows_look_more_balanced() {
        // Alternating one-sided periods are perfectly balanced at 2x
        // coarsening — the Fig. 7 phenomenon in miniature.
        let u1 = vec![1.0, 0.0, 1.0, 0.0];
        let u2 = vec![0.0, 1.0, 0.0, 1.0];
        let fine = mad_per_period(&[u1.clone(), u2.clone()]);
        assert!(fine.iter().all(|&m| m > 0.9));
        let coarse = mad_per_period(&[coarsen(&u1, 2), coarsen(&u2, 2)]);
        assert!(coarse.iter().all(|&m| m < 1e-12));
    }

    #[test]
    #[should_panic(expected = "no uplinks")]
    fn empty_period_panics() {
        relative_mad(&[]);
    }
}
