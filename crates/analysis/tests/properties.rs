//! Property-based tests for the analysis library's invariants.

use proptest::prelude::*;
use uburst_analysis::*;
use uburst_core::{Series, UtilSample};
use uburst_sim::time::Nanos;

fn util_series_strategy() -> impl Strategy<Value = Vec<UtilSample>> {
    prop::collection::vec(0.0f64..1.2, 1..500).prop_map(|utils| {
        let dt = Nanos::from_micros(25);
        utils
            .into_iter()
            .enumerate()
            .map(|(i, util)| UtilSample {
                t: dt * (i as u64 + 1),
                dt,
                util,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn burst_extraction_invariants(samples in util_series_strategy(), thr in 0.1f64..0.9) {
        let a = extract_bursts(&samples, thr);
        // Hot-sample accounting is exact.
        let hot_direct = samples.iter().filter(|s| s.util > thr).count();
        prop_assert_eq!(a.hot_samples, hot_direct);
        prop_assert_eq!(a.total_samples, samples.len());
        let in_bursts: usize = a.bursts.iter().map(|b| b.samples).sum();
        prop_assert_eq!(in_bursts, hot_direct);
        // Structure: gaps fit between bursts; everything is ordered and positive.
        prop_assert_eq!(a.gaps.len(), a.bursts.len().saturating_sub(1));
        for b in &a.bursts {
            prop_assert!(b.end > b.start);
            prop_assert!(b.samples >= 1);
        }
        for w in a.bursts.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        // Hot fraction is a fraction.
        prop_assert!((0.0..=1.0).contains(&a.hot_fraction()));
    }

    #[test]
    fn hot_chain_matches_extraction(samples in util_series_strategy(), thr in 0.1f64..0.9) {
        let chain = hot_chain(&samples, thr);
        prop_assert_eq!(chain.len(), samples.len());
        let hot = chain.iter().filter(|&&h| h).count();
        prop_assert_eq!(hot, extract_bursts(&samples, thr).hot_samples);
    }

    #[test]
    fn markov_probabilities_are_probabilities(chain in prop::collection::vec(any::<bool>(), 2..400)) {
        let m = fit_transition_matrix(&chain);
        if m.from0 > 0 {
            prop_assert!((0.0..=1.0).contains(&m.p01));
            prop_assert!(((m.p01 + m.p00()) - 1.0).abs() < 1e-12);
        }
        if m.from1 > 0 {
            prop_assert!((0.0..=1.0).contains(&m.p11));
            prop_assert!(((m.p11 + m.p10()) - 1.0).abs() < 1e-12);
        }
        prop_assert_eq!(m.from0 + m.from1, chain.len() as u64 - 1);
    }

    #[test]
    fn ecdf_is_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let e = Ecdf::new(xs);
        // Quantiles increase with q.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = e.quantile(i as f64 / 10.0);
            prop_assert!(q >= last);
            last = q;
        }
        // CDF increases with x and brackets [0,1].
        let lo = e.fraction_at_or_below(e.min() - 1.0);
        let hi = e.fraction_at_or_below(e.max());
        prop_assert_eq!(lo, 0.0);
        prop_assert_eq!(hi, 1.0);
        prop_assert!(e.fraction_at_or_below(e.quantile(0.5)) >= 0.5);
    }

    #[test]
    fn pearson_bounded_and_symmetric(
        xs in prop::collection::vec(-1e3f64..1e3, 3..100),
        ys in prop::collection::vec(-1e3f64..1e3, 3..100),
    ) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        prop_assert!((-1.0..=1.0).contains(&r));
        let r2 = pearson(&ys[..n], &xs[..n]);
        prop_assert!((r - r2).abs() < 1e-12);
        // Perfect self-correlation unless degenerate.
        let self_r = pearson(&xs[..n], &xs[..n]);
        prop_assert!(self_r == 0.0 || (self_r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_mad_properties(vals in prop::collection::vec(0.0f64..10.0, 1..32), scale in 0.1f64..100.0) {
        let m = relative_mad(&vals);
        prop_assert!(m >= 0.0);
        // Scale invariance.
        let scaled: Vec<f64> = vals.iter().map(|v| v * scale).collect();
        prop_assert!((relative_mad(&scaled) - m).abs() < 1e-9);
        // Perfectly balanced input has (numerically) zero MAD.
        let flat = vec![vals[0]; vals.len()];
        prop_assert!(relative_mad(&flat) < 1e-9);
    }

    #[test]
    fn summary_is_ordered(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert_eq!(s.n, xs.len());
    }

    #[test]
    fn windows_conserve_deltas(
        deltas in prop::collection::vec(0u64..10_000, 2..200),
        width_us in 1u64..500,
    ) {
        // Build a cumulative series at 25us spacing.
        let mut series = Series::new();
        let mut total = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            total += d;
            series.push(Nanos(25_000 * (i as u64 + 1)), total);
        }
        let origin = Nanos(series.ts[0]);
        let end = Nanos(*series.ts.last().unwrap());
        if end > origin {
            let w = to_windows(&series, origin, Nanos::from_micros(width_us), end);
            let windowed: u64 = w.iter().map(|x| x.delta).sum();
            let expected: u64 = deltas[1..].iter().sum();
            prop_assert_eq!(windowed, expected);
        }
    }

    #[test]
    fn kolmogorov_sf_is_decreasing(a in 0.0f64..5.0, b in 0.0f64..5.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(kolmogorov_sf(lo) >= kolmogorov_sf(hi));
        prop_assert!((0.0..=1.0).contains(&kolmogorov_sf(a)));
    }

    #[test]
    fn hot_port_counts_bounded(
        utils in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 50), 1..8),
    ) {
        let series: Vec<Vec<UtilSample>> = utils
            .iter()
            .map(|u| {
                let dt = Nanos::from_micros(300);
                u.iter()
                    .enumerate()
                    .map(|(i, &util)| UtilSample { t: dt * (i as u64 + 1), dt, util })
                    .collect()
            })
            .collect();
        let counts = hot_port_counts(&series, 0.5);
        prop_assert_eq!(counts.len(), 50);
        for c in counts {
            prop_assert!(c <= series.len());
        }
    }
}
