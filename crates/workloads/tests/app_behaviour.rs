//! Behavioural tests of the workload apps' traffic-shaping mechanisms:
//! request trains, shared multiget sizes, wave determinism, diurnal
//! scaling — the mechanisms DESIGN.md §4b credits for the paper's shapes.

use uburst_sim::prelude::*;
use uburst_workloads::cache::{contiguous_pods, CacheFrontendApp, CacheFrontendConfig};
use uburst_workloads::host::AppHost;
use uburst_workloads::responder::{ResponderApp, ResponderConfig};
use uburst_workloads::scenario::{RackType, ScenarioConfig};

/// Builds a star topology: `n` responder hosts + one frontend, all on one
/// switch, and returns (sim, responders, frontend).
fn star_with_frontend(
    n: usize,
    make_frontend: impl FnOnce(Vec<NodeId>) -> CacheFrontendConfig,
) -> (Simulator, Vec<NodeId>, NodeId) {
    let mut sim = Simulator::new();
    let servers: Vec<NodeId> = (0..n)
        .map(|i| {
            AppHost::spawn(
                &mut sim,
                Box::new(ResponderApp::new(ResponderConfig::default())),
                NicConfig::default(),
                TransportConfig::default(),
                500 + i as u64,
                Nanos::ZERO,
            )
        })
        .collect();
    let frontend = AppHost::spawn(
        &mut sim,
        Box::new(CacheFrontendApp::new(make_frontend(servers.clone()))),
        NicConfig::default(),
        TransportConfig::default(),
        999,
        Nanos::from_micros(10),
    );
    let mut routing = RoutingTable::new(0);
    let all: Vec<NodeId> = servers.iter().copied().chain([frontend]).collect();
    for (i, &h) in all.iter().enumerate() {
        routing.set_route(h, Route::Port(PortId(i as u16)));
    }
    let sw = sim.add_node(Box::new(Switch::new(
        SwitchConfig::default(),
        routing,
        null_sink(),
    )));
    for (i, &h) in all.iter().enumerate() {
        sim.connect(
            (h, PortId(0)),
            (sw, PortId(i as u16)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
    }
    (sim, servers, frontend)
}

#[test]
fn train_length_preserves_group_rate() {
    // Same configured group rate with trains of 1 vs trains of 4 must yield
    // comparable total groups over a long window.
    let groups_with = |train: (usize, usize)| {
        let (mut sim, _servers, frontend) = star_with_frontend(8, |servers| CacheFrontendConfig {
            cache_nodes: servers,
            pods: contiguous_pods(8, 4),
            rate_per_s: 5_000.0,
            train,
            ..CacheFrontendConfig::default()
        });
        sim.run_until(Nanos::from_millis(400));
        sim.node::<AppHost>(frontend)
            .app::<CacheFrontendApp>()
            .groups_sent
    };
    let singles = groups_with((1, 1)) as f64;
    let trains = groups_with((2, 6)) as f64;
    let ratio = trains / singles;
    assert!(
        (0.8..1.25).contains(&ratio),
        "train config changed the effective rate: {singles} vs {trains}"
    );
}

#[test]
fn every_group_request_is_answered() {
    let (mut sim, servers, frontend) = star_with_frontend(6, |servers| CacheFrontendConfig {
        cache_nodes: servers,
        pods: contiguous_pods(6, 3),
        rate_per_s: 2_000.0,
        member_prob: 1.0,
        train: (2, 4),
        ..CacheFrontendConfig::default()
    });
    sim.run_until(Nanos::from_millis(300));
    let fe = sim.node::<AppHost>(frontend).app::<CacheFrontendApp>();
    let served: u64 = servers
        .iter()
        .map(|&s| sim.node::<AppHost>(s).app::<ResponderApp>().served)
        .sum();
    // member_prob 1.0 and pods of 3: requests = 3 * groups; allow the
    // in-flight tail.
    assert!(
        served as f64 >= 2.8 * fe.groups_sent as f64,
        "{served} served for {} groups",
        fe.groups_sent
    );
    assert!(
        fe.responses_received as f64 >= 0.95 * served as f64,
        "{} responses for {served} served",
        fe.responses_received
    );
}

#[test]
fn diurnal_factor_scales_scenario_rates() {
    use uburst_workloads::diurnal::{batch_factor, interactive_factor};
    // The scenario's rate_factor must combine load and the right curve.
    let mut web = ScenarioConfig::new(RackType::Web, 1);
    web.hour = 8.0;
    web.load = 2.0;
    let expected = 2.0 * interactive_factor(8.0);
    assert!((web.rate_factor() - expected).abs() < 1e-12);

    let mut hadoop = ScenarioConfig::new(RackType::Hadoop, 1);
    hadoop.hour = 8.0;
    assert!((hadoop.rate_factor() - batch_factor(8.0)).abs() < 1e-12);
}

#[test]
fn bimodal_responder_has_two_latency_modes() {
    use uburst_workloads::host::{App, Env, Incoming};
    use uburst_workloads::tags::MsgKind;

    /// Client that sends many requests and records response times.
    struct Probe {
        peer: NodeId,
        sent_at: std::collections::HashMap<u32, Nanos>,
        latencies: Vec<Nanos>,
        n: u32,
    }
    impl App for Probe {
        fn start(&mut self, env: &mut Env<'_, '_>) {
            env.timer_in(Nanos::from_micros(1), 0);
        }
        fn on_timer(&mut self, env: &mut Env<'_, '_>, _t: u64) {
            if self.n == 0 {
                return;
            }
            self.n -= 1;
            let g = self.n;
            self.sent_at.insert(g, env.now());
            env.send_request(self.peer, 1_000, g);
            env.timer_in(Nanos::from_millis(3), 0); // no queueing between probes
        }
        fn on_flow_received(&mut self, env: &mut Env<'_, '_>, msg: Incoming) {
            if msg.kind == MsgKind::Response {
                let t0 = self.sent_at[&msg.group];
                self.latencies.push(env.now() - t0);
            }
        }
    }

    let mut sim = Simulator::new();
    let server = AppHost::spawn(
        &mut sim,
        Box::new(ResponderApp::new(ResponderConfig {
            hit_prob: 0.5,
            hit_median: Nanos::from_micros(50),
            hit_sigma: 0.1,
            miss_median: Nanos::from_micros(2_000),
            miss_sigma: 0.1,
        })),
        NicConfig::default(),
        TransportConfig::default(),
        7,
        Nanos::ZERO,
    );
    let probe = AppHost::spawn(
        &mut sim,
        Box::new(Probe {
            peer: server,
            sent_at: Default::default(),
            latencies: Vec::new(),
            n: 200,
        }),
        NicConfig::default(),
        TransportConfig::default(),
        8,
        Nanos::ZERO,
    );
    sim.connect(
        (server, PortId(0)),
        (probe, PortId(0)),
        LinkSpec::gbps(10.0, Nanos(500)),
    );
    sim.run_until(Nanos::from_secs(2));

    let lats = &sim.node::<AppHost>(probe).app::<Probe>().latencies;
    assert!(lats.len() >= 190, "only {} probes returned", lats.len());
    let fast = lats
        .iter()
        .filter(|l| **l < Nanos::from_micros(500))
        .count();
    let slow = lats.len() - fast;
    // Both modes present, roughly half each.
    assert!(fast > lats.len() / 4, "fast mode missing: {fast}");
    assert!(slow > lats.len() / 4, "slow mode missing: {slow}");
}
