//! Figure 5 — packet-size distributions inside vs. outside bursts.
//!
//! Paper's findings (§5.3): Hadoop sees mostly full-MTU packets always;
//! Web and Cache see wider mixes; bursty periods contain relatively more
//! large packets — Cache's large-packet share rises ~20 %, Web's rises
//! ~60 % relative, Hadoop's barely moves because it is already almost all
//! MTU. Histogram bins were "polled alongside the total byte count of the
//! interface in order to classify the samples" over 100 µs periods.

use std::fmt::Write;

use uburst_analysis::{diff_histogram_snapshots, hot_chain, split_by_burst, HOT_THRESHOLD};
use uburst_asic::{CounterId, N_SIZE_BINS, SIZE_BIN_LABELS};
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::{RackType, ScenarioConfig};

use crate::campaign::{port_bps, representative_port, run_campaign};
use crate::pool::run_jobs;
use crate::report::Table;
use crate::scale::Scale;

/// Index of the first "large" bin (1024–1518 bytes).
const FIRST_LARGE_BIN: usize = 5;

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let interval = Nanos::from_micros(100);
    let mut out = String::new();
    writeln!(
        out,
        "Figure 5: packet sizes inside/outside bursts over 100us periods ({} scale)",
        scale.label()
    )
    .unwrap();

    let mut table = Table::new(&[
        "rack",
        "large_inside",
        "large_outside",
        "rel_increase",
        "pkts_inside",
        "pkts_outside",
    ]);
    let mut hists = String::new();
    let mut rel_increases = Vec::new();

    // One campaign per (rack type, instance); workers reduce each run to
    // its inside/outside bin counts, folded per rack type afterwards.
    let racks = scale.racks_per_type();
    let mut jobs = Vec::new();
    for rack_type in RackType::ALL {
        for r in 0..racks {
            jobs.push((rack_type, r));
        }
    }
    let per_rack_counts = run_jobs(jobs, |(rack_type, r)| {
        let cfg = ScenarioConfig::new(rack_type, 7_000 + r as u64);
        let port = representative_port(&cfg);
        let bps = port_bps(&cfg, port);
        // The paper's multi-counter campaign: histogram bins polled
        // alongside the byte counter.
        let mut counters: Vec<CounterId> = (0..N_SIZE_BINS as u8)
            .map(|b| CounterId::TxSizeHist(port, b))
            .collect();
        counters.push(CounterId::TxBytes(port));
        let run = run_campaign(cfg, counters, interval, scale.campaign_span());

        let utils = run.utilization(CounterId::TxBytes(port), bps);
        let hot = hot_chain(&utils, HOT_THRESHOLD);
        // Interval-aligned histogram snapshots -> per-interval deltas.
        let n = utils.len() + 1;
        let snaps: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                (0..N_SIZE_BINS as u8)
                    .map(|b| run.series_for(CounterId::TxSizeHist(port, b)).vs[i])
                    .collect()
            })
            .collect();
        let deltas = diff_histogram_snapshots(&snaps);
        let (inside, outside) = split_by_burst(&deltas, &hot);
        // Recover raw counts from the normalized fractions via totals.
        let mut counts = (vec![0u64; N_SIZE_BINS], vec![0u64; N_SIZE_BINS]);
        for b in 0..N_SIZE_BINS {
            counts.0[b] = (inside.fractions[b] * inside.total as f64).round() as u64;
            counts.1[b] = (outside.fractions[b] * outside.total as f64).round() as u64;
        }
        counts
    });

    for (ti, rack_type) in RackType::ALL.into_iter().enumerate() {
        // Accumulate inside/outside bin counts across rack instances.
        let mut inside_acc = vec![0u64; N_SIZE_BINS];
        let mut outside_acc = vec![0u64; N_SIZE_BINS];
        for (inside, outside) in &per_rack_counts[ti * racks..(ti + 1) * racks] {
            for b in 0..N_SIZE_BINS {
                inside_acc[b] += inside[b];
                outside_acc[b] += outside[b];
            }
        }
        let inside = uburst_analysis::NormalizedHistogram::from_counts(&inside_acc);
        let outside = uburst_analysis::NormalizedHistogram::from_counts(&outside_acc);
        let li = inside.large_fraction(FIRST_LARGE_BIN);
        let lo = outside.large_fraction(FIRST_LARGE_BIN);
        let rel = if lo > 0.0 { (li - lo) / lo } else { 0.0 };
        rel_increases.push((rack_type, rel, lo));
        table.row(&[
            rack_type.name().to_string(),
            format!("{li:.3}"),
            format!("{lo:.3}"),
            format!("{:+.0}%", rel * 100.0),
            format!("{}", inside.total),
            format!("{}", outside.total),
        ]);
        writeln!(hists, "\n{} normalized histograms:", rack_type.name()).unwrap();
        writeln!(hists, "  {:>10}  inside  outside", "bin").unwrap();
        for ((label, fin), fout) in SIZE_BIN_LABELS
            .iter()
            .zip(&inside.fractions)
            .zip(&outside.fractions)
        {
            writeln!(hists, "  {label:>10}  {fin:.3}   {fout:.3}").unwrap();
        }
    }

    writeln!(out, "{}", table.render()).unwrap();
    out.push_str(&hists);
    writeln!(out, "\npaper-shape checks:").unwrap();
    for (rt, rel, baseline) in &rel_increases {
        let ok = match rt {
            RackType::Hadoop => *baseline > 0.5 && rel.abs() < 0.5,
            _ => *rel > 0.0,
        };
        let desc = match rt {
            RackType::Hadoop => format!(
                "Hadoop: already mostly large packets, little change inside bursts \
                 (baseline {:.0}%, change {:+.0}%)",
                baseline * 100.0,
                rel * 100.0
            ),
            _ => format!(
                "{}: more large packets inside bursts ({:+.0}% relative)",
                rt.name(),
                rel * 100.0
            ),
        };
        writeln!(out, "  [{}] {desc}", if ok { "ok" } else { "MISS" }).unwrap();
    }
    out
}
