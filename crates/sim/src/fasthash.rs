//! A fast deterministic hasher for per-packet map lookups.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) costs tens of
//! nanoseconds per lookup — fine for adversarial inputs, wasteful for the
//! simulator's own keys (`FlowId`s and node ids it minted itself). This is
//! the FxHash multiply-and-rotate used throughout rustc: one multiply per
//! word, quality adequate for trusted keys.
//!
//! Swapping the hasher is observably identical as long as no code iterates
//! a map (transport and routing only do keyed access); determinism actually
//! *improves* — FxHash has no per-process random state, so even debug
//! walks of these maps would be stable across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-FxHash mixing constant (64-bit golden-ratio multiplier).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word hasher for trusted (non-adversarial) keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_store_and_retrieve() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
        }
        for k in 0..10_000u64 {
            assert_eq!(
                m.get(&k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                Some(&(k as u32))
            );
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one(42u64);
        let h2 = b.hash_one(42u64);
        assert_eq!(h1, h2);
        // Nearby keys land in different buckets of a small table.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0..64u64 {
            low_bits.insert(b.hash_one(k) >> 56);
        }
        assert!(low_bits.len() > 16, "only {} distinct", low_bits.len());
    }
}
