//! Reproduction harness for the paper's fig03. See
//! `uburst_bench::figures::fig03` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig03::run(scale));
}
