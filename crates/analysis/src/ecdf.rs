//! Empirical cumulative distribution functions.
//!
//! Every CDF figure in the paper (Figs. 3, 4, 6, 7) is an ECDF over one of
//! the derived per-sample quantities; this module is the shared machinery.

use crate::quantile::nearest_rank;
use crate::sortf64::sort_f64;

/// An empirical CDF over `f64` observations.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from unsorted observations. Non-finite values are rejected.
    ///
    /// Campaign-sized samples are sorted in O(n) by
    /// [`sort_f64`](crate::sortf64::sort_f64) (radix sort over the
    /// order-preserving integer image), bit-identically to the comparison
    /// sort this replaces.
    ///
    /// # Panics
    /// Panics on NaN (caught by the sort's prescan), infinite input
    /// (caught at the extremes after sorting), or an empty sample.
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "empty sample");
        // The sort rejects NaN in its own prescan, and infinities sort to
        // the ends — so finiteness of the two extremes is finiteness of
        // the whole sample. O(1) instead of a second streaming pass over
        // a campaign-sized sample.
        sort_f64(&mut xs);
        assert!(
            xs[0].is_finite() && xs[xs.len() - 1].is_finite(),
            "non-finite observation"
        );
        Ecdf { sorted: xs }
    }

    /// Builds from observations that are **already sorted ascending** —
    /// the zero-cost path for callers that sorted once elsewhere (e.g. a
    /// KS test over the same sample).
    ///
    /// # Panics
    /// Panics on an empty, unsorted, or non-finite sample.
    pub fn from_sorted(xs: Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "empty sample");
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite observation");
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "unsorted sample");
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); present for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of observations `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        // partition_point gives the first index with value > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in [0, 1], by the nearest-rank method
    /// (what the paper's pXX notation means). The rank is computed with
    /// exact integer arithmetic ([`nearest_rank`]), so `q` values like
    /// 0.9 or 0.99 never round across an exact rank boundary.
    pub fn quantile(&self, q: f64) -> f64 {
        self.sorted[nearest_rank(q, self.sorted.len()) - 1]
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sorted observations (read-only view).
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF at each of `points`, yielding `(x, F(x))` rows —
    /// the series a figure harness prints.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.5), 0.5);
        assert_eq!(e.fraction_at_or_below(4.0), 1.0);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.9), 90.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
        assert!((e.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_single_point() {
        let e = Ecdf::new(vec![7.0]);
        assert_eq!(e.quantile(0.0), 7.0);
        assert_eq!(e.quantile(0.5), 7.0);
        assert_eq!(e.quantile(1.0), 7.0);
    }

    #[test]
    fn ties_are_counted() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
    }

    #[test]
    fn curve_evaluates_points() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        let c = e.curve(&[0.0, 1.0, 3.0]);
        assert_eq!(c, vec![(0.0, 0.0), (1.0, 0.5), (3.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infinity_rejected() {
        Ecdf::new(vec![1.0, f64::INFINITY, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn negative_infinity_rejected() {
        Ecdf::new(vec![f64::NEG_INFINITY, 1.0, 2.0]);
    }
}
