//! Five-number summaries / boxplot statistics (Fig. 10).

/// Boxplot statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Computes the summary. Quartiles use linear interpolation between
    /// order statistics (type-7, the numpy/R default).
    ///
    /// # Panics
    /// Panics on empty or non-finite input.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        assert!(samples.iter().all(|x| x.is_finite()), "non-finite sample");
        let mut xs = samples.to_vec();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary {
            min: xs[0],
            q1: interpolated_quantile(&xs, 0.25),
            median: interpolated_quantile(&xs, 0.5),
            q3: interpolated_quantile(&xs, 0.75),
            max: *xs.last().expect("non-empty"),
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            n: xs.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Type-7 quantile of an already sorted slice.
fn interpolated_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Groups `(key, value)` observations by key and summarizes each group —
/// the "boxplot of peak buffer occupancy versus number of hot ports"
/// structure of Fig. 10. Returns `(key, Summary)` sorted by key; keys with
/// no observations are absent.
pub fn grouped_summaries(pairs: &[(usize, f64)]) -> Vec<(usize, Summary)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for &(k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    groups
        .into_iter()
        .map(|(k, vs)| (k, Summary::of(&vs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn interpolation_between_points() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn single_point() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn grouping() {
        let pairs = [(1, 10.0), (2, 30.0), (1, 20.0), (3, 1.0)];
        let groups = grouped_summaries(&pairs);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1.median, 15.0);
        assert_eq!(groups[0].1.n, 2);
        assert_eq!(groups[1].0, 2);
        assert_eq!(groups[2].0, 3);
        assert_eq!(groups[2].1.n, 1);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Summary::of(&[]);
    }
}
