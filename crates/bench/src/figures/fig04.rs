//! Figure 4 — CDF of the time between µbursts at 25 µs granularity.
//!
//! Paper's findings: inter-burst periods have a much longer tail than
//! bursts; ~40 % of Web and Cache inter-burst gaps last under 100 µs, but
//! persistent idle periods reach hundreds of milliseconds; a KS test
//! rejects exponential (Poisson) burst arrivals with p ≈ 0.

use std::fmt::Write;

use uburst_analysis::{ks_test_exponential_with_ecdf, HOT_THRESHOLD};
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::RackType;

use crate::figures::common::{all_gaps_us, collect_single_port_utils};
use crate::report::Table;
use crate::scale::Scale;

/// Gap CDF evaluation points in microseconds.
const GAP_POINTS_US: [f64; 10] = [
    25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 5_000.0, 20_000.0, 50_000.0, 200_000.0,
];

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 4: CDF of time between ubursts at 25us granularity ({} scale)",
        scale.label()
    )
    .unwrap();

    let mut table = Table::new(&[
        "rack", "gaps", "F(100us)", "p50us", "p90us", "p99us", "maxus", "KS_D", "KS_p",
    ]);
    let mut curves = String::new();
    let mut checks: Vec<(String, bool)> = Vec::new();

    for rack_type in RackType::ALL {
        let runs = collect_single_port_utils(scale, rack_type, Nanos::from_micros(25));
        let gaps = all_gaps_us(&runs, HOT_THRESHOLD);
        // One shared sort for the test and the CDF (bit-identical to the
        // separate ks_test_exponential + Ecdf::new pair it replaces).
        let (ks, ecdf) = ks_test_exponential_with_ecdf(gaps);
        table.row(&[
            rack_type.name().to_string(),
            format!("{}", ecdf.len()),
            format!("{:.3}", ecdf.fraction_at_or_below(100.0)),
            format!("{:.0}", ecdf.quantile(0.5)),
            format!("{:.0}", ecdf.quantile(0.9)),
            format!("{:.0}", ecdf.quantile(0.99)),
            format!("{:.0}", ecdf.max()),
            format!("{:.3}", ks.statistic),
            format!("{:.2e}", ks.p_value),
        ]);
        writeln!(curves, "\n{} inter-burst gap CDF:", rack_type.name()).unwrap();
        for (x, f) in ecdf.curve(&GAP_POINTS_US) {
            writeln!(curves, "  {x:>9.0}us  {f:.3}").unwrap();
        }
        checks.push((
            format!(
                "{}: KS test rejects Poisson burst arrivals (p = {:.2e})",
                rack_type.name(),
                ks.p_value
            ),
            ks.p_value < 0.001,
        ));
        checks.push((
            format!(
                "{}: gap tail >> burst tail (gap p99 {:.0}us)",
                rack_type.name(),
                ecdf.quantile(0.99)
            ),
            ecdf.quantile(0.99) > 1_000.0,
        ));
    }

    writeln!(out, "{}", table.render()).unwrap();
    out.push_str(&curves);
    writeln!(out, "\npaper-shape checks:").unwrap();
    for (desc, ok) in checks {
        writeln!(out, "  [{}] {desc}", if ok { "ok" } else { "MISS" }).unwrap();
    }
    out
}
