//! Property-style tests for the simulator's core invariants.
//!
//! Each test drives a seeded `Rng` through a fixed number of randomized
//! cases — deterministic across runs, no external dependencies.

use uburst_sim::events::{EventKind, EventQueue};
use uburst_sim::link::LinkSpec;
use uburst_sim::node::{NodeId, PortId};
use uburst_sim::packet::{
    segment_wire_size, segments_for, ACK_BYTES, HEADER_BYTES, MSS, MTU_FRAME,
};
use uburst_sim::rng::Rng;
use uburst_sim::routing::{Route, RoutingTable};
use uburst_sim::time::Nanos;

const CASES: u64 = 48;

#[test]
fn event_queue_pops_in_time_order() {
    let mut rng = Rng::new(0x51_4f_01);
    for case in 0..CASES {
        let n = rng.range(1, 500) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            let t = rng.below(1_000_000);
            q.schedule(
                Nanos(t),
                EventKind::Timer {
                    node: NodeId(0),
                    token: i as u64,
                },
            );
        }
        let mut last = Nanos::ZERO;
        let mut popped = 0;
        while let Some(e) = q.pop_until(Nanos::MAX) {
            assert!(e.time >= last, "case {case}: time went backwards");
            last = e.time;
            popped += 1;
        }
        assert_eq!(popped, n);
    }
}

#[test]
fn event_queue_ties_preserve_fifo() {
    let mut rng = Rng::new(0x51_4f_02);
    for _ in 0..CASES {
        let n = rng.range(1, 200);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(
                Nanos(42),
                EventKind::Timer {
                    node: NodeId(0),
                    token: i,
                },
            );
        }
        let mut expected = 0u64;
        while let Some(e) = q.pop_until(Nanos::MAX) {
            if let EventKind::Timer { token, .. } = e.kind {
                assert_eq!(token, expected);
                expected += 1;
            }
        }
    }
}

#[test]
fn segmentation_covers_every_byte() {
    let mut rng = Rng::new(0x51_4f_03);
    for _ in 0..CASES {
        let bytes = rng.below(50_000_000);
        let total = segments_for(bytes);
        // Segments carry the whole flow, no more than MSS each.
        let covered = u64::from(total) * u64::from(MSS);
        assert!(covered >= bytes);
        assert!(covered < bytes + u64::from(MSS) || bytes == 0);
        // Every segment's wire size is a valid frame.
        for seq in 0..total.min(3) {
            let w = segment_wire_size(bytes, seq);
            assert!((ACK_BYTES..=MTU_FRAME).contains(&w));
        }
        let last = segment_wire_size(bytes, total - 1);
        assert!((ACK_BYTES..=MTU_FRAME).contains(&last));
        // Payload accounting: total wire bytes minus per-segment headers
        // equals the application bytes (modulo minimum-frame padding on a
        // tiny final segment).
        if bytes > 0 && bytes.is_multiple_of(u64::from(MSS)) {
            let wire: u64 = (0..total)
                .map(|s| u64::from(segment_wire_size(bytes, s)))
                .sum();
            assert_eq!(wire - u64::from(total) * u64::from(HEADER_BYTES), bytes);
        }
    }
}

#[test]
fn serialization_time_is_monotone_in_size_and_speed() {
    let mut rng = Rng::new(0x51_4f_04);
    for _ in 0..CASES {
        let bytes_a = rng.range(64, 9000) as u32;
        let bytes_b = rng.range(64, 9000) as u32;
        let gbps = rng.range(1, 100) as u32;
        let slow = LinkSpec::gbps(f64::from(gbps), Nanos::ZERO);
        let fast = LinkSpec::gbps(f64::from(gbps) * 2.0, Nanos::ZERO);
        let (lo, hi) = if bytes_a < bytes_b {
            (bytes_a, bytes_b)
        } else {
            (bytes_b, bytes_a)
        };
        assert!(slow.ser_time(lo) <= slow.ser_time(hi));
        assert!(fast.ser_time(hi) <= slow.ser_time(hi));
        assert!(slow.ser_time(lo) > Nanos::ZERO);
    }
}

#[test]
fn ecmp_hash_is_consistent_and_complete() {
    let mut rng = Rng::new(0x51_4f_05);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let width = rng.range(2, 16) as u16;
        let n_keys = rng.range(1, 200) as usize;
        let mut t = RoutingTable::new(seed);
        let ports: Vec<PortId> = (0..width).map(PortId).collect();
        let g = t.add_group(ports.clone());
        t.set_default(Route::Group(g));
        for _ in 0..n_keys {
            let k = rng.next_u64();
            let p1 = t.lookup(NodeId(99), k, Nanos::ZERO).unwrap();
            let p2 = t.lookup(NodeId(99), k, Nanos::ZERO).unwrap();
            assert_eq!(p1, p2, "flow hashing must be consistent");
            assert!(ports.contains(&p1));
        }
    }
}

#[test]
fn rng_below_respects_bound() {
    let mut meta = Rng::new(0x51_4f_06);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n = meta.range(1, 1_000_000);
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            assert!(rng.below(n) < n);
        }
    }
}

#[test]
fn rng_streams_reproducible() {
    let mut meta = Rng::new(0x51_4f_07);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn rng_sample_indices_distinct() {
    let mut meta = Rng::new(0x51_4f_08);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let n = meta.range(1, 64) as usize;
        let frac = meta.f64();
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng::new(seed);
        let s = rng.sample_indices(n, k);
        assert_eq!(s.len(), k);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicates produced");
        assert!(s.iter().all(|&i| i < n));
    }
}

#[test]
fn nanos_arithmetic_consistency() {
    let mut rng = Rng::new(0x51_4f_09);
    for _ in 0..CASES {
        let a = rng.below(u64::MAX / 4);
        let b = rng.below(u64::MAX / 4);
        let (x, y) = (Nanos(a), Nanos(b));
        assert_eq!(x + y, y + x);
        assert_eq!((x + y).saturating_sub(y), x);
        assert_eq!(x.min(y) + x.max(y), x + y);
        if b > 0 {
            assert_eq!((x / b) * b + Nanos(a % b), x);
        }
    }
}
