//! A lightweight reliable transport.
//!
//! The racks the paper measured ran TCP. Simulating a full TCP stack would
//! dominate the simulator for little fidelity gain, so this module
//! implements the subset that shapes microburst behaviour:
//!
//! * window-limited sending with **slow start** and AIMD congestion
//!   avoidance (slow-start overshoot is a major µburst generator),
//! * **fast retransmit** on triple duplicate ACKs (NewReno-style `recover`
//!   guard so one loss event halves the window once),
//! * a coarse **retransmission timeout**,
//! * cumulative ACKs with out-of-order buffering at the receiver
//!   (retransmissions are go-back-one from the cumulative point).
//!
//! It deliberately omits: SACK, delayed ACKs, RTT estimation (the RTO is
//! fixed), ECN, and connection setup/teardown handshakes — none of which
//! change where bursts come from at the timescales under study.
//!
//! A [`TransportEndpoint`] is embedded in each host node. The host forwards
//! packets and timers to it and receives [`TransportEvent`]s back.

use std::collections::BTreeSet;

use crate::fasthash::{FxHashMap, FxHashSet};
use crate::nic::HostNic;
use crate::node::{Ctx, NodeId};
use crate::packet::{segment_wire_size, segments_for, FlowId, Packet, PacketKind};
use crate::time::Nanos;

/// High bit of a timer token marks it as owned by the transport.
pub const TRANSPORT_TOKEN_BIT: u64 = 1 << 63;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Initial congestion window, in segments (RFC 6928 uses 10).
    pub init_cwnd: u32,
    /// Hard window cap, in segments. Bounds per-flow buffer pressure the way
    /// receive windows do in production.
    pub max_cwnd: u32,
    /// Fixed retransmission timeout.
    pub rto: Nanos,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Enable ECN/DCTCP-style congestion response: switches with a marking
    /// threshold set CE on queued packets; the receiver echoes the mark and
    /// the sender scales its window down by an EWMA of the marked fraction
    /// (binary-feedback DCTCP approximation). Off by default — the paper's
    /// production network reacted to drops, and §7 discusses ECN as the
    /// lower-latency alternative this extension explores.
    pub ecn: bool,
    /// Receiver-side ACK coalescing window, modeling NIC interrupt
    /// coalescing + delayed ACKs: data arriving within this window is
    /// acknowledged by one cumulative ACK at its end. This is the mechanism
    /// the paper names when explaining why host pacing is ineffective
    /// (§7) — and it is what chops window-limited senders into the
    /// line-rate trains the paper measures as µbursts. Zero disables
    /// coalescing (ACK per segment).
    pub ack_coalesce: Nanos,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            init_cwnd: 10,
            max_cwnd: 64,
            rto: Nanos::from_millis(2),
            dupack_threshold: 3,
            ecn: false,
            ack_coalesce: Nanos::from_micros(25),
        }
    }
}

/// Events the transport reports to the embedding application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// A complete incoming flow was received.
    FlowReceived {
        /// The flow that completed.
        flow: FlowId,
        /// The sending host.
        src: NodeId,
        /// Application bytes delivered.
        bytes: u64,
        /// The sender's application tag.
        tag: u64,
    },
    /// A locally started flow was fully acknowledged.
    FlowSent {
        /// The flow that completed.
        flow: FlowId,
        /// The tag given to [`TransportEndpoint::start_flow`].
        tag: u64,
    },
}

#[derive(Debug)]
struct SendState {
    dst: NodeId,
    bytes: u64,
    total: u32,
    /// Next never-before-sent segment.
    next: u32,
    /// Cumulative ACK point: all segments `< cum` acknowledged.
    cum: u32,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// NewReno recovery high-water mark: no new fast retransmit until the
    /// cumulative point passes it.
    recover: u32,
    tag: u64,
    /// When the flow started (for completion-time accounting).
    started: Nanos,
    /// When the pending RTO should fire. Pushed forward on progress.
    rto_deadline: Nanos,
    /// Whether a timer event is in flight for this flow.
    timer_armed: bool,
    /// Consecutive timeouts (for exponential backoff).
    backoff: u32,
    /// Retransmitted segments (diagnostics).
    retransmits: u64,
    /// DCTCP: EWMA of the fraction of ACKs carrying ECN echoes.
    ecn_alpha: f64,
    /// DCTCP: no further ECN window reduction until `cum` passes this.
    ecn_recover: u32,
}

#[derive(Debug)]
struct RecvState {
    src: NodeId,
    bytes: u64,
    total: u32,
    tag: u64,
    cum: u32,
    out_of_order: BTreeSet<u32>,
    /// True while a coalesced-ACK timer is pending for this flow.
    ack_scheduled: bool,
    /// A CE-marked segment arrived since the last ACK we sent.
    ce_seen: bool,
}

/// One completed outgoing flow's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FctRecord {
    /// Application bytes transferred.
    pub bytes: u64,
    /// Flow completion time: start of `start_flow` to the final ACK.
    pub fct: Nanos,
    /// The application tag the flow carried.
    pub tag: u64,
}

/// Aggregated transport diagnostics for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Flows initiated locally.
    pub flows_started: u64,
    /// Locally initiated flows fully acknowledged.
    pub flows_sent: u64,
    /// Incoming flows fully received.
    pub flows_received: u64,
    /// Data segments retransmitted (any cause).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_retransmits: u64,
}

/// Per-host transport state. Embed in a host node next to its [`HostNic`].
#[derive(Debug)]
pub struct TransportEndpoint {
    host: NodeId,
    cfg: TransportConfig,
    next_flow: u32,
    sends: FxHashMap<FlowId, SendState>,
    recvs: FxHashMap<FlowId, RecvState>,
    /// Flows fully received; late retransmissions for these are ACKed and
    /// dropped without re-delivering to the application.
    completed_recv: FxHashSet<FlowId>,
    /// Completion records of locally started flows, in completion order.
    fcts: Vec<FctRecord>,
    /// Aggregate diagnostics.
    pub stats: TransportStats,
}

impl TransportEndpoint {
    /// An endpoint for `host` with the given tuning.
    pub fn new(host: NodeId, cfg: TransportConfig) -> Self {
        TransportEndpoint {
            host,
            cfg,
            next_flow: 0,
            sends: FxHashMap::default(),
            recvs: FxHashMap::default(),
            completed_recv: FxHashSet::default(),
            fcts: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    /// Completion-time records of finished outgoing flows (oldest first).
    pub fn fcts(&self) -> &[FctRecord] {
        &self.fcts
    }

    /// Moves the completion records out (clears the log).
    pub fn take_fcts(&mut self) -> Vec<FctRecord> {
        std::mem::take(&mut self.fcts)
    }

    /// Does this timer token belong to the transport?
    pub fn owns_token(token: u64) -> bool {
        token & TRANSPORT_TOKEN_BIT != 0
    }

    /// Number of in-progress outgoing flows.
    pub fn active_sends(&self) -> usize {
        self.sends.len()
    }

    /// Number of in-progress incoming flows.
    pub fn active_recvs(&self) -> usize {
        self.recvs.len()
    }

    /// The endpoint's tuning.
    pub fn config(&self) -> &TransportConfig {
        &self.cfg
    }

    /// Starts a flow of `bytes` application bytes to `dst`, tagged `tag`.
    /// The initial window is handed to the NIC immediately (back-to-back).
    pub fn start_flow(
        &mut self,
        ctx: &mut Ctx<'_>,
        nic: &mut HostNic,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        assert_ne!(dst, self.host, "flow to self");
        let flow = FlowId((u64::from(self.host.0) << 32) | u64::from(self.next_flow));
        self.next_flow = self.next_flow.wrapping_add(1);
        let total = segments_for(bytes);
        let st = SendState {
            dst,
            bytes,
            total,
            next: 0,
            cum: 0,
            cwnd: f64::from(self.cfg.init_cwnd),
            ssthresh: f64::from(self.cfg.max_cwnd),
            dup_acks: 0,
            recover: 0,
            tag,
            started: ctx.now(),
            rto_deadline: ctx.now() + self.cfg.rto,
            timer_armed: false,
            backoff: 0,
            retransmits: 0,
            // Linux's DCTCP initializes alpha to 1 so the very first mark
            // triggers a strong response instead of waiting ~16 windows for
            // the EWMA to ramp up; we follow that.
            ecn_alpha: 1.0,
            ecn_recover: 0,
        };
        self.sends.insert(flow, st);
        self.stats.flows_started += 1;
        self.send_window(ctx, nic, flow);
        self.arm_timer(ctx, flow);
        flow
    }

    /// Handles a transport packet addressed to this host. Returns any
    /// application-visible events.
    pub fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        nic: &mut HostNic,
        pkt: Packet,
    ) -> Vec<TransportEvent> {
        debug_assert_eq!(pkt.dst, self.host, "packet for another host");
        match pkt.kind {
            PacketKind::Data {
                seq,
                total,
                flow_bytes,
                tag,
                ..
            } => self.on_data(ctx, nic, pkt, seq, total, flow_bytes, tag),
            PacketKind::Ack { cum, ece } => self.on_ack(ctx, nic, pkt.flow, cum, ece),
            PacketKind::Raw { .. } => Vec::new(),
        }
    }

    /// Handles a transport timer token (see [`TRANSPORT_TOKEN_BIT`]).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, nic: &mut HostNic, token: u64) {
        let flow = FlowId(token & !TRANSPORT_TOKEN_BIT);
        if !self.sends.contains_key(&flow) {
            // Not a sender flow: either a coalesced-ACK timer for an
            // incoming flow, or a stale timer for a finished one.
            if let Some(rs) = self.recvs.get_mut(&flow) {
                rs.ack_scheduled = false;
                let (cum, src) = (rs.cum, rs.src);
                let ece = std::mem::take(&mut rs.ce_seen);
                self.send_ack_ece(ctx, nic, flow, src, cum, ece);
            }
            return;
        }
        let Some(st) = self.sends.get_mut(&flow) else {
            return; // unreachable; checked above
        };
        st.timer_armed = false;
        if ctx.now() < st.rto_deadline {
            // Progress pushed the deadline forward; sleep again.
            self.arm_timer(ctx, flow);
            return;
        }
        // Genuine timeout: multiplicative decrease, go back to the
        // cumulative point, back off the next deadline.
        self.stats.timeouts += 1;
        let st = self.sends.get_mut(&flow).expect("checked above");
        st.ssthresh = (st.cwnd / 2.0).max(2.0);
        st.cwnd = 2.0;
        st.dup_acks = 0;
        st.recover = st.next;
        st.backoff = (st.backoff + 1).min(6);
        st.rto_deadline = ctx.now() + Nanos(self.cfg.rto.as_nanos() << st.backoff);
        self.retransmit(ctx, nic, flow);
        self.arm_timer(ctx, flow);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        ctx: &mut Ctx<'_>,
        nic: &mut HostNic,
        pkt: Packet,
        seq: u32,
        total: u32,
        flow_bytes: u64,
        tag: u64,
    ) -> Vec<TransportEvent> {
        if self.completed_recv.contains(&pkt.flow) {
            // Late retransmission of a finished flow: re-ACK so the sender
            // can finish, but do not re-deliver.
            self.send_ack_ece(ctx, nic, pkt.flow, pkt.src, total, false);
            return Vec::new();
        }
        let ack_coalesce = self.cfg.ack_coalesce;
        let st = self.recvs.entry(pkt.flow).or_insert_with(|| RecvState {
            src: pkt.src,
            bytes: flow_bytes,
            total,
            tag,
            cum: 0,
            out_of_order: BTreeSet::new(),
            ack_scheduled: false,
            ce_seen: false,
        });
        if pkt.ce {
            st.ce_seen = true;
        }
        if seq >= st.cum {
            if seq == st.cum {
                st.cum += 1;
                while st.out_of_order.remove(&st.cum) {
                    st.cum += 1;
                }
            } else {
                st.out_of_order.insert(seq);
            }
        }
        let (cum, src) = (st.cum, st.src);
        let complete = cum == st.total;
        if complete || ack_coalesce.is_zero() {
            // Final ACKs flush immediately so completion isn't delayed.
            let ece = std::mem::take(&mut st.ce_seen);
            self.send_ack_ece(ctx, nic, pkt.flow, src, cum, ece);
        } else if !st.ack_scheduled {
            st.ack_scheduled = true;
            ctx.timer_in(ack_coalesce, TRANSPORT_TOKEN_BIT | pkt.flow.0);
        }
        if complete {
            let st = self.recvs.remove(&pkt.flow).expect("present");
            self.completed_recv.insert(pkt.flow);
            self.stats.flows_received += 1;
            vec![TransportEvent::FlowReceived {
                flow: pkt.flow,
                src: st.src,
                bytes: st.bytes,
                tag: st.tag,
            }]
        } else {
            Vec::new()
        }
    }

    fn on_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        nic: &mut HostNic,
        flow: FlowId,
        cum: u32,
        ece: bool,
    ) -> Vec<TransportEvent> {
        let ecn_enabled = self.cfg.ecn;
        let Some(st) = self.sends.get_mut(&flow) else {
            return Vec::new(); // flow already completed
        };
        if ecn_enabled {
            // Binary-feedback DCTCP: alpha <- (1-g) alpha + g * [ece],
            // and at most one multiplicative decrease per window.
            const G: f64 = 1.0 / 16.0;
            st.ecn_alpha = (1.0 - G) * st.ecn_alpha + G * if ece { 1.0 } else { 0.0 };
            if ece && cum >= st.ecn_recover {
                st.cwnd = (st.cwnd * (1.0 - st.ecn_alpha / 2.0)).max(2.0);
                st.ssthresh = st.cwnd;
                st.ecn_recover = st.next;
            }
        }
        if cum > st.cum {
            let newly = f64::from(cum - st.cum);
            st.cum = cum;
            st.dup_acks = 0;
            st.backoff = 0;
            st.rto_deadline = ctx.now() + self.cfg.rto;
            if st.cwnd < st.ssthresh {
                st.cwnd = (st.cwnd + newly).min(f64::from(self.cfg.max_cwnd));
            } else {
                st.cwnd = (st.cwnd + newly / st.cwnd).min(f64::from(self.cfg.max_cwnd));
            }
            if st.cum >= st.total {
                let st = self.sends.remove(&flow).expect("present");
                self.stats.flows_sent += 1;
                self.fcts.push(FctRecord {
                    bytes: st.bytes,
                    fct: ctx.now().saturating_sub(st.started),
                    tag: st.tag,
                });
                return vec![TransportEvent::FlowSent { flow, tag: st.tag }];
            }
            self.send_window(ctx, nic, flow);
        } else if cum == st.cum && st.next > st.cum {
            st.dup_acks += 1;
            if st.dup_acks >= self.cfg.dupack_threshold && st.cum >= st.recover {
                // Fast retransmit + NewReno-style single halving per window.
                st.ssthresh = (st.cwnd / 2.0).max(2.0);
                st.cwnd = st.ssthresh;
                st.recover = st.next;
                st.dup_acks = 0;
                st.rto_deadline = ctx.now() + self.cfg.rto;
                self.stats.fast_retransmits += 1;
                self.retransmit(ctx, nic, flow);
            }
        }
        Vec::new()
    }

    /// Sends every segment the window currently allows.
    fn send_window(&mut self, ctx: &mut Ctx<'_>, nic: &mut HostNic, flow: FlowId) {
        let st = self.sends.get_mut(&flow).expect("send_window on dead flow");
        while st.next < st.total && st.next - st.cum < st.cwnd as u32 {
            let seq = st.next;
            st.next += 1;
            let pkt = Self::data_packet(self.host, flow, st, seq, false);
            nic.send(ctx, pkt);
        }
    }

    /// Retransmits the segment at the cumulative point.
    fn retransmit(&mut self, ctx: &mut Ctx<'_>, nic: &mut HostNic, flow: FlowId) {
        let st = self.sends.get_mut(&flow).expect("retransmit on dead flow");
        if st.cum >= st.total {
            return;
        }
        let seq = st.cum;
        st.retransmits += 1;
        self.stats.retransmits += 1;
        let pkt = Self::data_packet(self.host, flow, st, seq, true);
        nic.send(ctx, pkt);
    }

    fn data_packet(host: NodeId, flow: FlowId, st: &SendState, seq: u32, retx: bool) -> Packet {
        Packet {
            flow,
            kind: PacketKind::Data {
                seq,
                total: st.total,
                flow_bytes: st.bytes,
                tag: st.tag,
                retx,
            },
            src: host,
            dst: st.dst,
            size: segment_wire_size(st.bytes, seq),
            created: Nanos::ZERO, // stamped by callers that care
            ce: false,
        }
    }

    fn send_ack_ece(
        &mut self,
        ctx: &mut Ctx<'_>,
        nic: &mut HostNic,
        flow: FlowId,
        to: NodeId,
        cum: u32,
        ece: bool,
    ) {
        let ack = Packet {
            flow,
            kind: PacketKind::Ack { cum, ece },
            src: self.host,
            dst: to,
            size: crate::packet::ACK_BYTES,
            created: ctx.now(),
            ce: false,
        };
        nic.send(ctx, ack);
    }

    fn arm_timer(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let st = self.sends.get_mut(&flow).expect("arm_timer on dead flow");
        if st.timer_armed {
            return;
        }
        st.timer_armed = true;
        let token = TRANSPORT_TOKEN_BIT | flow.0;
        ctx.timer_at(st.rto_deadline.max(ctx.now()), token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpolicy::BufferPolicyCfg;
    use crate::counters::null_sink;
    use crate::link::LinkSpec;
    use crate::nic::{HostNic, NicConfig, NIC_PACE_TOKEN};
    use crate::node::{Node, PortId};
    use crate::routing::{Route, RoutingTable};
    use crate::sim::Simulator;
    use crate::switch::{Switch, SwitchConfig};
    use std::any::Any;

    /// Minimal host: transport + NIC + a log of events.
    struct Host {
        nic: HostNic,
        transport: TransportEndpoint,
        events: Vec<TransportEvent>,
        /// (dst, bytes) flows to start on timer 0.
        to_send: Vec<(NodeId, u64)>,
    }

    impl Host {
        fn boxed(id_hint: u32, cfg: TransportConfig) -> Box<Self> {
            Box::new(Host {
                nic: HostNic::new(NicConfig::default()),
                transport: TransportEndpoint::new(NodeId(id_hint), cfg),
                events: Vec::new(),
                to_send: Vec::new(),
            })
        }
    }

    impl Node for Host {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            let evs = self.transport.on_packet(ctx, &mut self.nic, pkt);
            self.events.extend(evs);
        }
        fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
            self.nic.on_tx_complete(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == NIC_PACE_TOKEN {
                self.nic.on_timer(ctx);
            } else if TransportEndpoint::owns_token(token) {
                self.transport.on_timer(ctx, &mut self.nic, token);
            } else {
                for (dst, bytes) in std::mem::take(&mut self.to_send) {
                    self.transport
                        .start_flow(ctx, &mut self.nic, dst, bytes, 0xCAFE);
                }
            }
        }
        fn settle_lazy(&mut self, now: Nanos) {
            self.nic.settle_to(now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Two hosts joined by a switch whose receiver-side link is the
    /// bottleneck when `lossy` shrinks the buffer.
    fn pair_through_switch(lossy: bool) -> (Simulator, NodeId, NodeId) {
        pair_through_switch_cfg(lossy, TransportConfig::default(), None)
    }

    fn pair_through_switch_cfg(
        lossy: bool,
        tcfg: TransportConfig,
        ecn_threshold: Option<u64>,
    ) -> (Simulator, NodeId, NodeId) {
        let buffer = if lossy { 8 * 1024 } else { 12 << 20 };
        let alpha = if lossy { 0.5 } else { 2.0 };
        pair_custom(lossy, buffer, alpha, tcfg, ecn_threshold)
    }

    /// Fully parameterized two-host fixture: `bottleneck` selects a 1 Gbps
    /// receiver link (vs 10 Gbps), the rest is the switch configuration.
    fn pair_custom(
        bottleneck: bool,
        buffer_bytes: u64,
        alpha: f64,
        tcfg: TransportConfig,
        ecn_threshold: Option<u64>,
    ) -> (Simulator, NodeId, NodeId) {
        let lossy = bottleneck;
        let mut sim = Simulator::new();
        let a = sim.add_node(Host::boxed(0, tcfg));
        let b = sim.add_node(Host::boxed(1, tcfg));
        // Fix up the transport host ids now that real ids are known.
        sim.node_mut::<Host>(a).transport.host = a;
        sim.node_mut::<Host>(b).transport.host = b;

        let mut routing = RoutingTable::new(0);
        routing.set_route(a, Route::Port(PortId(0)));
        routing.set_route(b, Route::Port(PortId(1)));
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig {
                ports: 2,
                buffer_bytes,
                policy: BufferPolicyCfg::dt(alpha),
                ecn_threshold,
            },
            routing,
            null_sink(),
        )));
        sim.connect(
            (a, PortId(0)),
            (sw, PortId(0)),
            LinkSpec::gbps(10.0, Nanos(500)),
        );
        // Receiver link slower in the lossy case → queue at the switch.
        sim.connect(
            (b, PortId(0)),
            (sw, PortId(1)),
            if lossy {
                LinkSpec::gbps(1.0, Nanos(500))
            } else {
                LinkSpec::gbps(10.0, Nanos(500))
            },
        );
        (sim, a, b)
    }

    #[test]
    fn lossless_transfer_completes() {
        let (mut sim, a, b) = pair_through_switch(false);
        sim.node_mut::<Host>(a).to_send.push((b, 1_000_000));
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_millis(100));

        let ha = sim.node::<Host>(a);
        let hb = sim.node::<Host>(b);
        assert_eq!(ha.transport.stats.flows_sent, 1);
        assert_eq!(ha.transport.stats.retransmits, 0, "no loss, no retx");
        assert_eq!(hb.transport.stats.flows_received, 1);
        assert!(matches!(
            hb.events[0],
            TransportEvent::FlowReceived {
                bytes: 1_000_000,
                tag: 0xCAFE,
                ..
            }
        ));
        assert!(matches!(ha.events[0], TransportEvent::FlowSent { .. }));
        assert_eq!(ha.transport.active_sends(), 0);
        assert_eq!(hb.transport.active_recvs(), 0);
    }

    #[test]
    fn transfer_survives_heavy_loss() {
        let (mut sim, a, b) = pair_through_switch(true);
        sim.node_mut::<Host>(a).to_send.push((b, 500_000));
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_secs(5));

        let ha = sim.node::<Host>(a);
        let hb = sim.node::<Host>(b);
        assert_eq!(
            hb.transport.stats.flows_received, 1,
            "flow must complete despite drops (retx={}, timeouts={})",
            ha.transport.stats.retransmits, ha.transport.stats.timeouts
        );
        assert!(
            ha.transport.stats.retransmits > 0,
            "the tiny buffer must cause loss"
        );
    }

    #[test]
    fn many_parallel_flows_all_complete() {
        let (mut sim, a, b) = pair_through_switch(false);
        for _ in 0..20 {
            sim.node_mut::<Host>(a).to_send.push((b, 50_000));
        }
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_millis(200));
        assert_eq!(sim.node::<Host>(b).transport.stats.flows_received, 20);
        assert_eq!(sim.node::<Host>(a).transport.stats.flows_sent, 20);
    }

    #[test]
    fn zero_byte_flow_completes() {
        let (mut sim, a, b) = pair_through_switch(false);
        sim.node_mut::<Host>(a).to_send.push((b, 0));
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_millis(10));
        assert_eq!(sim.node::<Host>(b).transport.stats.flows_received, 1);
    }

    #[test]
    fn initial_window_is_back_to_back_burst() {
        // The defining microburst mechanism: a new flow dumps init_cwnd
        // segments onto the wire with no spacing.
        let (mut sim, a, b) = pair_through_switch(false);
        sim.node_mut::<Host>(a).to_send.push((b, 10_000_000));
        sim.schedule_timer(Nanos(0), a, 0);
        // Run just long enough for the first window, before any ACK returns.
        sim.run_until(Nanos::from_micros(5));
        let ha = sim.node::<Host>(a);
        assert!(
            ha.nic.sent >= 3,
            "several segments should be on the wire immediately, got {}",
            ha.nic.sent
        );
        assert_eq!(ha.transport.active_sends(), 1);
    }

    #[test]
    fn fct_records_are_kept() {
        let (mut sim, a, b) = pair_through_switch(false);
        sim.node_mut::<Host>(a).to_send.push((b, 300_000));
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_millis(100));
        let fcts = sim.node::<Host>(a).transport.fcts().to_vec();
        assert_eq!(fcts.len(), 1);
        assert_eq!(fcts[0].bytes, 300_000);
        assert_eq!(fcts[0].tag, 0xCAFE);
        // 300KB at 10G is ~240us minimum; through slow start it's more.
        assert!(fcts[0].fct > Nanos::from_micros(240), "{}", fcts[0].fct);
        assert!(fcts[0].fct < Nanos::from_millis(50), "{}", fcts[0].fct);
        // take_fcts drains.
        let taken = sim.node_mut::<Host>(a).transport.take_fcts();
        assert_eq!(taken.len(), 1);
        assert!(sim.node::<Host>(a).transport.fcts().is_empty());
    }

    #[test]
    fn ecn_keeps_queues_below_drop_point() {
        // 1G bottleneck behind a 64KB buffer (~28 frames of queue): slow
        // start overruns it without ECN; with marks at ~10 frames the
        // sender backs off before the drop point — the textbook DCTCP win.
        let run = |ecn: bool| {
            let tcfg = TransportConfig {
                ecn,
                ..TransportConfig::default()
            };
            let threshold = if ecn { Some(15_000) } else { None };
            let (mut sim, a, b) = pair_custom(true, 64 * 1024, 2.0, tcfg, threshold);
            sim.node_mut::<Host>(a).to_send.push((b, 400_000));
            sim.schedule_timer(Nanos(0), a, 0);
            sim.run_until(Nanos::from_secs(5));
            let received = sim.node::<Host>(b).transport.stats.flows_received;
            let retx = sim.node::<Host>(a).transport.stats.retransmits;
            (received, retx)
        };
        let (recv_plain, retx_plain) = run(false);
        let (recv_ecn, retx_ecn) = run(true);
        assert_eq!(recv_plain, 1);
        assert_eq!(recv_ecn, 1);
        assert!(retx_plain > 0, "the no-ECN run must actually overflow");
        assert!(
            retx_ecn * 2 < retx_plain,
            "ECN should avoid most loss-driven retransmits: {retx_ecn} vs {retx_plain}"
        );
    }

    #[test]
    fn ce_marks_are_echoed_and_shrink_the_window() {
        // With ECN and a sane buffer, a bottlenecked flow completes with no
        // RTOs at all: the window is held down by marks, not by losses.
        let tcfg = TransportConfig {
            ecn: true,
            ..TransportConfig::default()
        };
        let (mut sim, a, b) = pair_custom(true, 64 * 1024, 2.0, tcfg, Some(15_000));
        sim.node_mut::<Host>(a).to_send.push((b, 200_000));
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_secs(2));
        let ha = sim.node::<Host>(a);
        assert_eq!(ha.transport.stats.flows_sent, 1);
        assert_eq!(ha.transport.stats.timeouts, 0, "ECN should prevent RTOs");
    }

    #[test]
    fn ack_coalescing_reduces_ack_count() {
        let count_acks = |coalesce: Nanos| {
            let tcfg = TransportConfig {
                ack_coalesce: coalesce,
                ..TransportConfig::default()
            };
            let (mut sim, a, b) = pair_through_switch_cfg(false, tcfg, None);
            sim.node_mut::<Host>(a).to_send.push((b, 500_000));
            sim.schedule_timer(Nanos(0), a, 0);
            sim.run_until(Nanos::from_millis(100));
            assert_eq!(sim.node::<Host>(a).transport.stats.flows_sent, 1);
            // ACK count = receiver NIC sends minus... receiver only sends acks.
            sim.node::<Host>(b).nic.sent
        };
        let per_packet = count_acks(Nanos::ZERO);
        let coalesced = count_acks(Nanos::from_micros(25));
        assert!(
            coalesced * 3 < per_packet,
            "coalescing should slash ack volume: {coalesced} vs {per_packet}"
        );
    }

    #[test]
    fn flow_ids_are_unique_per_host() {
        let (mut sim, a, b) = pair_through_switch(false);
        for _ in 0..5 {
            sim.node_mut::<Host>(a).to_send.push((b, 100));
        }
        sim.schedule_timer(Nanos(0), a, 0);
        sim.run_until(Nanos::from_millis(10));
        let hb = sim.node::<Host>(b);
        let mut flows: Vec<FlowId> = hb
            .events
            .iter()
            .filter_map(|e| match e {
                TransportEvent::FlowReceived { flow, .. } => Some(*flow),
                _ => None,
            })
            .collect();
        flows.sort_unstable();
        flows.dedup();
        assert_eq!(flows.len(), 5);
    }
}
