//! Counter sink abstraction.
//!
//! Switches report every packet they handle to a [`CounterSink`]. The real
//! implementation lives in the `uburst-asic` crate (which models counter
//! storage classes and read latencies); the simulator only needs the write
//! side, defined here so the two crates don't depend on each other in a
//! cycle.
//!
//! Methods take `&self`: sinks use interior mutability because the switch
//! and the telemetry poller share them within the single-threaded simulator.

use std::rc::Rc;

use crate::node::PortId;
use crate::time::Nanos;

/// A deferred-accounting hook registered by a switch running in hybrid
/// fast-forward mode (see [`crate::fastfwd`]). Called with the sink itself
/// and a timestamp, it must apply every departure at or before that instant
/// to the sink, so that a counter read at the instant observes values
/// byte-identical to packet mode.
pub type FlushHook = Box<dyn Fn(&dyn CounterSink, Nanos)>;

/// Receives per-packet accounting from a switch.
pub trait CounterSink {
    /// A frame of `bytes` was received on `port`.
    fn count_rx(&self, port: PortId, bytes: u32);
    /// A frame of `bytes` finished transmitting out of `port`.
    fn count_tx(&self, port: PortId, bytes: u32);
    /// A frame of `bytes` destined to egress `port` was discarded because of
    /// buffer admission (a congestion discard, not corruption).
    fn count_drop(&self, port: PortId, bytes: u32);
    /// The shared buffer's occupancy changed to `used_bytes`. Sinks that
    /// model a peak register track the maximum between reads.
    fn buffer_level(&self, used_bytes: u64);
    /// Registers a hybrid-mode flush hook (see [`FlushHook`]). Sinks that
    /// are read mid-run at poll instants (the ASIC counter bank) store the
    /// hook and invoke it before every read; sinks nobody reads ignore it —
    /// their switches are settled by the simulator at run boundaries
    /// instead.
    fn register_flush(&self, _hook: FlushHook) {}
}

/// A sink that discards everything; for switches nobody measures.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCounters;

impl CounterSink for NullCounters {
    fn count_rx(&self, _port: PortId, _bytes: u32) {}
    fn count_tx(&self, _port: PortId, _bytes: u32) {}
    fn count_drop(&self, _port: PortId, _bytes: u32) {}
    fn buffer_level(&self, _used_bytes: u64) {}
}

/// Shared handle to a sink.
pub type SharedSink = Rc<dyn CounterSink>;

/// Convenience for the common "unmeasured switch" case.
pub fn null_sink() -> SharedSink {
    Rc::new(NullCounters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[derive(Default)]
    struct Probe {
        rx: Cell<u64>,
        tx: Cell<u64>,
        drops: Cell<u64>,
        peak: Cell<u64>,
    }

    impl CounterSink for Probe {
        fn count_rx(&self, _p: PortId, b: u32) {
            self.rx.set(self.rx.get() + u64::from(b));
        }
        fn count_tx(&self, _p: PortId, b: u32) {
            self.tx.set(self.tx.get() + u64::from(b));
        }
        fn count_drop(&self, _p: PortId, b: u32) {
            self.drops.set(self.drops.get() + u64::from(b));
        }
        fn buffer_level(&self, used: u64) {
            self.peak.set(self.peak.get().max(used));
        }
    }

    #[test]
    fn sinks_are_object_safe_and_shareable() {
        let probe = Rc::new(Probe::default());
        let sink: SharedSink = probe.clone();
        sink.count_rx(PortId(0), 100);
        sink.count_tx(PortId(1), 60);
        sink.count_drop(PortId(2), 40);
        sink.buffer_level(512);
        sink.buffer_level(128);
        assert_eq!(probe.rx.get(), 100);
        assert_eq!(probe.tx.get(), 60);
        assert_eq!(probe.drops.get(), 40);
        assert_eq!(probe.peak.get(), 512);
    }

    #[test]
    fn null_sink_is_inert() {
        let sink = null_sink();
        sink.count_rx(PortId(0), 1);
        sink.buffer_level(u64::MAX);
    }
}
