//! Table 2 — transition matrices of the burst Markov model + likelihood
//! ratios.
//!
//! Paper values: p(1|1)/p(1|0) ratios of 119.7 (Web), 45.1 (Cache),
//! 15.6 (Hadoop); all ≫ 1, showing that hot intervals are strongly
//! temporally correlated rather than independently arriving.

use std::fmt::Write;

use uburst_analysis::{fit_transition_matrix, hot_chain, HOT_THRESHOLD};
use uburst_sim::time::Nanos;
use uburst_workloads::scenario::RackType;

use crate::figures::common::collect_single_port_utils;
use crate::report::Table;
use crate::scale::Scale;

/// Paper's likelihood ratios for reference.
pub const PAPER_R: [(RackType, f64); 3] = [
    (RackType::Web, 119.7),
    (RackType::Cache, 45.1),
    (RackType::Hadoop, 15.6),
];

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 2: burst Markov model transition matrices ({} scale)",
        scale.label()
    )
    .unwrap();

    let mut table = Table::new(&[
        "rack",
        "p(1|0)",
        "p(0|0)",
        "p(1|1)",
        "p(0|1)",
        "r=p11/p01",
        "paper_r",
    ]);
    let mut measured = Vec::new();

    for (rack_type, paper_r) in PAPER_R {
        // Aggregate transition counts across rack instances by summing the
        // per-rack counts (equivalent to the paper's pooled MLE).
        let runs = collect_single_port_utils(scale, rack_type, Nanos::from_micros(25));
        let mut n01 = 0.0;
        let mut n0 = 0.0;
        let mut n11 = 0.0;
        let mut n1 = 0.0;
        for r in &runs {
            let chain = hot_chain(&r.utils, HOT_THRESHOLD);
            let m = fit_transition_matrix(&chain);
            if m.from0 > 0 {
                n01 += m.p01 * m.from0 as f64;
                n0 += m.from0 as f64;
            }
            if m.from1 > 0 {
                n11 += m.p11 * m.from1 as f64;
                n1 += m.from1 as f64;
            }
        }
        let p01 = n01 / n0;
        let p11 = if n1 > 0.0 { n11 / n1 } else { f64::NAN };
        let r = p11 / p01;
        measured.push((rack_type, r));
        table.row(&[
            rack_type.name().to_string(),
            format!("{p01:.4}"),
            format!("{:.4}", 1.0 - p01),
            format!("{p11:.3}"),
            format!("{:.3}", 1.0 - p11),
            format!("{r:.1}"),
            format!("{paper_r:.1}"),
        ]);
    }

    writeln!(out, "{}", table.render()).unwrap();
    writeln!(out, "paper-shape checks:").unwrap();
    let all_gt_one = measured.iter().all(|(_, r)| *r > 5.0);
    writeln!(
        out,
        "  [{}] every ratio >> 1: hot intervals are temporally correlated",
        if all_gt_one { "ok" } else { "MISS" }
    )
    .unwrap();
    let ordered = measured[0].1 > measured[1].1 && measured[1].1 > measured[2].1;
    writeln!(
        out,
        "  [{}] ordering r_web > r_cache > r_hadoop (got {:.1} / {:.1} / {:.1})",
        if ordered { "ok" } else { "MISS" },
        measured[0].1,
        measured[1].1,
        measured[2].1
    )
    .unwrap();
    out
}
