//! Reproduction harness for the paper's fig09. See
//! `uburst_bench::figures::fig09` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig09::run(scale));
}
