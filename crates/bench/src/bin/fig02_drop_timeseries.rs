//! Reproduction harness for the paper's fig02. See
//! `uburst_bench::figures::fig02` for methodology and paper targets.

fn main() {
    let scale = uburst_bench::Scale::from_env();
    print!("{}", uburst_bench::figures::fig02::run(scale));
}
