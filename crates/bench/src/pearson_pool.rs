//! Pooled evaluation of the Pearson correlation matrix.
//!
//! Fig. 8's heatmap and the calibration sweep compute k×k correlation
//! matrices over campaign-length series — the O(k²·n) dot products
//! dominate. The serial driver in `uburst-analysis` already centers each
//! series once ([`CenteredMatrix`]); this module fans the per-row
//! upper-triangle tails across the campaign worker pool
//! ([`crate::pool::run_jobs`]) and stitches them back **in submission
//! order**.
//!
//! Bit-identity at any thread count comes for free from the split:
//! [`CenteredMatrix::entry`] depends only on `(i, j)` — same float ops in
//! the same order regardless of which worker evaluates it — and
//! `run_jobs` returns row tails indexed by submission order, so
//! [`CenteredMatrix::assemble`] sees exactly what the serial loop would
//! have produced. `UBURST_THREADS=1` runs the rows inline on the caller,
//! which *is* the serial code path.

use uburst_analysis::CenteredMatrix;

use crate::pool::{run_jobs, run_jobs_on};

/// [`uburst_analysis::correlation_matrix`] with the row loop fanned over
/// the worker pool. Bit-identical to the serial function at any thread
/// count (asserted by `pooled_matrix_is_thread_count_invariant` below).
///
/// # Panics
/// Panics if series lengths differ.
pub fn correlation_matrix_pooled(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let c = CenteredMatrix::new(series);
    if c.is_empty() {
        return Vec::new();
    }
    let tails = run_jobs((0..c.len()).collect(), |i| c.row_tail(i));
    c.assemble(tails)
}

/// [`correlation_matrix_pooled`] with an explicit thread count (see
/// [`run_jobs_on`]), bypassing `UBURST_THREADS` and the global budget.
/// Tests use this to pin both sides of the invariance assertion.
pub fn correlation_matrix_pooled_on(threads: usize, series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let c = CenteredMatrix::new(series);
    if c.is_empty() {
        return Vec::new();
    }
    let tails = run_jobs_on(threads, (0..c.len()).collect(), |i| c.row_tail(i));
    c.assemble(tails)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_analysis::correlation_matrix;

    fn series(k: usize, n: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut out: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            })
            .collect();
        // A flat series exercises the zero-variance path.
        out[k / 2] = vec![0.25; n];
        out
    }

    /// The pooled matrix must match the serial one to the bit for every
    /// thread count — the report strings rendered from it depend on it.
    #[test]
    fn pooled_matrix_is_thread_count_invariant() {
        let s = series(9, 401);
        let serial = correlation_matrix(&s);
        for threads in [1, 2, 4, 8] {
            let pooled = correlation_matrix_pooled_on(threads, &s);
            assert_eq!(pooled.len(), serial.len());
            for (i, (pr, sr)) in pooled.iter().zip(&serial).enumerate() {
                for (j, (p, r)) in pr.iter().zip(sr).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        r.to_bits(),
                        "entry ({i},{j}) differs at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_matrix_uses_the_global_pool() {
        let s = series(5, 101);
        assert_eq!(correlation_matrix_pooled(&s), correlation_matrix(&s));
        assert!(correlation_matrix_pooled(&[]).is_empty());
    }
}
