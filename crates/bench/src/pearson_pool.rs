//! Pooled evaluation of the Pearson correlation matrix.
//!
//! Fig. 8's heatmap and the calibration sweep compute k×k correlation
//! matrices over campaign-length series — the O(k²·n) dot products
//! dominate. The serial driver in `uburst-analysis` already centers each
//! series once ([`CenteredMatrix`]); this module fans the **linearized
//! upper triangle** across the campaign worker pool
//! ([`crate::pool::run_jobs`]) and stitches the pieces back in submission
//! order.
//!
//! The unit of work is a contiguous range of pair indices, not a row.
//! Row-tail jobs are pathologically unbalanced — row 0 carries `k-1`
//! dot products and row `k-1` carries none, so one worker drags the whole
//! matrix while the rest idle. Every pair costs the same `O(n)`, so a
//! fixed budget of near-equal pair ranges ([`PAIR_CHUNKS`], several per
//! worker at any realistic thread count, to absorb scheduling jitter)
//! keeps all workers busy to the end and lets `pearson_pooled` throughput
//! actually scale with `UBURST_THREADS`.
//!
//! Bit-identity at any thread count comes for free from the split:
//! [`CenteredMatrix::entry`] depends only on `(i, j)` — same float ops in
//! the same order regardless of which worker evaluates it — and
//! `run_jobs` returns chunks indexed by submission order, so concatenating
//! them reproduces the row-major upper triangle exactly as the serial
//! loop emits it. `UBURST_THREADS=1` runs the chunks inline on the
//! caller, which *is* the serial code path.

use uburst_analysis::CenteredMatrix;

use crate::pool::{run_jobs, run_jobs_on};

/// Target number of pair-range chunks per matrix. Fixed — **not** derived
/// from the thread count — for two reasons: the telemetry contract
/// (`uburst_pool_jobs_total` counts submitted jobs, and a snapshot must
/// be a function of the work, never of `UBURST_THREADS`), and balance
/// (64 chunks give any plausible worker count several chunks each, so a
/// straggling chunk is back-filled by idle workers instead of setting
/// the critical path).
const PAIR_CHUNKS: usize = 64;

/// Number of upper-triangle pairs of a `k`-series matrix.
fn n_pairs(k: usize) -> usize {
    k * (k - 1) / 2
}

/// The pair at linear index `p` of the row-major upper triangle
/// (`(0,1), (0,2), …, (0,k-1), (1,2), …`).
fn pair_at(k: usize, mut p: usize) -> (usize, usize) {
    let mut i = 0;
    loop {
        let row = k - 1 - i;
        if p < row {
            return (i, i + 1 + p);
        }
        p -= row;
        i += 1;
    }
}

/// Splits `[0, total)` into at most `chunks` non-empty, near-equal,
/// contiguous ranges.
fn pair_ranges(total: usize, chunks: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, total);
    let base = total / chunks;
    let rem = total % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Evaluates the entries for one pair range, in linear-index order.
fn eval_range(c: &CenteredMatrix, (start, end): (usize, usize)) -> Vec<f64> {
    let k = c.len();
    let mut out = Vec::with_capacity(end - start);
    let (mut i, mut j) = pair_at(k, start);
    for _ in start..end {
        out.push(c.entry(i, j));
        j += 1;
        if j == k {
            i += 1;
            j = i + 1;
        }
    }
    out
}

/// Rebuilds the full symmetric matrix from the concatenated chunk results
/// (which are exactly the row-major upper triangle).
fn stitch(c: &CenteredMatrix, parts: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let k = c.len();
    let mut flat = parts.into_iter().flatten();
    let tails: Vec<Vec<f64>> = (0..k)
        .map(|i| flat.by_ref().take(k - 1 - i).collect())
        .collect();
    c.assemble(tails)
}

/// [`uburst_analysis::correlation_matrix`] with the upper triangle fanned
/// over the worker pool in balanced pair ranges. Bit-identical to the
/// serial function at any thread count (asserted by
/// `pooled_matrix_is_thread_count_invariant` below).
///
/// # Panics
/// Panics if series lengths differ.
pub fn correlation_matrix_pooled(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let c = CenteredMatrix::new(series);
    if c.is_empty() {
        return Vec::new();
    }
    let ranges = pair_ranges(n_pairs(c.len()), PAIR_CHUNKS);
    let parts = run_jobs(ranges, |r| eval_range(&c, r));
    stitch(&c, parts)
}

/// [`correlation_matrix_pooled`] with an explicit thread count (see
/// [`run_jobs_on`]), bypassing `UBURST_THREADS` and the global budget.
/// Tests use this to pin both sides of the invariance assertion.
pub fn correlation_matrix_pooled_on(threads: usize, series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let c = CenteredMatrix::new(series);
    if c.is_empty() {
        return Vec::new();
    }
    let ranges = pair_ranges(n_pairs(c.len()), PAIR_CHUNKS);
    let parts = run_jobs_on(threads, ranges, |r| eval_range(&c, r));
    stitch(&c, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_analysis::correlation_matrix;

    fn series(k: usize, n: usize) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut out: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            })
            .collect();
        // A flat series exercises the zero-variance path.
        out[k / 2] = vec![0.25; n];
        out
    }

    #[test]
    fn pair_indexing_walks_the_upper_triangle() {
        for k in [2usize, 3, 5, 9, 24] {
            let mut p = 0;
            for i in 0..k {
                for j in (i + 1)..k {
                    assert_eq!(pair_at(k, p), (i, j), "k={k} p={p}");
                    p += 1;
                }
            }
            assert_eq!(p, n_pairs(k));
        }
    }

    #[test]
    fn pair_ranges_cover_exactly_without_empties() {
        for total in [0usize, 1, 2, 7, 100, 276] {
            for chunks in [1usize, 2, 8, 32, 500] {
                let ranges = pair_ranges(total, chunks);
                let mut next = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, next, "contiguous");
                    assert!(e > s, "non-empty");
                    next = e;
                }
                assert_eq!(next, total, "covers [0,{total})");
                if total > 0 {
                    assert!(ranges.len() <= chunks.max(1));
                }
            }
        }
    }

    /// The pooled matrix must match the serial one to the bit for every
    /// thread count — the report strings rendered from it depend on it.
    #[test]
    fn pooled_matrix_is_thread_count_invariant() {
        let s = series(9, 401);
        let serial = correlation_matrix(&s);
        for threads in [1, 2, 4, 8] {
            let pooled = correlation_matrix_pooled_on(threads, &s);
            assert_eq!(pooled.len(), serial.len());
            for (i, (pr, sr)) in pooled.iter().zip(&serial).enumerate() {
                for (j, (p, r)) in pr.iter().zip(sr).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        r.to_bits(),
                        "entry ({i},{j}) differs at {threads} threads"
                    );
                }
            }
        }
    }

    /// Matrices too small to fill every chunk (k(k-1)/2 < threads×8) must
    /// still come back exact — the range splitter clamps, never pads.
    #[test]
    fn tiny_matrices_survive_chunk_clamping() {
        for k in [1usize, 2, 3, 4] {
            let s = series(k.max(1), 37);
            let serial = correlation_matrix(&s);
            for threads in [1, 4, 16] {
                assert_eq!(correlation_matrix_pooled_on(threads, &s), serial, "k={k}");
            }
        }
    }

    #[test]
    fn pooled_matrix_uses_the_global_pool() {
        let s = series(5, 101);
        assert_eq!(correlation_matrix_pooled(&s), correlation_matrix(&s));
        assert!(correlation_matrix_pooled(&[]).is_empty());
    }
}
