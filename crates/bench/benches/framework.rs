//! Criterion benchmarks for the collection framework: how fast the
//! building blocks run on the host (distinct from the simulated-time
//! behaviour the figures measure).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use uburst_asic::{AccessModel, AsicCounters, CounterId};
use uburst_core::batch::{Batch, BatchPolicy, Batcher, SourceId};
use uburst_core::collector::Collector;
use uburst_core::poller::Poller;
use uburst_core::series::Series;
use uburst_core::spec::CampaignConfig;
use uburst_sim::counters::CounterSink;
use uburst_sim::events::{EventKind, EventQueue};
use uburst_sim::node::{NodeId, PortId};
use uburst_sim::sim::Simulator;
use uburst_sim::time::Nanos;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(
                        Nanos((i * 7919) % 100_000),
                        EventKind::Timer {
                            node: NodeId(0),
                            token: i,
                        },
                    );
                }
                while let Some(e) = q.pop_until(Nanos::MAX) {
                    black_box(e.time);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_counter_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("asic_counters");
    let bank = AsicCounters::new(32);
    g.throughput(Throughput::Elements(1));
    g.bench_function("count_tx", |b| {
        b.iter(|| bank.count_tx(black_box(PortId(3)), black_box(1500)))
    });
    g.bench_function("read_byte_counter", |b| {
        b.iter(|| black_box(bank.read(CounterId::TxBytes(PortId(3)))))
    });
    g.bench_function("poll_cost_model_4_counters", |b| {
        let access = AccessModel::default();
        let ids: Vec<CounterId> = (0..4).map(|p| CounterId::TxBytes(PortId(p))).collect();
        b.iter(|| black_box(access.poll_cost(&ids)))
    });
    g.finish();
}

fn bench_poller_loop(c: &mut Criterion) {
    // Host cost of simulating one second of 25us polling on an idle bank.
    let mut g = c.benchmark_group("poller");
    g.sample_size(20);
    g.bench_function("simulate_1s_at_25us", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let bank = AsicCounters::new_shared(4);
            let poller = Poller::in_memory(
                bank,
                AccessModel::default(),
                CampaignConfig::single(
                    "bytes",
                    CounterId::TxBytes(PortId(0)),
                    Nanos::from_micros(25),
                ),
                1,
            );
            let id = poller.spawn(&mut sim, Nanos::ZERO, Nanos::from_secs(1));
            sim.run_until(Nanos::MAX);
            black_box(sim.node_mut::<Poller>(id).stats().polls)
        })
    });
    g.finish();
}

fn bench_batcher(c: &mut Criterion) {
    let mut g = c.benchmark_group("batcher");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("record_10k_samples", |b| {
        b.iter_batched(
            || {
                Batcher::new(
                    SourceId(0),
                    "bench",
                    vec![CounterId::TxBytes(PortId(0))],
                    BatchPolicy::default(),
                )
            },
            |mut batcher| {
                for i in 0..10_000u64 {
                    black_box(batcher.record(Nanos(i * 25_000), &[i]));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_collector(c: &mut Criterion) {
    let mut g = c.benchmark_group("collector");
    g.sample_size(20);
    let make_batch = |k: u64| {
        let mut s = Series::new();
        for i in 0..1_000u64 {
            s.push(Nanos(k * 1_000_000 + i * 25), i);
        }
        Batch {
            source: SourceId(0),
            campaign: "bench".into(),
            counter: CounterId::TxBytes(PortId(0)),
            samples: s,
        }
    };
    g.throughput(Throughput::Elements(100 * 1_000));
    g.bench_function("ingest_100_batches_of_1k", |b| {
        b.iter(|| {
            let (collector, tx) = Collector::start(2, 64);
            for k in 0..100u64 {
                tx.send(make_batch(k)).expect("send");
            }
            drop(tx);
            let (store, n) = collector.shutdown();
            black_box((store.total_samples(), n))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_counter_ops,
    bench_poller_loop,
    bench_batcher,
    bench_collector
);
criterion_main!(benches);
