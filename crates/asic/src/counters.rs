//! The counter banks a switching ASIC maintains.
//!
//! Models the three counter families the paper polls (§4.1):
//!
//! * **Byte/packet counters** — cumulative per-port RX/TX counts. Reads are
//!   non-destructive; rates are computed from deltas, so a missed sampling
//!   interval loses resolution but never bytes ("we still capture the total
//!   number of bytes and correct timestamp", Table 1 caption).
//! * **Packet-size histograms** — per-port RMON-style bins ("The ASIC bins
//!   packets into several buckets", §5.3).
//! * **Peak buffer occupancy** — a read-and-clear register tracking the
//!   maximum shared-buffer fill since the last read, "so that we do not miss
//!   any congestion events" (§4.1).
//!
//! All cells use interior mutability (`Cell`) because the switch data path
//! writes them while the polling framework holds a shared reference.

use std::cell::Cell;
use std::rc::Rc;

use uburst_sim::counters::CounterSink;
use uburst_sim::node::PortId;

/// RMON-style packet-size histogram bin boundaries (inclusive upper edges,
/// in frame bytes). Mirrors the etherStatsPkts64/128/256/512/1024/1518
/// groups merchant ASICs implement, plus an oversize bin.
pub const SIZE_BIN_EDGES: [u32; 6] = [64, 127, 255, 511, 1023, 1518];

/// Number of histogram bins (the edges above plus the oversize bin).
pub const N_SIZE_BINS: usize = SIZE_BIN_EDGES.len() + 1;

/// Human-readable labels for the size bins, index-aligned with counters.
pub const SIZE_BIN_LABELS: [&str; N_SIZE_BINS] = [
    "<=64",
    "65-127",
    "128-255",
    "256-511",
    "512-1023",
    "1024-1518",
    ">1518",
];

/// Maps a frame size to its histogram bin index.
pub fn size_bin(bytes: u32) -> usize {
    SIZE_BIN_EDGES
        .iter()
        .position(|&edge| bytes <= edge)
        .unwrap_or(N_SIZE_BINS - 1)
}

/// Names one readable counter instance on the ASIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterId {
    /// Cumulative bytes received on a port.
    RxBytes(PortId),
    /// Cumulative frames received on a port.
    RxPackets(PortId),
    /// Cumulative bytes transmitted out of a port.
    TxBytes(PortId),
    /// Cumulative frames transmitted out of a port.
    TxPackets(PortId),
    /// Cumulative congestion discards charged to an egress port.
    Drops(PortId),
    /// One bin of the received-frame size histogram.
    RxSizeHist(PortId, u8),
    /// One bin of the transmitted-frame size histogram.
    TxSizeHist(PortId, u8),
    /// Instantaneous shared-buffer occupancy in bytes.
    BufferLevel,
    /// Peak shared-buffer occupancy since the last read (read-and-clear).
    BufferPeak,
}

impl CounterId {
    /// Is reading this counter destructive (read-and-clear)?
    pub fn is_read_and_clear(self) -> bool {
        matches!(self, CounterId::BufferPeak)
    }

    /// Is this a cumulative (monotonically increasing) counter, as opposed
    /// to a gauge? Only cumulative counters wrap at the register width and
    /// need wrap-aware delta decoding on the collection side.
    pub fn is_cumulative(self) -> bool {
        !matches!(self, CounterId::BufferLevel | CounterId::BufferPeak)
    }
}

#[derive(Debug, Default)]
struct PortBank {
    rx_bytes: Cell<u64>,
    rx_packets: Cell<u64>,
    tx_bytes: Cell<u64>,
    tx_packets: Cell<u64>,
    drops_packets: Cell<u64>,
    rx_hist: [Cell<u64>; N_SIZE_BINS],
    tx_hist: [Cell<u64>; N_SIZE_BINS],
}

/// The full counter state of one ASIC.
///
/// Implements [`CounterSink`] so a [`uburst_sim::switch::Switch`] writes it
/// directly; the telemetry framework reads it through [`AsicCounters::read`].
#[derive(Debug)]
pub struct AsicCounters {
    ports: Vec<PortBank>,
    buffer_level: Cell<u64>,
    buffer_peak: Cell<u64>,
}

impl AsicCounters {
    /// A zeroed counter bank for a switch with `n_ports` ports, wrapped for
    /// sharing between the switch and the poller.
    pub fn new_shared(n_ports: usize) -> Rc<Self> {
        Rc::new(Self::new(n_ports))
    }

    /// A zeroed counter bank for a switch with `n_ports` ports.
    pub fn new(n_ports: usize) -> Self {
        AsicCounters {
            ports: (0..n_ports).map(|_| PortBank::default()).collect(),
            buffer_level: Cell::new(0),
            buffer_peak: Cell::new(0),
        }
    }

    /// Number of per-port banks.
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    fn bank(&self, port: PortId) -> &PortBank {
        &self.ports[port.0 as usize]
    }

    /// Reads one counter. `BufferPeak` is destructive: it returns the peak
    /// since the previous read and re-seeds the register with the current
    /// level, exactly like the hardware register the paper used.
    pub fn read(&self, id: CounterId) -> u64 {
        match id {
            CounterId::RxBytes(p) => self.bank(p).rx_bytes.get(),
            CounterId::RxPackets(p) => self.bank(p).rx_packets.get(),
            CounterId::TxBytes(p) => self.bank(p).tx_bytes.get(),
            CounterId::TxPackets(p) => self.bank(p).tx_packets.get(),
            CounterId::Drops(p) => self.bank(p).drops_packets.get(),
            CounterId::RxSizeHist(p, b) => self.bank(p).rx_hist[b as usize].get(),
            CounterId::TxSizeHist(p, b) => self.bank(p).tx_hist[b as usize].get(),
            CounterId::BufferLevel => self.buffer_level.get(),
            CounterId::BufferPeak => {
                let peak = self.buffer_peak.get();
                self.buffer_peak.set(self.buffer_level.get());
                peak
            }
        }
    }

    /// Reads a group of counters in order (one "poll" worth).
    pub fn read_group(&self, ids: &[CounterId]) -> Vec<u64> {
        ids.iter().map(|&id| self.read(id)).collect()
    }

    /// Peeks at the peak register without clearing (diagnostics only; the
    /// hardware analogue does not exist).
    pub fn peek_buffer_peak(&self) -> u64 {
        self.buffer_peak.get()
    }
}

impl CounterSink for AsicCounters {
    fn count_rx(&self, port: PortId, bytes: u32) {
        let b = self.bank(port);
        b.rx_bytes.set(b.rx_bytes.get() + u64::from(bytes));
        b.rx_packets.set(b.rx_packets.get() + 1);
        let bin = &b.rx_hist[size_bin(bytes)];
        bin.set(bin.get() + 1);
    }

    fn count_tx(&self, port: PortId, bytes: u32) {
        let b = self.bank(port);
        b.tx_bytes.set(b.tx_bytes.get() + u64::from(bytes));
        b.tx_packets.set(b.tx_packets.get() + 1);
        let bin = &b.tx_hist[size_bin(bytes)];
        bin.set(bin.get() + 1);
    }

    fn count_drop(&self, port: PortId, _bytes: u32) {
        let b = self.bank(port);
        b.drops_packets.set(b.drops_packets.get() + 1);
    }

    fn buffer_level(&self, used_bytes: u64) {
        self.buffer_level.set(used_bytes);
        if used_bytes > self.buffer_peak.get() {
            self.buffer_peak.set(used_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bins_cover_edges() {
        assert_eq!(size_bin(0), 0);
        assert_eq!(size_bin(64), 0);
        assert_eq!(size_bin(65), 1);
        assert_eq!(size_bin(127), 1);
        assert_eq!(size_bin(128), 2);
        assert_eq!(size_bin(512), 4);
        assert_eq!(size_bin(1518), 5);
        assert_eq!(size_bin(1519), 6);
        assert_eq!(size_bin(9000), 6);
    }

    #[test]
    fn rx_accounting() {
        let c = AsicCounters::new(2);
        c.count_rx(PortId(0), 100);
        c.count_rx(PortId(0), 1500);
        c.count_rx(PortId(1), 64);
        assert_eq!(c.read(CounterId::RxBytes(PortId(0))), 1600);
        assert_eq!(c.read(CounterId::RxPackets(PortId(0))), 2);
        assert_eq!(c.read(CounterId::RxBytes(PortId(1))), 64);
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(0), 1)), 1); // 100B
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(0), 5)), 1); // 1500B
        assert_eq!(c.read(CounterId::RxSizeHist(PortId(1), 0)), 1); // 64B
    }

    #[test]
    fn tx_and_drop_accounting() {
        let c = AsicCounters::new(1);
        c.count_tx(PortId(0), 1000);
        c.count_drop(PortId(0), 1500);
        c.count_drop(PortId(0), 1500);
        assert_eq!(c.read(CounterId::TxBytes(PortId(0))), 1000);
        assert_eq!(c.read(CounterId::TxPackets(PortId(0))), 1);
        assert_eq!(c.read(CounterId::Drops(PortId(0))), 2);
    }

    #[test]
    fn reads_are_nondestructive_except_peak() {
        let c = AsicCounters::new(1);
        c.count_rx(PortId(0), 500);
        for _ in 0..3 {
            assert_eq!(c.read(CounterId::RxBytes(PortId(0))), 500);
        }
    }

    #[test]
    fn peak_register_semantics() {
        let c = AsicCounters::new(1);
        c.buffer_level(1000);
        c.buffer_level(5000);
        c.buffer_level(2000);
        assert_eq!(c.read(CounterId::BufferLevel), 2000);
        // First read returns the peak...
        assert_eq!(c.read(CounterId::BufferPeak), 5000);
        // ...and re-seeds with the current level.
        assert_eq!(c.read(CounterId::BufferPeak), 2000);
        // A new excursion is captured even if we never sample during it.
        c.buffer_level(9000);
        c.buffer_level(0);
        assert_eq!(c.read(CounterId::BufferPeak), 9000);
        assert_eq!(c.read(CounterId::BufferPeak), 0);
    }

    #[test]
    fn read_group_orders_values() {
        let c = AsicCounters::new(2);
        c.count_rx(PortId(0), 10);
        c.count_tx(PortId(1), 20);
        let vals = c.read_group(&[
            CounterId::RxBytes(PortId(0)),
            CounterId::TxBytes(PortId(1)),
            CounterId::Drops(PortId(0)),
        ]);
        assert_eq!(vals, vec![10, 20, 0]);
    }

    #[test]
    fn histogram_totals_match_packet_counts() {
        let c = AsicCounters::new(1);
        let sizes = [64, 65, 100, 300, 700, 1400, 1514, 2000];
        for s in sizes {
            c.count_rx(PortId(0), s);
        }
        let hist_total: u64 = (0..N_SIZE_BINS as u8)
            .map(|b| c.read(CounterId::RxSizeHist(PortId(0), b)))
            .sum();
        assert_eq!(hist_total, sizes.len() as u64);
        assert_eq!(c.read(CounterId::RxPackets(PortId(0))), sizes.len() as u64);
    }

    #[test]
    #[should_panic]
    fn out_of_range_port_panics() {
        let c = AsicCounters::new(1);
        c.read(CounterId::RxBytes(PortId(5)));
    }
}
