//! Hybrid packet/fluid fast-forward support.
//!
//! The paper's figures are built from counters polled every 10–25 µs, yet
//! the packet-mode simulator pays two events per hop per frame — a local
//! `TxComplete` when the egress finishes serializing plus the peer's
//! `PacketArrive`. For the long Hadoop background flows that dominate the
//! campaign benches, roughly half of all events are `TxComplete`s whose
//! only job is bookkeeping that is *already determined* at admission time.
//!
//! ## The exactness argument
//!
//! Every transmit path in the simulator is an unpaced work-conserving FIFO
//! (the host NIC's transmit ring and each switch egress queue). For such a
//! queue the departure time of the `j`-th admitted frame is a closed-form
//! recurrence over admission instants:
//!
//! ```text
//! dep_j = max(adm_j, dep_{j-1}) + ser(size_j)
//! ```
//!
//! with `ser` the deterministic [`LinkSpec::ser_time`](crate::link::LinkSpec)
//! serialization time. Nothing that happens after admission can change
//! `dep_j` — admission control (shared-buffer dynamic thresholds, NIC queue
//! limits) runs *before* a frame joins the FIFO, and drops never join it.
//! Hybrid mode therefore integrates the drain analytically: at admission it
//! computes `dep_j` in closed form, schedules the peer's `PacketArrive`
//! directly at `dep_j + propagation`, and parks the `(dep_j, size_j)` pair
//! in a departure book. The `TxComplete` event is never scheduled; its
//! accounting (TX counters, buffer occupancy release) is *settled* lazily —
//! at the next arrival touching the same queue, at a counter-poll instant
//! (see `AsicCounters::flush_to` in `uburst-asic`), and when
//! [`Simulator::run_until`](crate::sim::Simulator::run_until) returns.
//! Because every observation point settles first, every observable value —
//! per-port counters, buffer level/peak registers, switch statistics — is
//! byte-identical to packet mode; this is a lazy-evaluation refactor, not an
//! approximation, and `crates/bench/tests/hybrid_equivalence.rs` diffs the
//! sampled timelines of every scenario in both modes to prove it.
//!
//! ## Fallback rules (when fast-forward is refused)
//!
//! * **Paced NICs** (`NicConfig::pace_bps = Some(_)`): the pacer's token
//!   bucket makes the serialization start time depend on timer wakeups, not
//!   only on FIFO order, so paced NICs keep the legacy event-per-frame path
//!   even in hybrid mode. The refusal is structural — the lazy path is
//!   simply never entered — so no scenario is silently approximated.
//! * **Injected faults** act on the *measurement* plane (bus timeouts,
//!   latency spikes, stale reads, counter wrap in `uburst-asic`), never on
//!   the data path, so they are mode-independent by construction;
//!   `tests/fault_tolerance.rs` asserts faulted campaigns decode to
//!   identical timelines in both modes.
//!
//! The mode is selected per [`Simulator`](crate::sim::Simulator) — from the
//! `UBURST_HYBRID` environment variable by default (unset means **on**),
//! or explicitly via `Simulator::set_hybrid` — and must not flip mid-run.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::node::PortId;
use crate::time::Nanos;

/// Process-wide default for hybrid mode, read once from `UBURST_HYBRID`.
/// Unset or any value other than `0`/`false`/`off`/`no` enables it.
pub fn hybrid_default() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| match std::env::var("UBURST_HYBRID") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    })
}

/// Admitted-but-unsettled departures of a multi-port FIFO stage.
///
/// The switch parks one entry per admitted frame; settling drains every
/// entry with `dep <= now` and applies its TX accounting. Departures of
/// one FIFO port are admitted in departure order, so the book is a deque
/// per port — `O(1)` push and pop with contiguous memory, where a global
/// min-heap over *frames* pays `O(log backlog)` scattered sift steps per
/// frame. Ports with a nonempty deque are indexed by a tiny min-heap on
/// `(front dep, port)` — tens of entries, two cache lines — so the
/// settle path touches `O(log ports)` words instead of scanning every
/// port, and the "is anything due?" probe is one peek at the root.
///
/// The heap needs no decrease-key bookkeeping: a port's front departure
/// only changes at the root (when its due prefix is drained — the new
/// front is *later*, a sift-down) or when an idle port turns busy (an
/// append + sift-up). Under congestion ports are rarely idle, so the
/// per-admission cost is just the deque push.
///
/// [`Self::drain_due`] (the hot path) settles due ports in `(front dep,
/// port)` order, each port's entire due prefix at once — not in global
/// time order: within one settle batch the entries only feed commutative
/// counter adds and buffer releases (same-port order, which FIFO
/// semantics do fix, is preserved by the deque), so the batch order is
/// unobservable — which is also why entries carry no insertion sequence:
/// `(dep, bytes)` is 16 bytes, and equal-time ties across ports resolve
/// by port index, deterministically.
#[derive(Debug, Default)]
pub struct DepartureBook {
    /// Per-port FIFO of `(dep, bytes)`, monotone in `dep`.
    fifos: Vec<VecDeque<(u64, u32)>>,
    /// Min-heap of `(front dep, port)` over ports with a nonempty fifo.
    heap: Vec<(u64, u16)>,
    len: usize,
}

impl DepartureBook {
    /// An empty book pre-sized for `ports` egress ports.
    pub fn with_ports(ports: usize) -> Self {
        DepartureBook {
            fifos: (0..ports).map(|_| VecDeque::new()).collect(),
            heap: Vec::with_capacity(ports),
            len: 0,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent] <= self.heap[i] {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < self.heap.len() && self.heap[l] < self.heap[min] {
                min = l;
            }
            if r < self.heap.len() && self.heap[r] < self.heap[min] {
                min = r;
            }
            if min == i {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }

    /// Re-keys the root after its port's fifo front changed: sift the new
    /// front down, or remove the root when the port went idle.
    fn fix_root(&mut self, p: u16) {
        match self.fifos[p as usize].front() {
            Some(&(d, _)) => self.heap[0] = (d, p),
            None => {
                let last = self.heap.len() - 1;
                self.heap.swap(0, last);
                self.heap.pop();
            }
        }
        self.sift_down(0);
    }

    /// Records that `bytes` depart `port` at `dep`.
    ///
    /// # Panics
    /// Panics (debug) if `dep` is not monotone for `port` — the closed-form
    /// FIFO recurrence guarantees it, and the deque depends on it.
    pub fn push(&mut self, dep: Nanos, port: PortId, bytes: u32) {
        let p = port.0 as usize;
        if p >= self.fifos.len() {
            self.fifos.resize_with(p + 1, VecDeque::new);
        }
        debug_assert!(
            self.fifos[p].back().is_none_or(|&(d, _)| d <= dep.0),
            "non-monotone departure on port {p}"
        );
        if self.fifos[p].is_empty() {
            self.heap.push((dep.0, port.0));
            self.sift_up(self.heap.len() - 1);
        }
        self.fifos[p].push_back((dep.0, bytes));
        self.len += 1;
    }

    /// Earliest unsettled departure time, if any.
    pub fn next_dep(&self) -> Option<Nanos> {
        self.heap.first().map(|&(d, _)| Nanos(d))
    }

    /// Pops the earliest departure (equal-time ties by port index) if it
    /// is due at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, PortId, u32)> {
        let &(d, p) = self.heap.first()?;
        if d > now.0 {
            return None;
        }
        let (_, bytes) = self.fifos[p as usize].pop_front().expect("busy port");
        self.len -= 1;
        self.fix_root(p);
        Some((Nanos(d), PortId(p), bytes))
    }

    /// Settles every departure due at or before `now` — each due port's
    /// whole due prefix at once, ports in `(front dep, port)` order (see
    /// the type docs for why batch order is unobservable) — calling
    /// `f(port, bytes)` per entry. Returns the earliest departure still
    /// pending (`u64::MAX` when none), so the caller's next "is anything
    /// due?" guard costs nothing extra.
    pub fn drain_due(&mut self, now: Nanos, mut f: impl FnMut(PortId, u32)) -> u64 {
        while let Some(&(d, p)) = self.heap.first() {
            if d > now.0 {
                return d;
            }
            let fifo = &mut self.fifos[p as usize];
            while let Some(&(d, bytes)) = fifo.front() {
                if d > now.0 {
                    break;
                }
                fifo.pop_front();
                self.len -= 1;
                f(PortId(p), bytes);
            }
            self.fix_root(p);
        }
        u64::MAX
    }

    /// Number of unsettled departures.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when every admitted frame has been settled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_departure_order_across_ports() {
        let mut book = DepartureBook::default();
        book.push(Nanos(200), PortId(0), 20);
        book.push(Nanos(300), PortId(0), 30);
        book.push(Nanos(100), PortId(1), 10);
        assert_eq!(book.next_dep(), Some(Nanos(100)));
        assert_eq!(book.pop_due(Nanos(250)), Some((Nanos(100), PortId(1), 10)));
        assert_eq!(book.pop_due(Nanos(250)), Some((Nanos(200), PortId(0), 20)));
        // 300 is not due yet.
        assert_eq!(book.pop_due(Nanos(250)), None);
        assert_eq!(book.len(), 1);
        assert_eq!(book.pop_due(Nanos(300)), Some((Nanos(300), PortId(0), 30)));
        assert!(book.is_empty());
    }

    #[test]
    fn drain_settles_exactly_the_due_prefix() {
        let mut book = DepartureBook::with_ports(3);
        book.push(Nanos(100), PortId(0), 1);
        book.push(Nanos(300), PortId(0), 2);
        book.push(Nanos(150), PortId(2), 3);
        book.push(Nanos(200), PortId(2), 4);
        let mut got = Vec::new();
        let next = book.drain_due(Nanos(200), |p, b| got.push((p.0, b)));
        // Port-by-port batch order; same-port FIFO order preserved.
        assert_eq!(got, vec![(0, 1), (2, 3), (2, 4)]);
        assert_eq!(book.len(), 1);
        assert_eq!(next, 300);
        assert_eq!(book.next_dep(), Some(Nanos(300)));
        assert_eq!(
            book.drain_due(Nanos(300), |p, b| got.push((p.0, b))),
            u64::MAX
        );
        assert_eq!(got.last(), Some(&(0u16, 2u32)));
        assert!(book.is_empty());
        assert_eq!(book.next_dep(), None);
    }

    #[test]
    fn equal_times_pop_in_port_order() {
        let mut book = DepartureBook::default();
        for p in 0..10u16 {
            book.push(Nanos(50), PortId(p), u32::from(p));
        }
        for p in 0..10u16 {
            assert_eq!(
                book.pop_due(Nanos(50)),
                Some((Nanos(50), PortId(p), u32::from(p)))
            );
        }
    }
}
