//! Packet metadata.
//!
//! The simulator never carries payload bytes — only the metadata that
//! queueing, routing, and the transport need. A data packet's wire size
//! includes Ethernet + IP + TCP framing so byte counters read like real
//! interface counters.

use crate::node::NodeId;
use crate::time::Nanos;

/// Identifies a transport flow (one direction of a connection).
///
/// The identifier doubles as the ECMP hash input, standing in for the
/// 5-tuple a real switch would hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Ethernet + IP + TCP framing bytes added to every data segment
/// (14 Ethernet + 4 FCS + 20 IP + 20 TCP + preamble/IFG are excluded since
/// serialization time models them via the link helper).
pub const HEADER_BYTES: u32 = 58;

/// Wire size of a bare ACK (headers only, rounded to minimum frame).
pub const ACK_BYTES: u32 = 64;

/// Standard maximum segment size for a 1500-byte MTU.
pub const MSS: u32 = 1442;

/// Full-size frame on the wire: MSS + framing = 1500 B MTU equivalent.
pub const MTU_FRAME: u32 = MSS + HEADER_BYTES;

/// What a packet is, from the transport's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A transport data segment.
    Data {
        /// Zero-based segment index within the flow.
        seq: u32,
        /// Total number of segments in the flow (so the receiver knows when
        /// the flow is complete without a separate control channel).
        total: u32,
        /// Total application bytes in the flow.
        flow_bytes: u64,
        /// Opaque application tag carried end-to-end (e.g. request id).
        tag: u64,
        /// True if this is a retransmission (excluded from goodput stats).
        retx: bool,
    },
    /// A cumulative acknowledgement for a flow.
    Ack {
        /// Next expected segment index (all segments `< cum` received).
        cum: u32,
        /// ECN echo: some data covered by this ACK arrived CE-marked.
        ece: bool,
    },
    /// An unreliable datagram, delivered directly to the application.
    Raw {
        /// Opaque application tag.
        tag: u64,
    },
}

/// A simulated packet.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Transport-level role of the packet.
    pub kind: PacketKind,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes on the wire (headers included).
    pub size: u32,
    /// Time the packet entered the network at its source.
    pub created: Nanos,
    /// ECN Congestion Experienced mark, set by switches whose queue
    /// exceeds their marking threshold.
    pub ce: bool,
}

impl Packet {
    /// The key switches hash for ECMP. Forward and reverse directions of a
    /// connection hash differently, as real 5-tuple hashing would.
    pub fn ecmp_key(&self) -> u64 {
        match self.kind {
            PacketKind::Ack { .. } => self.flow.0 ^ 0x9e37_79b9_7f4a_7c15,
            _ => self.flow.0,
        }
    }

    /// True for transport data segments (the "goodput direction").
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

/// Splits a flow of `bytes` application bytes into MSS-sized segments and
/// reports the wire size of segment `seq`.
pub fn segment_wire_size(bytes: u64, seq: u32) -> u32 {
    let total = segments_for(bytes);
    debug_assert!(seq < total);
    if seq + 1 < total {
        MTU_FRAME
    } else {
        // Last (or only) segment carries the remainder.
        let rem = (bytes - u64::from(seq) * u64::from(MSS)) as u32;
        (rem + HEADER_BYTES).max(ACK_BYTES)
    }
}

/// Number of MSS-sized segments needed for `bytes` application bytes.
/// A zero-byte flow still sends one (empty) segment so completion is
/// observable.
pub fn segments_for(bytes: u64) -> u32 {
    if bytes == 0 {
        return 1;
    }
    bytes.div_ceil(u64::from(MSS)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_round_up() {
        assert_eq!(segments_for(0), 1);
        assert_eq!(segments_for(1), 1);
        assert_eq!(segments_for(u64::from(MSS)), 1);
        assert_eq!(segments_for(u64::from(MSS) + 1), 2);
        assert_eq!(segments_for(10 * u64::from(MSS)), 10);
    }

    #[test]
    fn wire_sizes_cover_flow() {
        let bytes = 3 * u64::from(MSS) + 100;
        let total = segments_for(bytes);
        assert_eq!(total, 4);
        assert_eq!(segment_wire_size(bytes, 0), MTU_FRAME);
        assert_eq!(segment_wire_size(bytes, 2), MTU_FRAME);
        assert_eq!(segment_wire_size(bytes, 3), 100 + HEADER_BYTES);
    }

    #[test]
    fn tiny_flow_gets_min_frame() {
        assert_eq!(segment_wire_size(0, 0), ACK_BYTES);
        assert_eq!(segment_wire_size(1, 0), ACK_BYTES);
        assert_eq!(segment_wire_size(20, 0), 20 + HEADER_BYTES);
    }

    #[test]
    fn ecmp_key_differs_by_direction() {
        let mk = |kind| Packet {
            flow: FlowId(77),
            kind,
            src: NodeId(0),
            dst: NodeId(1),
            size: 100,
            created: Nanos::ZERO,
            ce: false,
        };
        let data = mk(PacketKind::Data {
            seq: 0,
            total: 1,
            flow_bytes: 10,
            tag: 0,
            retx: false,
        });
        let ack = mk(PacketKind::Ack { cum: 1, ece: false });
        assert_ne!(data.ecmp_key(), ack.ecmp_key());
        assert!(data.is_data());
        assert!(!ack.is_data());
    }
}
