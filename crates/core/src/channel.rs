//! A small bounded MPMC channel for the collector tier.
//!
//! The collector's shipping path needs three things the standard library's
//! `mpsc` does not provide together: multiple consumers (a pool of collector
//! workers draining one queue), non-blocking sends with an *eviction*
//! variant (the `DropOldest` shipping policy — the switch CPU must never
//! block on a slow collector), and disconnect detection on both sides for
//! structured shutdown. It is implemented in-repo on `Mutex` + `Condvar`
//! so the workspace stays dependency-free and bit-reproducible.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The sending half is disconnected: every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Why a [`Sender::try_send`] did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the value is handed back.
    Full(T),
    /// Every receiver is gone; the value is handed back.
    Disconnected(T),
}

/// The receiving half found the channel empty and every sender gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producing half of a channel. Cloneable; the channel disconnects for
/// receivers once every clone is dropped.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The consuming half of a channel. Cloneable (workers share one queue);
/// the channel disconnects for senders once every clone is dropped.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A channel holding at most `capacity` queued items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity))
}

/// A channel with no queue bound (test and tooling use).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Inner<T> {
    /// Locks the state, recovering from poisoning: a worker that panicked
    /// while holding the lock leaves a structurally intact queue, and the
    /// collector's graceful-degradation contract is to keep going.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_full(&self, state: &State<T>) -> bool {
        self.capacity.is_some_and(|cap| state.queue.len() >= cap)
    }
}

impl<T> Sender<T> {
    /// Blocks until the value is enqueued or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if !self.inner.is_full(&state) {
                state.queue.push_back(value);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues without blocking, failing if the queue is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.inner.is_full(&state) {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking, evicting the **oldest** queued item to
    /// make room when full. Returns the evicted item so the caller can
    /// account the loss (the `DropOldest` shipping policy).
    pub fn force_send(&self, value: T) -> Result<Option<T>, SendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        let evicted = if self.inner.is_full(&state) {
            state.queue.pop_front()
        } else {
            None
        };
        state.queue.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(evicted)
    }

    /// Items currently queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives or every sender is gone and the queue
    /// is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops an item if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.inner.lock();
        let v = state.queue.pop_front();
        if v.is_some() {
            drop(state);
            self.inner.not_full.notify_one();
        }
        v
    }

    /// Blocking iterator: yields until the channel disconnects and drains.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator over received items; ends at disconnect-and-drained.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake every blocked receiver so it can observe disconnection.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_blocks_then_resumes() {
        let (tx, rx) = bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, rx) = bounded(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Some(1));
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn force_send_evicts_oldest() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.force_send(1).unwrap(), None);
        assert_eq!(tx.force_send(2).unwrap(), None);
        assert_eq!(tx.force_send(3).unwrap(), Some(1));
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn disconnected_receiver_fails_sends() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
        assert!(tx.force_send(3).is_err());
    }

    #[test]
    fn receivers_drain_after_senders_drop() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = bounded(16);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }
}
