//! Timestamped sample series and rate/utilization conversion.
//!
//! Samples are stored columnar (`ts` / `vs` vectors) because campaigns
//! produce millions of points; the paper's 720 two-minute intervals held
//! ~5 million points each.
//!
//! Byte and packet counters are *cumulative*, so a missed sampling interval
//! widens an interval but loses nothing: each interval's delta divided by
//! its actual duration is an exact average rate over that span — the
//! property the paper relies on ("we can still calculate throughput
//! accurately using the sample's timestamp and byte count", §4.1).

use uburst_sim::time::Nanos;

/// A columnar series of (timestamp, counter value) samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    /// Sample timestamps, nanoseconds, strictly increasing.
    pub ts: Vec<u64>,
    /// Counter values (cumulative for byte/packet counters, gauge readings
    /// for buffer level/peak).
    pub vs: Vec<u64>,
}

/// One inter-sample interval of a cumulative counter, as an average rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Interval start.
    pub t0: Nanos,
    /// Interval end (the sample's timestamp).
    pub t1: Nanos,
    /// Counter delta over the interval.
    pub delta: u64,
    /// Average rate in units/second over the interval.
    pub rate: f64,
}

impl RateSample {
    /// Interval length.
    pub fn dt(&self) -> Nanos {
        self.t1 - self.t0
    }
}

/// Out of line so the (never-taken in a healthy pipeline) rejection branch
/// costs [`Series::push`] nothing but a predicted-not-taken compare.
#[cold]
#[inline(never)]
fn note_nonmonotonic(n: u64) {
    uburst_obs::counter_add("uburst_series_nonmonotonic_total", n);
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends a sample. Timestamps must strictly increase; a sample whose
    /// timestamp does not is **skipped** (in every build mode) and accounted
    /// in the `uburst_series_nonmonotonic_total` telemetry counter, because
    /// a zero-width interval would otherwise turn into an inf/NaN rate in
    /// [`Series::rates`]. Returns whether the sample was appended.
    pub fn push(&mut self, t: Nanos, v: u64) -> bool {
        if self.ts.last().is_some_and(|&last| t.as_nanos() <= last) {
            note_nonmonotonic(1);
            return false;
        }
        self.ts.push(t.as_nanos());
        self.vs.push(v);
        true
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends all samples of `other` that start after this series ends.
    /// Used when the collector stitches batches together. Samples at or
    /// before the current tail timestamp are dropped and accounted in
    /// `uburst_series_nonmonotonic_total` (callers that genuinely need to
    /// interleave out-of-order batches use [`Series::merge_from`]).
    /// Returns the number of dropped samples.
    pub fn extend_from(&mut self, other: &Series) -> usize {
        debug_assert_eq!(other.ts.len(), other.vs.len());
        let start = match self.ts.last() {
            Some(&last) => other.ts.partition_point(|&t| t <= last),
            None => 0,
        };
        if start > 0 {
            note_nonmonotonic(start as u64);
        }
        self.ts.extend_from_slice(&other.ts[start..]);
        self.vs.extend_from_slice(&other.vs[start..]);
        start
    }

    /// Merges `other`'s samples into this series, keeping timestamps sorted.
    /// Used by the collector, where worker threads may ingest a source's
    /// batches out of arrival order. Duplicate timestamps keep both samples
    /// in `other`-after-`self` order (they cannot occur from a single
    /// poller, which stamps strictly increasing times).
    pub fn merge_from(&mut self, other: &Series) {
        if other.is_empty() {
            return;
        }
        // Fast path: strictly after everything we have (the common case —
        // batches usually arrive in order).
        if self.ts.last().is_none_or(|&last| other.ts[0] > last) {
            self.ts.extend_from_slice(&other.ts);
            self.vs.extend_from_slice(&other.vs);
            return;
        }
        // Slow path: stable two-way merge.
        let mut ts = Vec::with_capacity(self.ts.len() + other.ts.len());
        let mut vs = Vec::with_capacity(ts.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.ts.len() && j < other.ts.len() {
            if self.ts[i] <= other.ts[j] {
                ts.push(self.ts[i]);
                vs.push(self.vs[i]);
                i += 1;
            } else {
                ts.push(other.ts[j]);
                vs.push(other.vs[j]);
                j += 1;
            }
        }
        ts.extend_from_slice(&self.ts[i..]);
        vs.extend_from_slice(&self.vs[i..]);
        ts.extend_from_slice(&other.ts[j..]);
        vs.extend_from_slice(&other.vs[j..]);
        self.ts = ts;
        self.vs = vs;
    }

    /// Iterates the per-interval deltas of a cumulative counter as average
    /// rates. Intervals with missed polls are longer, not wrong.
    pub fn rates(&self) -> impl Iterator<Item = RateSample> + '_ {
        self.ts.windows(2).zip(self.vs.windows(2)).map(|(t, v)| {
            let dt_ns = t[1] - t[0];
            let delta = v[1].saturating_sub(v[0]);
            RateSample {
                t0: Nanos(t[0]),
                t1: Nanos(t[1]),
                delta,
                rate: delta as f64 / (dt_ns as f64 / 1e9),
            }
        })
    }

    /// Converts a cumulative **byte** counter into per-interval link
    /// utilization in `[0, 1]`, given the link rate in bits per second.
    /// Values can exceed 1.0 slightly because counters exclude per-frame
    /// wire overhead; callers should clamp if they need a hard bound.
    pub fn utilization(&self, link_bps: u64) -> Vec<UtilSample> {
        let cap_bytes_per_sec = link_bps as f64 / 8.0;
        self.rates()
            .map(|r| UtilSample {
                t: r.t1,
                dt: r.dt(),
                util: r.rate / cap_bytes_per_sec,
            })
            .collect()
    }

    /// The raw gauge values (for peak/level registers) zipped with times.
    pub fn points(&self) -> impl Iterator<Item = (Nanos, u64)> + '_ {
        self.ts
            .iter()
            .zip(self.vs.iter())
            .map(|(&t, &v)| (Nanos(t), v))
    }
}

/// Reconstructs a full-width cumulative counter from narrow-register reads.
///
/// Real register banks expose 32-bit (sometimes narrower) cumulative
/// counters: at 10 Gb/s a 32-bit byte counter wraps every ~3.4 s, far
/// shorter than a campaign. Because the counter is monotone and polls are
/// frequent relative to the wrap period, the true delta between consecutive
/// reads is their difference **modulo `2^bits`** — exact as long as fewer
/// than `2^bits` units accumulate between reads (guaranteed by any interval
/// that satisfies Table 1-style loss targets).
/// ## Stale reads are not wraps
///
/// Modular decoding has a failure mode: a raw read that *regresses* — a
/// stale value served by the bus, or another counter's value leaking
/// through a shared read-snoop register — decodes as a near-full-period
/// "wrap", inflating the accumulator by up to `2^bits`. A plausibility
/// guard ([`WrapDecoder::with_max_step`]) rejects deltas larger than any
/// amount the link could have carried between reads: the delta is clamped
/// to zero, the previous raw value is kept (so the next genuine read
/// recovers exactly), and the event is counted.
#[derive(Debug, Clone)]
pub struct WrapDecoder {
    bits: u32,
    last_raw: Option<u64>,
    acc: u64,
    /// Largest per-read delta accepted as genuine; anything above is a
    /// regressed read. Defaults to the full mask (guard disabled).
    max_step: u64,
    regressions: u64,
}

/// The largest byte-counter delta a `link_bps` link can plausibly produce
/// between two reads `interval` apart, with `slack_intervals` of headroom
/// for missed deadlines, retries, and stretched intervals.
///
/// This is the wrap-plausibility threshold fed to
/// [`WrapDecoder::with_max_step`]: a decoded delta above it cannot be
/// traffic (the link is not that fast), so it must be a regressed raw
/// read masquerading as a wrap.
pub fn wrap_guard_threshold(link_bps: u64, interval: Nanos, slack_intervals: u64) -> u64 {
    let bytes_per_interval =
        (link_bps as u128 / 8).saturating_mul(interval.as_nanos() as u128) / 1_000_000_000;
    let guarded = bytes_per_interval.saturating_mul(slack_intervals as u128);
    u64::try_from(guarded).unwrap_or(u64::MAX).max(1)
}

impl WrapDecoder {
    /// A decoder for registers `bits` wide (1..=64).
    ///
    /// # Panics
    /// Panics when `bits` is outside `1..=64`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "counter width {bits} out of range"
        );
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        WrapDecoder {
            bits,
            last_raw: None,
            acc: 0,
            max_step: mask,
            regressions: 0,
        }
    }

    /// Arms the regression guard: deltas above `max_step` are treated as
    /// regressed reads, not wraps (clamped to zero and counted). The
    /// threshold is clamped into `1..=mask` — derive it with
    /// [`wrap_guard_threshold`] from the poll interval and link rate.
    pub fn with_max_step(mut self, max_step: u64) -> Self {
        self.max_step = max_step.clamp(1, self.mask());
        self
    }

    /// Regressed reads rejected by the guard so far.
    pub fn regressions(&self) -> u64 {
        self.regressions
    }

    /// The modulus mask for this register width.
    pub fn mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Feeds one raw register read and returns the reconstructed 64-bit
    /// cumulative value. The first read seeds the accumulator.
    ///
    /// With the guard armed, an implausibly large delta leaves both the
    /// accumulator **and** the remembered raw value untouched: the bogus
    /// read is discarded wholesale, so the next genuine read computes its
    /// delta against the last trusted value and no bytes are double- or
    /// under-counted.
    pub fn decode(&mut self, raw: u64) -> u64 {
        let raw = raw & self.mask();
        match self.last_raw {
            None => self.acc = raw,
            Some(prev) => {
                let delta = raw.wrapping_sub(prev) & self.mask();
                if delta > self.max_step {
                    self.regressions += 1;
                    uburst_obs::counter_add("uburst_decoder_wrap_regressions_total", 1);
                    return self.acc;
                }
                self.acc = self.acc.wrapping_add(delta);
            }
        }
        self.last_raw = Some(raw);
        self.acc
    }

    /// The reconstructed cumulative value after the latest decode.
    pub fn unwrapped(&self) -> u64 {
        self.acc
    }
}

/// Per-interval utilization of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Interval end time.
    pub t: Nanos,
    /// Interval length.
    pub dt: Nanos,
    /// Average utilization over the interval, 0.0–1.0 (may slightly exceed
    /// 1.0; see [`Series::utilization`]).
    pub util: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, u64)]) -> Series {
        let mut s = Series::new();
        for &(t, v) in points {
            s.push(Nanos(t), v);
        }
        s
    }

    #[test]
    fn rates_from_cumulative() {
        // 1000 bytes over 1us, then 0 bytes over 2us.
        let s = series(&[(0, 0), (1_000, 1_000), (3_000, 1_000)]);
        let r: Vec<_> = s.rates().collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].delta, 1_000);
        assert!((r[0].rate - 1e9).abs() / 1e9 < 1e-9); // 1000 B / 1us = 1e9 B/s
        assert_eq!(r[1].delta, 0);
        assert_eq!(r[1].rate, 0.0);
        assert_eq!(r[1].dt(), Nanos(2_000));
    }

    #[test]
    fn missed_interval_preserves_totals() {
        // A poll was missed between t=25us and t=75us; the widened interval
        // still averages correctly.
        let s = series(&[(0, 0), (25_000, 31_250), (75_000, 93_750)]);
        let r: Vec<_> = s.rates().collect();
        // Both intervals at exactly 10Gbps = 1.25e9 B/s.
        for x in &r {
            assert!((x.rate - 1.25e9).abs() / 1.25e9 < 1e-9, "rate {}", x.rate);
        }
    }

    #[test]
    fn utilization_of_line_rate_is_one() {
        // 10 Gbps link: 31250 bytes per 25us interval is exactly line rate.
        let s = series(&[(0, 0), (25_000, 31_250), (50_000, 46_875)]);
        let u = s.utilization(10_000_000_000);
        assert_eq!(u.len(), 2);
        assert!((u[0].util - 1.0).abs() < 1e-9);
        assert!((u[1].util - 0.5).abs() < 1e-9);
    }

    #[test]
    fn extend_from_stitches() {
        let mut a = series(&[(0, 0), (10, 5)]);
        let b = series(&[(20, 9)]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.vs, vec![0, 5, 9]);
    }

    #[test]
    fn extend_from_drops_overlapping_prefix() {
        let mut a = series(&[(0, 0), (10, 5)]);
        // Two duplicates/regressions, then one genuinely new sample.
        let b = series(&[(5, 2), (10, 9), (20, 11)]);
        assert_eq!(a.extend_from(&b), 2, "overlapping prefix dropped");
        assert_eq!(a.ts, vec![0, 10, 20]);
        assert_eq!(a.vs, vec![0, 5, 11]);
    }

    /// Regression test for the release-mode monotonicity hole: the old code
    /// only `debug_assert`ed, so a release build silently accepted a
    /// duplicate timestamp and `rates()` divided by a zero-width interval.
    /// The skip is now unconditional, so this passes in every build mode.
    #[test]
    fn non_monotonic_push_is_skipped_in_release_too() {
        let mut s = series(&[(10, 5)]);
        assert!(!s.push(Nanos(10), 9), "duplicate timestamp skipped");
        assert!(!s.push(Nanos(3), 1), "regressed timestamp skipped");
        assert_eq!(s.len(), 1);
        assert!(s.push(Nanos(20), 9));
        let rates: Vec<_> = s.rates().collect();
        assert_eq!(rates.len(), 1);
        assert!(
            rates.iter().all(|r| r.rate.is_finite()),
            "no inf/NaN rates from zero-width intervals"
        );
    }

    #[test]
    fn merge_from_in_order_appends() {
        let mut a = series(&[(0, 0), (10, 5)]);
        a.merge_from(&series(&[(20, 9), (30, 12)]));
        assert_eq!(a.ts, vec![0, 10, 20, 30]);
        assert_eq!(a.vs, vec![0, 5, 9, 12]);
    }

    #[test]
    fn merge_from_interleaves_out_of_order_batches() {
        let mut a = series(&[(20, 9), (30, 12)]);
        a.merge_from(&series(&[(0, 0), (10, 5), (40, 15)]));
        assert_eq!(a.ts, vec![0, 10, 20, 30, 40]);
        assert_eq!(a.vs, vec![0, 5, 9, 12, 15]);
    }

    #[test]
    fn merge_from_empty_is_noop() {
        let mut a = series(&[(1, 1)]);
        a.merge_from(&Series::new());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn counter_wrap_saturates_rather_than_underflows() {
        let s = series(&[(0, 100), (10, 50)]);
        let r: Vec<_> = s.rates().collect();
        assert_eq!(r[0].delta, 0, "wrapped counter treated as zero delta");
    }

    #[test]
    fn points_round_trip() {
        let s = series(&[(5, 1), (6, 2)]);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(Nanos(5), 1), (Nanos(6), 2)]);
    }

    #[test]
    fn wrap_decoder_reconstructs_across_wraps() {
        // An 8-bit register: true stream 250, 260, 270 reads as 250, 4, 14.
        let mut d = WrapDecoder::new(8);
        assert_eq!(d.decode(250), 250);
        assert_eq!(d.decode(260 & 0xFF), 260);
        assert_eq!(d.decode(270 & 0xFF), 270);
        assert_eq!(d.unwrapped(), 270);
    }

    #[test]
    fn wrap_decoder_full_width_is_identity() {
        let mut d = WrapDecoder::new(64);
        for v in [0u64, 5, 1 << 40, u64::MAX / 2] {
            assert_eq!(d.decode(v), v);
        }
    }

    #[test]
    fn wrap_decoder_32bit_survives_many_wraps() {
        let mut d = WrapDecoder::new(32);
        let step = 3_000_000_000u64; // ~0.7 wraps per read
        let mut truth = 7u64;
        assert_eq!(d.decode(truth & 0xFFFF_FFFF), truth);
        for _ in 0..50 {
            truth += step;
            assert_eq!(d.decode(truth & 0xFFFF_FFFF), truth);
        }
    }

    #[test]
    fn wrap_decoder_repeated_value_is_zero_delta() {
        let mut d = WrapDecoder::new(32);
        assert_eq!(d.decode(100), 100);
        assert_eq!(d.decode(100), 100, "stale repeat adds nothing");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wrap_decoder_rejects_zero_bits() {
        WrapDecoder::new(0);
    }

    #[test]
    fn guarded_decoder_rejects_regressed_reads() {
        // 10G link, 25us interval: a real inter-read delta is ~31 KB. A
        // stale/snooped read that regresses the raw value by 60_000 would
        // decode as a ~4.2 GB "wrap" without the guard.
        let step = wrap_guard_threshold(10_000_000_000, Nanos(25_000), 64);
        let mut d = WrapDecoder::new(32).with_max_step(step);
        assert_eq!(d.decode(100_000), 100_000);
        assert_eq!(d.decode(40_000), 100_000, "regression clamps to zero delta");
        assert_eq!(d.regressions(), 1);
        // The next genuine read recovers against the last *trusted* value.
        assert_eq!(d.decode(131_250), 131_250);
        assert_eq!(d.regressions(), 1);
    }

    #[test]
    fn guarded_decoder_still_accepts_true_wraps() {
        // 16-bit register, ~7.5 KB per interval: wraps every ~9 reads.
        let step = wrap_guard_threshold(10_000_000_000, Nanos(25_000), 64);
        let mut d = WrapDecoder::new(16).with_max_step(step);
        let mut truth = 0u64;
        assert_eq!(d.decode(0), 0);
        for _ in 0..100 {
            truth += 7_500;
            assert_eq!(d.decode(truth & 0xFFFF), truth, "wrap decoded exactly");
        }
        assert_eq!(d.regressions(), 0, "no genuine delta was rejected");
    }

    #[test]
    fn wrap_guard_threshold_scales_with_link_and_interval() {
        // 10G × 25us × 1 slack = 31250 bytes.
        assert_eq!(
            wrap_guard_threshold(10_000_000_000, Nanos(25_000), 1),
            31_250
        );
        assert_eq!(
            wrap_guard_threshold(10_000_000_000, Nanos(25_000), 64),
            2_000_000
        );
        // Degenerate inputs stay sane: never zero, never overflowing.
        assert_eq!(wrap_guard_threshold(0, Nanos(25_000), 64), 1);
        assert_eq!(
            wrap_guard_threshold(u64::MAX, Nanos(u64::MAX), u64::MAX),
            u64::MAX
        );
    }

    #[test]
    fn unguarded_decoder_behaviour_is_unchanged() {
        // Without an explicit guard the decoder accepts any modular delta —
        // the bare-decoder contract the many-wraps test above relies on.
        let mut d = WrapDecoder::new(32);
        assert_eq!(d.decode(100), 100);
        assert_eq!(
            d.decode(50),
            100 + ((50u64.wrapping_sub(100)) & 0xFFFF_FFFF)
        );
    }
}
