//! Benchmarks for the collection framework: how fast the building blocks
//! run on the host (distinct from the simulated-time behaviour the figures
//! measure).
//!
//! Self-contained `Instant`-based harness (no external bench framework);
//! run with `cargo bench --bench framework`.

use std::hint::black_box;

use uburst_asic::{AccessModel, AsicCounters, CounterId};
use uburst_bench::benchjson::BenchRecorder;
use uburst_bench::runner::bench;
use uburst_core::batch::{Batch, BatchPolicy, Batcher, SourceId};
use uburst_core::collector::Collector;
use uburst_core::poller::Poller;
use uburst_core::series::Series;
use uburst_core::spec::CampaignConfig;
use uburst_sim::counters::CounterSink;
use uburst_sim::events::{EventKind, EventQueue};
use uburst_sim::node::{NodeId, PortId};
use uburst_sim::sim::Simulator;
use uburst_sim::time::Nanos;

fn bench_event_queue(rec: &mut BenchRecorder) {
    bench(rec, "schedule_pop_10k", 50, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(
                Nanos((i * 7919) % 100_000),
                EventKind::Timer {
                    node: NodeId(0),
                    token: i,
                },
            );
        }
        let mut popped = 0u64;
        while let Some(e) = q.pop_until(Nanos::MAX) {
            popped = popped.wrapping_add(e.time.as_nanos());
        }
        popped
    });
}

fn bench_event_drain(rec: &mut BenchRecorder) {
    // The simulator's actual consumption protocol: drain whole activated
    // buckets into a reusable buffer instead of popping one event at a
    // time (compare against schedule_pop_10k above).
    bench(rec, "event_drain_10k", 50, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(
                Nanos((i * 7919) % 100_000),
                EventKind::Timer {
                    node: NodeId(0),
                    token: i,
                },
            );
        }
        let mut buf = Vec::new();
        let mut popped = 0u64;
        loop {
            buf.clear();
            if q.pop_batch(Nanos::MAX, &mut buf) == 0 {
                break;
            }
            for e in &buf {
                popped = popped.wrapping_add(e.time.as_nanos());
            }
        }
        popped
    });
}

fn bench_arena_churn(rec: &mut BenchRecorder) {
    use uburst_sim::packet::{FlowId, Packet, PacketKind};
    use uburst_sim::prelude::PacketArena;
    // Steady-state packet churn: a few packets in flight, a million
    // alloc/take cycles — the freelist path the hot loop lives on.
    bench(rec, "arena_packet_churn_1M", 20, || {
        let mut arena = PacketArena::new();
        let mut refs = std::collections::VecDeque::with_capacity(8);
        let mut acc = 0u64;
        for i in 0..1_000_000u64 {
            refs.push_back(arena.alloc(Packet {
                flow: FlowId(i),
                kind: PacketKind::Raw { tag: i },
                src: NodeId(0),
                dst: NodeId(1),
                size: 1500,
                created: Nanos(i),
                ce: false,
            }));
            if refs.len() == 8 {
                let pkt = arena.take(refs.pop_front().expect("nonempty"));
                acc = acc.wrapping_add(pkt.flow.0);
            }
        }
        while let Some(r) = refs.pop_front() {
            acc = acc.wrapping_add(arena.take(r).flow.0);
        }
        acc
    });
}

fn bench_counter_ops(rec: &mut BenchRecorder) {
    let bank = AsicCounters::new(32);
    bench(rec, "count_tx_1M", 20, || {
        for _ in 0..1_000_000u32 {
            bank.count_tx(black_box(PortId(3)), black_box(1500));
        }
        bank.read(CounterId::TxBytes(PortId(3)))
    });
    bench(rec, "read_byte_counter_1M", 20, || {
        let mut acc = 0u64;
        for _ in 0..1_000_000u32 {
            acc = acc.wrapping_add(bank.read(black_box(CounterId::TxBytes(PortId(3)))));
        }
        acc
    });
    let access = AccessModel::default();
    let ids: Vec<CounterId> = (0..4).map(|p| CounterId::TxBytes(PortId(p))).collect();
    bench(rec, "poll_cost_model_4x1M", 20, || {
        let mut acc = 0u64;
        for _ in 0..1_000_000u32 {
            acc = acc.wrapping_add(access.poll_cost(black_box(&ids)).as_nanos());
        }
        acc
    });
    // The planned (batched) counterparts of the two cases above: the poller
    // hot path after resolving the counter list once.
    let plan = bank.read_plan(&ids, &access);
    bench(rec, "planned_read_4x1M", 20, || {
        let mut out = Vec::with_capacity(ids.len());
        let mut acc = 0u64;
        for _ in 0..1_000_000u32 {
            bank.read_planned(black_box(&plan), 4, &mut out);
            acc = acc.wrapping_add(out[0]);
        }
        acc
    });
    bench(rec, "plan_cost_lookup_4x1M", 20, || {
        let mut acc = 0u64;
        for _ in 0..1_000_000u32 {
            acc = acc.wrapping_add(black_box(&plan).cost(4).as_nanos());
        }
        acc
    });
}

fn bench_poller_loop(rec: &mut BenchRecorder) {
    // Host cost of simulating one second of 25us polling on an idle bank.
    bench(rec, "simulate_1s_at_25us", 20, || {
        let mut sim = Simulator::new();
        let bank = AsicCounters::new_shared(4);
        let poller = Poller::in_memory(
            bank,
            AccessModel::default(),
            CampaignConfig::single(
                "bytes",
                CounterId::TxBytes(PortId(0)),
                Nanos::from_micros(25),
            ),
            1,
        )
        .expect("valid campaign");
        let id = poller
            .spawn(&mut sim, Nanos::ZERO, Nanos::from_secs(1))
            .expect("valid window");
        sim.run_until(Nanos::MAX);
        sim.node_mut::<Poller>(id).stats().polls
    });
}

fn bench_batcher(rec: &mut BenchRecorder) {
    bench(rec, "record_10k_samples", 50, || {
        let mut batcher = Batcher::new(
            SourceId(0),
            "bench",
            vec![CounterId::TxBytes(PortId(0))],
            BatchPolicy::default(),
        );
        let mut out = 0u64;
        for i in 0..10_000u64 {
            out += batcher.record(Nanos(i * 25_000), &[i]).len() as u64;
        }
        out
    });
}

fn bench_collector(rec: &mut BenchRecorder) {
    let make_batch = |k: u64| {
        let mut s = Series::new();
        for i in 0..1_000u64 {
            s.push(Nanos(k * 1_000_000 + i * 25), i);
        }
        Batch {
            source: SourceId(0),
            campaign: "bench".into(),
            counter: CounterId::TxBytes(PortId(0)),
            samples: s,
        }
    };
    bench(rec, "ingest_100_batches_of_1k", 20, || {
        let (collector, tx) = Collector::start(2, 64).expect("collector starts");
        for k in 0..100u64 {
            tx.send(make_batch(k)).expect("send");
        }
        drop(tx);
        let (store, report) = collector.shutdown().expect("clean shutdown");
        store.total_samples() as u64 + report.ingested
    });
}

/// 64 switches x 16 rounds of 64-sample batches over mildly lossy links —
/// the aggregation-tier workload shared by the fleet benches below.
fn fleet_streams_64() -> Vec<uburst_core::fleet::SwitchStream> {
    use uburst_core::fleet::{RoundInput, SwitchStream};
    use uburst_core::link::LinkPlan;
    (0..64u32)
        .map(|sw| {
            let rounds = (0..16u64)
                .map(|r| {
                    let mut s = Series::new();
                    for i in 0..64u64 {
                        s.push(Nanos(1 + r * 64_000 + i * 1_000), r * 64 + i);
                    }
                    RoundInput {
                        batches: vec![Batch {
                            source: SourceId(sw),
                            campaign: "bench".into(),
                            counter: CounterId::TxBytes(PortId(0)),
                            samples: s,
                        }],
                        degraded: false,
                    }
                })
                .collect();
            SwitchStream {
                source: SourceId(sw),
                link: LinkPlan::default(),
                link_seed: 0xB0B ^ sw as u64,
                rounds,
            }
        })
        .collect()
}

fn bench_fleet_ingest(rec: &mut BenchRecorder) {
    use uburst_core::fleet::{run_fleet, FleetConfig};
    // Host cost of the whole aggregation tier: retransmits included,
    // merged through per-switch sequence spaces into one store.
    bench(rec, "fleet_ingest_64sw_16r", 20, || {
        let out = run_fleet(fleet_streams_64(), &FleetConfig::default());
        out.store.total_samples() as u64
    });
}

fn bench_fleet_recovery(rec: &mut BenchRecorder) {
    use uburst_core::failpoint::RegionCrashPlan;
    use uburst_core::fleet::{run_fleet, run_fleet_with_crashes, FleetConfig};
    // The failover path end to end: the busiest region's WAL dies halfway
    // through its write stream, switches re-shard to the survivors, the
    // WAL replays on recovery, and the run still converges. The crash
    // offset comes from one reference run outside the timed loop.
    let cfg = FleetConfig::default();
    let reference = run_fleet(fleet_streams_64(), &cfg);
    let victim = reference
        .regions
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.wal_bytes)
        .map(|(i, _)| i)
        .expect("fleet has regions");
    let crash = RegionCrashPlan::kill(victim, reference.regions[victim].wal_bytes / 2);
    bench(rec, "fleet_region_recovery_64sw", 20, || {
        let out = run_fleet_with_crashes(fleet_streams_64(), &cfg, &crash);
        out.store.total_samples() as u64 + out.regions[victim].recoveries
    });
}

fn bench_group_commit(rec: &mut BenchRecorder) {
    use uburst_core::ship::SeqBatch;
    use uburst_core::wal::{DurableStore, FsyncPolicy, MemStorage, WalConfig};
    // The aggregator's WAL hot path in isolation: 64 sources, windows of
    // one batch per source per tick, each window one commit group — the
    // same shape run_fleet pumps, minus the links and shippers.
    let make_windows = || -> Vec<Vec<SeqBatch>> {
        (0..16u64)
            .map(|r| {
                (0..64u32)
                    .map(|sw| {
                        let mut s = Series::new();
                        for i in 0..64u64 {
                            s.push(Nanos(1 + r * 64_000 + i * 1_000), r * 64 + i);
                        }
                        SeqBatch {
                            seq: r,
                            watermark: r + 1,
                            batch: Batch {
                                source: SourceId(sw),
                                campaign: "bench".into(),
                                counter: CounterId::TxBytes(PortId(0)),
                                samples: s,
                            },
                        }
                    })
                    .collect()
            })
            .collect()
    };
    bench(rec, "group_commit_ingest_64sw", 20, || {
        let mut ds = DurableStore::create(
            MemStorage::new(),
            WalConfig {
                segment_max_bytes: 1 << 20,
                fsync: FsyncPolicy::EveryN(16),
            },
        )
        .expect("create");
        let mut out = Vec::new();
        for window in make_windows() {
            ds.ingest_group(&window, &mut out).expect("mem ingest");
        }
        ds.store().total_samples() as u64
    });
}

fn bench_buffer_policy(rec: &mut BenchRecorder) {
    use uburst_sim::bufpolicy::BufferPolicyCfg;
    // The admission decision sits on the switch's per-packet hot path:
    // sweep all four carving policies over a synthetic occupancy ramp,
    // 1M admits each. FlexibleBuffering is the interesting case — its
    // shared-remainder check walks the held vector per admission.
    let policies = [
        BufferPolicyCfg::dt(0.5),
        BufferPolicyCfg::StaticPartition,
        BufferPolicyCfg::BShare {
            target_delay: Nanos::from_micros(50),
            drain_bps: 10_000_000_000,
        },
        BufferPolicyCfg::FlexibleBuffering {
            reserved_bytes: 24 << 10,
        },
    ];
    let ports = 32usize;
    let pool = 12u64 << 20;
    bench(rec, "buffer_policy_sweep_4x1M", 20, || {
        let mut admitted = 0u64;
        for cfg in policies {
            let policy = cfg.build(ports);
            let mut held = vec![0u64; ports];
            let mut buffered = 0u64;
            for i in 0..1_000_000u64 {
                let port = (i % ports as u64) as usize;
                if policy.admit(port, 1500, &held, buffered, pool) {
                    admitted += 1;
                    held[port] += 1500;
                    buffered += 1500;
                }
                // Drain roughly as fast as we fill so the ramp exercises
                // both the admit and the reject branches.
                if buffered > pool / 2 {
                    let p = (i % ports as u64) as usize;
                    buffered -= held[p];
                    held[p] = 0;
                }
            }
        }
        admitted
    });
}

fn main() {
    let mut rec = BenchRecorder::new("framework");
    bench_event_queue(&mut rec);
    bench_event_drain(&mut rec);
    bench_arena_churn(&mut rec);
    bench_counter_ops(&mut rec);
    bench_poller_loop(&mut rec);
    bench_batcher(&mut rec);
    bench_collector(&mut rec);
    bench_fleet_ingest(&mut rec);
    bench_fleet_recovery(&mut rec);
    bench_group_commit(&mut rec);
    bench_buffer_policy(&mut rec);
    rec.flush();
}
