//! The Web rack workload.
//!
//! §4.2: "Web: These servers receive web requests and assemble a dynamic
//! web page using data from many remote sources." The defining properties
//! the paper measures:
//!
//! * **low average utilization** (the Fig. 2 web port ran at ~9 %),
//! * **no cross-server correlation** (Fig. 8a) — "Web servers run stateless
//!   services that are entirely driven by user requests",
//! * **server-directed bursts** (Fig. 9) — a request's fan-in of cache
//!   responses converges on the one web server assembling the page,
//! * the **shortest bursts** of the three rack types (Fig. 3: p90 = 50 µs).
//!
//! Two apps implement this: [`WebServerApp`] runs on the measured rack;
//! [`UserGenApp`] runs on remote nodes and plays the Internet user
//! population.

use std::collections::HashMap;

use uburst_sim::node::NodeId;
use uburst_sim::packet::FlowId;
use uburst_sim::time::Nanos;

use crate::host::{App, Env, Incoming};
use crate::tags::MsgKind;

/// Log-normal byte-size distribution parameterized by its median.
#[derive(Debug, Clone, Copy)]
pub struct SizeDist {
    /// Median size in bytes.
    pub median: u64,
    /// Lognormal sigma.
    pub sigma: f64,
    /// Hard cap (tail clamp), bytes.
    pub cap: u64,
}

impl SizeDist {
    /// Draws a size.
    pub fn sample(&self, rng: &mut uburst_sim::rng::Rng) -> u64 {
        let mu = (self.median as f64).ln();
        (rng.lognormal(mu, self.sigma) as u64).clamp(1, self.cap)
    }

    /// Analytic mean in bytes: the lognormal mean `median·e^{σ²/2}`,
    /// clamped to the cap. The clamp treats the cap as a ceiling rather
    /// than modelling the truncated tail exactly, so for distributions
    /// whose cap sits deep in the tail (every workload preset here) the
    /// estimate is tight; a cap near the median makes it an upper bound.
    /// Used by the analytic offered-rate metadata that sizes hybrid-mode
    /// event calendars.
    pub fn mean_bytes(&self) -> f64 {
        ((self.median as f64) * (self.sigma * self.sigma / 2.0).exp()).min(self.cap as f64)
    }
}

/// Web server tuning.
#[derive(Debug, Clone)]
pub struct WebServerConfig {
    /// The remote cache tier this server fans out to.
    pub cache_nodes: Vec<NodeId>,
    /// Subqueries per page: uniform in `[min, max]`.
    pub fanout: (usize, usize),
    /// Per-subquery response size.
    pub cache_resp: SizeDist,
    /// CPU think time between the last cache response and the page send.
    pub think_median: Nanos,
}

impl Default for WebServerConfig {
    fn default() -> Self {
        WebServerConfig {
            cache_nodes: Vec::new(),
            fanout: (8, 24),
            cache_resp: SizeDist {
                median: 6_000,
                sigma: 1.0,
                cap: 200_000,
            },
            think_median: Nanos::from_micros(150),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageJob {
    user: NodeId,
    user_group: u32,
    page_bytes: u64,
    outstanding: usize,
}

/// The measured rack's web server.
pub struct WebServerApp {
    cfg: WebServerConfig,
    jobs: HashMap<u32, PageJob>,
    next_group: u32,
    /// Pages fully assembled and sent (diagnostics).
    pub pages_served: u64,
}

impl WebServerApp {
    /// A web server fanning out to `cfg.cache_nodes`.
    pub fn new(cfg: WebServerConfig) -> Self {
        assert!(!cfg.cache_nodes.is_empty(), "web server needs a cache tier");
        assert!(cfg.fanout.0 >= 1 && cfg.fanout.0 <= cfg.fanout.1);
        WebServerApp {
            cfg,
            jobs: HashMap::new(),
            next_group: 0,
            pages_served: 0,
        }
    }
}

impl App for WebServerApp {
    fn start(&mut self, _env: &mut Env<'_, '_>) {}

    fn on_flow_received(&mut self, env: &mut Env<'_, '_>, msg: Incoming) {
        match msg.kind {
            MsgKind::Request => {
                // A user request: fan out subqueries, remember the job.
                let group = self.next_group;
                self.next_group = self.next_group.wrapping_add(1);
                let k = env
                    .rng
                    .range(self.cfg.fanout.0 as u64, self.cfg.fanout.1 as u64)
                    as usize;
                // Each remote node stands in for a whole cache tier, so
                // subqueries pick with replacement: k can exceed the node
                // count, and several shards may live behind one node.
                for _ in 0..k {
                    let dst = *env.rng.pick(&self.cfg.cache_nodes);
                    let bytes = self.cfg.cache_resp.sample(env.rng);
                    env.send_request(dst, bytes, group);
                }
                self.jobs.insert(
                    group,
                    PageJob {
                        user: msg.src,
                        user_group: msg.group,
                        page_bytes: msg.size_field,
                        outstanding: k,
                    },
                );
            }
            MsgKind::Response => {
                // One cache sub-response came back.
                let done = {
                    let Some(job) = self.jobs.get_mut(&msg.group) else {
                        debug_assert!(false, "response for unknown group");
                        return;
                    };
                    job.outstanding -= 1;
                    job.outstanding == 0
                };
                if done {
                    // Think, then ship the page (timer token = group).
                    let mu = (self.cfg.think_median.as_nanos() as f64).ln();
                    let think = Nanos::from_secs_f64(env.rng.lognormal(mu, 0.4) * 1e-9);
                    env.timer_in(think, u64::from(msg.group));
                }
            }
            MsgKind::Data => {}
        }
    }

    fn on_timer(&mut self, env: &mut Env<'_, '_>, token: u64) {
        let Some(job) = self.jobs.remove(&(token as u32)) else {
            debug_assert!(false, "page timer for unknown job");
            return;
        };
        env.send_response(job.user, job.page_bytes, job.user_group);
        self.pages_served += 1;
    }
}

/// User population tuning.
#[derive(Debug, Clone)]
pub struct UserGenConfig {
    /// The web servers users hit.
    pub web_nodes: Vec<NodeId>,
    /// Requests per second from this generator node (already
    /// diurnal-scaled by the scenario builder).
    pub rate_per_s: f64,
    /// Page size asked of the web server.
    pub page: SizeDist,
    /// Pages per user event, uniform in `[min, max]`. Sessions fetch
    /// several objects back-to-back over a reused connection, so page
    /// requests arrive in micro-trains rather than as a pure Poisson
    /// stream — this temporal clustering is what gives Web its very high
    /// burst likelihood ratio (Table 2).
    pub train: (usize, usize),
    /// Mean spacing between pages within a train.
    pub train_gap: Nanos,
}

/// Remote node playing many Internet users (a Poisson request stream).
pub struct UserGenApp {
    cfg: UserGenConfig,
    next_group: u32,
    /// Pages left in the in-progress train and their target server.
    train_left: usize,
    train_dst: Option<NodeId>,
    /// Requests issued (diagnostics).
    pub requests_sent: u64,
    /// Pages received (diagnostics).
    pub pages_received: u64,
}

const TOKEN_NEXT_EVENT: u64 = 1;
const TOKEN_TRAIN: u64 = 2;

impl UserGenApp {
    /// A user generator with the given tuning.
    pub fn new(cfg: UserGenConfig) -> Self {
        assert!(!cfg.web_nodes.is_empty(), "no web servers to hit");
        assert!(cfg.rate_per_s > 0.0);
        assert!(cfg.train.0 >= 1 && cfg.train.0 <= cfg.train.1);
        UserGenApp {
            cfg,
            next_group: 0,
            train_left: 0,
            train_dst: None,
            requests_sent: 0,
            pages_received: 0,
        }
    }

    fn mean_train(&self) -> f64 {
        (self.cfg.train.0 + self.cfg.train.1) as f64 / 2.0
    }

    fn schedule_next_event(&self, env: &mut Env<'_, '_>) {
        // Event rate = page rate / pages per event, so the configured page
        // rate is preserved regardless of train length.
        let event_rate = self.cfg.rate_per_s / self.mean_train();
        let gap = env.rng.exp(1.0 / event_rate);
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_NEXT_EVENT);
    }

    fn send_page(&mut self, env: &mut Env<'_, '_>, dst: NodeId) {
        let page = self.cfg.page.sample(env.rng);
        let group = self.next_group;
        self.next_group = self.next_group.wrapping_add(1);
        env.send_request(dst, page, group);
        self.requests_sent += 1;
    }

    fn continue_train(&mut self, env: &mut Env<'_, '_>) {
        if self.train_left == 0 {
            self.train_dst = None;
            self.schedule_next_event(env);
            return;
        }
        let gap = env.rng.exp(self.cfg.train_gap.as_secs_f64());
        env.timer_in(Nanos::from_secs_f64(gap), TOKEN_TRAIN);
    }
}

impl App for UserGenApp {
    fn start(&mut self, env: &mut Env<'_, '_>) {
        self.schedule_next_event(env);
    }

    fn on_timer(&mut self, env: &mut Env<'_, '_>, token: u64) {
        match token {
            TOKEN_NEXT_EVENT => {
                let dst = *env.rng.pick(&self.cfg.web_nodes);
                let len = env
                    .rng
                    .range(self.cfg.train.0 as u64, self.cfg.train.1 as u64)
                    as usize;
                self.train_dst = Some(dst);
                self.train_left = len - 1;
                self.send_page(env, dst);
                self.continue_train(env);
            }
            TOKEN_TRAIN => {
                let dst = self.train_dst.expect("train without target");
                self.train_left -= 1;
                self.send_page(env, dst);
                self.continue_train(env);
            }
            other => debug_assert!(false, "unknown user token {other}"),
        }
    }

    fn on_flow_received(&mut self, _env: &mut Env<'_, '_>, msg: Incoming) {
        if msg.kind == MsgKind::Response {
            self.pages_received += 1;
        }
    }

    fn on_flow_sent(&mut self, _env: &mut Env<'_, '_>, _flow: FlowId, _tag: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::AppHost;
    use crate::responder::{ResponderApp, ResponderConfig};
    use uburst_sim::counters::null_sink;
    use uburst_sim::link::LinkSpec;
    use uburst_sim::nic::NicConfig;
    use uburst_sim::node::PortId;
    use uburst_sim::routing::{Route, RoutingTable};
    use uburst_sim::sim::Simulator;
    use uburst_sim::switch::{Switch, SwitchConfig};
    use uburst_sim::transport::TransportConfig;

    #[test]
    fn full_page_assembly_pipeline() {
        let mut sim = Simulator::new();
        // 3 cache nodes, 1 web server, 1 user, 1 switch.
        let caches: Vec<NodeId> = (0..3)
            .map(|i| {
                AppHost::spawn(
                    &mut sim,
                    Box::new(ResponderApp::new(ResponderConfig::default())),
                    NicConfig::default(),
                    TransportConfig::default(),
                    100 + i,
                    Nanos::ZERO,
                )
            })
            .collect();
        let web = AppHost::spawn(
            &mut sim,
            Box::new(WebServerApp::new(WebServerConfig {
                cache_nodes: caches.clone(),
                fanout: (2, 3),
                ..WebServerConfig::default()
            })),
            NicConfig::default(),
            TransportConfig::default(),
            200,
            Nanos::ZERO,
        );
        let user = AppHost::spawn(
            &mut sim,
            Box::new(UserGenApp::new(UserGenConfig {
                web_nodes: vec![web],
                rate_per_s: 2_000.0,
                page: SizeDist {
                    median: 50_000,
                    sigma: 0.5,
                    cap: 500_000,
                },
                train: (1, 3),
                train_gap: Nanos::from_micros(40),
            })),
            NicConfig::default(),
            TransportConfig::default(),
            300,
            Nanos::ZERO,
        );

        // One switch stars everyone together.
        let mut routing = RoutingTable::new(0);
        let all: Vec<NodeId> = caches.iter().copied().chain([web, user]).collect();
        for (i, &h) in all.iter().enumerate() {
            routing.set_route(h, Route::Port(PortId(i as u16)));
        }
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::default(),
            routing,
            null_sink(),
        )));
        for (i, &h) in all.iter().enumerate() {
            sim.connect(
                (h, PortId(0)),
                (sw, PortId(i as u16)),
                LinkSpec::gbps(10.0, Nanos(500)),
            );
        }

        sim.run_until(Nanos::from_millis(100));

        let user_app = sim.node::<AppHost>(user).app::<UserGenApp>();
        assert!(
            user_app.requests_sent >= 100,
            "user sent {} requests",
            user_app.requests_sent
        );
        let web_app = sim.node::<AppHost>(web).app::<WebServerApp>();
        assert!(
            web_app.pages_served >= user_app.pages_received,
            "pages served {} < pages received {}",
            web_app.pages_served,
            user_app.pages_received
        );
        // Allow the tail of in-flight pages, but most must complete.
        assert!(
            user_app.pages_received as f64 >= 0.9 * user_app.requests_sent as f64 - 5.0,
            "only {}/{} pages came back",
            user_app.pages_received,
            user_app.requests_sent
        );
        // Every page required cache work.
        let served: u64 = caches
            .iter()
            .map(|&c| sim.node::<AppHost>(c).app::<ResponderApp>().served)
            .sum();
        assert!(served >= 2 * web_app.pages_served, "cache served {served}");
    }

    #[test]
    fn size_dist_respects_cap_and_median() {
        let mut rng = uburst_sim::rng::Rng::new(5);
        let d = SizeDist {
            median: 10_000,
            sigma: 1.0,
            cap: 50_000,
        };
        let mut xs: Vec<u64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (1..=50_000).contains(&x)));
        xs.sort_unstable();
        let median = xs[xs.len() / 2] as f64;
        assert!(
            (7_000.0..=13_000.0).contains(&median),
            "median {median} should be near 10k"
        );
    }
}
