//! Sampling-interval auto-tuning.
//!
//! The paper tuned each counter's polling interval by hand: "For the
//! counters we measure, we manually determine the minimum sampling interval
//! possible while maintaining ~1 % sampling loss" (§4.1), and Table 1 shows
//! the loss-vs-interval curve for a byte counter. This module automates
//! that procedure: run short probe campaigns at candidate intervals and
//! binary-search the smallest interval whose deadline-miss fraction stays
//! under the target.
//!
//! The miss fraction is monotonically non-increasing in the interval (a
//! longer budget can only help), which is what makes bisection sound; the
//! probe noise is handled by a tolerance band and by probing long enough
//! windows.

use std::rc::Rc;

use uburst_asic::{AccessModel, AsicCounters, CounterId};
use uburst_sim::sim::Simulator;
use uburst_sim::time::Nanos;

use crate::poller::Poller;
use crate::spec::{CampaignConfig, CoreMode};

/// One probe measurement from the tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// Interval probed.
    pub interval: Nanos,
    /// Observed deadline-miss fraction.
    pub miss_fraction: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The smallest probed interval meeting the target.
    pub min_interval: Nanos,
    /// Every probe taken, in probing order (Table 1 is exactly this list
    /// for intervals {1, 10, 25} µs).
    pub probes: Vec<ProbePoint>,
}

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct TuningConfig {
    /// Acceptable miss fraction (paper: ~1 %).
    pub target_loss: f64,
    /// Search range.
    pub min_interval: Nanos,
    /// Search range.
    pub max_interval: Nanos,
    /// Campaign length per probe — longer probes, steadier estimates.
    pub probe_duration: Nanos,
    /// Bisection stops when the bracket is this tight.
    pub resolution: Nanos,
    /// CPU placement for the probes.
    pub core_mode: CoreMode,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            target_loss: 0.01,
            min_interval: Nanos::from_micros(1),
            max_interval: Nanos::from_micros(200),
            probe_duration: Nanos::from_millis(250),
            resolution: Nanos::from_micros(1),
            core_mode: CoreMode::Dedicated,
        }
    }
}

/// Runs one probe campaign against an idle counter bank and reports the
/// deadline-miss fraction. Polling cost does not depend on traffic, so an
/// idle bank probes exactly as a busy one would.
pub fn probe_miss_fraction(
    counters: &[CounterId],
    access: AccessModel,
    interval: Nanos,
    duration: Nanos,
    core_mode: CoreMode,
    seed: u64,
) -> f64 {
    let n_ports = counters
        .iter()
        .map(|c| match *c {
            CounterId::RxBytes(p)
            | CounterId::RxPackets(p)
            | CounterId::TxBytes(p)
            | CounterId::TxPackets(p)
            | CounterId::Drops(p)
            | CounterId::RxSizeHist(p, _)
            | CounterId::TxSizeHist(p, _) => p.0 as usize + 1,
            CounterId::BufferLevel | CounterId::BufferPeak => 1,
        })
        .max()
        .unwrap_or(1);
    let mut sim = Simulator::new();
    let bank: Rc<AsicCounters> = AsicCounters::new_shared(n_ports);
    let mut campaign = CampaignConfig::group("tuning-probe", counters.to_vec(), interval);
    campaign.core_mode = core_mode;
    let id = Poller::in_memory(bank, access, campaign, seed)
        .expect("probe campaign is non-empty with a nonzero interval")
        .spawn(&mut sim, Nanos::ZERO, duration)
        .expect("probe window is non-empty");
    sim.run_until(Nanos::MAX);
    sim.node_mut::<Poller>(id).stats().deadline_miss_fraction()
}

/// Like [`probe_miss_fraction`] but returns `(miss, late)` fractions:
/// intervals with no sample at all, and samples landing off-schedule.
pub fn probe_loss_profile(
    counters: &[CounterId],
    access: AccessModel,
    interval: Nanos,
    duration: Nanos,
    core_mode: CoreMode,
    seed: u64,
) -> (f64, f64) {
    let n_ports = counters
        .iter()
        .map(|c| match *c {
            CounterId::RxBytes(p)
            | CounterId::RxPackets(p)
            | CounterId::TxBytes(p)
            | CounterId::TxPackets(p)
            | CounterId::Drops(p)
            | CounterId::RxSizeHist(p, _)
            | CounterId::TxSizeHist(p, _) => p.0 as usize + 1,
            CounterId::BufferLevel | CounterId::BufferPeak => 1,
        })
        .max()
        .unwrap_or(1);
    let mut sim = Simulator::new();
    let bank: Rc<AsicCounters> = AsicCounters::new_shared(n_ports);
    let mut campaign = CampaignConfig::group("tuning-probe", counters.to_vec(), interval);
    campaign.core_mode = core_mode;
    let id = Poller::in_memory(bank, access, campaign, seed)
        .expect("probe campaign is non-empty with a nonzero interval")
        .spawn(&mut sim, Nanos::ZERO, duration)
        .expect("probe window is non-empty");
    sim.run_until(Nanos::MAX);
    let stats = sim.node_mut::<Poller>(id).stats();
    (stats.deadline_miss_fraction(), stats.late_fraction())
}

/// Finds the minimum interval with miss fraction ≤ `cfg.target_loss` for a
/// campaign reading `counters` together.
///
/// # Panics
/// Panics if even `cfg.max_interval` cannot meet the target (the counter is
/// unpollable at the asked loss level — widen the range).
pub fn tune_min_interval(
    counters: &[CounterId],
    access: AccessModel,
    cfg: &TuningConfig,
) -> TuningResult {
    assert!(cfg.min_interval < cfg.max_interval);
    let mut probes = Vec::new();
    let mut probe = |interval: Nanos, salt: u64| -> f64 {
        let f = probe_miss_fraction(
            counters,
            access,
            interval,
            cfg.probe_duration,
            cfg.core_mode,
            0xF00D ^ salt,
        );
        probes.push(ProbePoint {
            interval,
            miss_fraction: f,
        });
        f
    };

    let hi_loss = probe(cfg.max_interval, 0);
    assert!(
        hi_loss <= cfg.target_loss,
        "even {} misses {:.1}% > target {:.1}%",
        cfg.max_interval,
        hi_loss * 100.0,
        cfg.target_loss * 100.0
    );

    // Bisect [lo, hi] where lo fails (or is untested-and-assumed-failing)
    // and hi passes.
    let mut lo = cfg.min_interval;
    let mut hi = cfg.max_interval;
    let mut salt = 1;
    while hi.saturating_sub(lo) > cfg.resolution {
        let mid = Nanos((lo.as_nanos() + hi.as_nanos()) / 2);
        if probe(mid, salt) <= cfg.target_loss {
            hi = mid;
        } else {
            lo = mid;
        }
        salt += 1;
    }

    TuningResult {
        min_interval: hi,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uburst_sim::node::PortId;

    #[test]
    fn byte_counter_tunes_near_25us() {
        // The headline calibration: ~1% loss lands in the neighbourhood the
        // paper chose (25us) for a single byte counter.
        let r = tune_min_interval(
            &[CounterId::TxBytes(PortId(0))],
            AccessModel::default(),
            &TuningConfig::default(),
        );
        let us = r.min_interval.as_micros_f64();
        assert!(
            (18.0..=40.0).contains(&us),
            "tuned interval {us}us should be near the paper's 25us"
        );
        assert!(r.probes.len() >= 3);
    }

    #[test]
    fn buffer_peak_tunes_near_50us() {
        let cfg = TuningConfig {
            max_interval: Nanos::from_micros(400),
            ..TuningConfig::default()
        };
        let r = tune_min_interval(&[CounterId::BufferPeak], AccessModel::default(), &cfg);
        let us = r.min_interval.as_micros_f64();
        assert!(
            (45.0..=90.0).contains(&us),
            "peak register tuned to {us}us; paper used 50us"
        );
    }

    #[test]
    fn multi_counter_needs_longer_interval_than_single_but_sublinear() {
        // Memory-class counters make the deterministic gap large enough to
        // dominate probe noise: 1 read ≈ 4.2us vs 8 batched ≈ 10.9us.
        let single = tune_min_interval(
            &[CounterId::TxSizeHist(PortId(0), 0)],
            AccessModel::default(),
            &TuningConfig::default(),
        )
        .min_interval;
        let eight: Vec<CounterId> = (0..8)
            .map(|b| CounterId::TxSizeHist(PortId(0), b % 7))
            .collect();
        let grouped = tune_min_interval(&eight, AccessModel::default(), &TuningConfig::default())
            .min_interval;
        assert!(
            grouped.as_nanos() >= single.as_nanos() + 3_000,
            "8 counters ({grouped}) should need a clearly longer interval than 1 ({single})"
        );
        assert!(
            grouped.as_nanos() < single.as_nanos() * 4,
            "grouped {grouped} must stay far below 8x the single-counter interval {single}"
        );
    }

    #[test]
    fn probe_is_deterministic_for_seed() {
        let f1 = probe_miss_fraction(
            &[CounterId::TxBytes(PortId(0))],
            AccessModel::default(),
            Nanos::from_micros(10),
            Nanos::from_millis(50),
            CoreMode::Dedicated,
            1,
        );
        let f2 = probe_miss_fraction(
            &[CounterId::TxBytes(PortId(0))],
            AccessModel::default(),
            Nanos::from_micros(10),
            Nanos::from_millis(50),
            CoreMode::Dedicated,
            1,
        );
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "misses")]
    fn impossible_target_panics() {
        let cfg = TuningConfig {
            max_interval: Nanos::from_micros(2),
            ..TuningConfig::default()
        };
        // A 2us budget can never fit a ~2.5us+jitter poll at 1% loss.
        tune_min_interval(
            &[CounterId::TxBytes(PortId(0))],
            AccessModel::default(),
            &cfg,
        );
    }
}
