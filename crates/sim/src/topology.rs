//! Clos topology construction.
//!
//! Builds the network of the paper's §4.2: racks of servers on 10 G links
//! into a ToR, four 40 G uplinks per ToR into a fabric tier, fabric switches
//! into a spine, and remote endpoints (the "rest of the data center")
//! hanging off the spine. Flows between racks traverse ToR → fabric → ToR;
//! flows to/from remote endpoints additionally cross the spine, and the
//! spine ECMP-spreads rack-bound flows over the fabric tier — which is what
//! makes *ingress* uplink balance (Fig. 7b) an emergent property rather than
//! an input.
//!
//! Host nodes are created by the caller (they carry application behaviour);
//! the builder creates the switches, wires everything, and installs routes.

use crate::bufpolicy::BufferPolicyCfg;
use crate::counters::{null_sink, SharedSink};
use crate::link::LinkSpec;
use crate::node::{NodeId, PortId};
use crate::routing::{EcmpMode, Route, RoutingTable};
use crate::sim::Simulator;
use crate::switch::{Switch, SwitchConfig};
use crate::time::Nanos;

/// Parameters of the Clos fabric.
#[derive(Debug, Clone)]
pub struct ClosConfig {
    /// Fabric switches per pod (= uplinks per ToR). The paper's racks use 4.
    pub n_fabric: usize,
    /// Host ↔ ToR links (10 G in the paper).
    pub server_link: LinkSpec,
    /// ToR ↔ fabric links (40 G or 100 G in the paper; 40 G default). With
    /// 16 servers this gives the 1:4 rack oversubscription of §6.3.
    pub uplink: LinkSpec,
    /// Fabric ↔ spine links.
    pub fabric_spine: LinkSpec,
    /// Remote endpoint ↔ spine links.
    pub remote_link: LinkSpec,
    /// ToR switch parameters (buffer, carving policy).
    pub tor_switch: SwitchConfig,
    /// Fabric/spine switch parameters. Deeper buffers, faster ports — the
    /// paper observes most loss is at ToRs, which holds here too.
    pub core_switch: SwitchConfig,
    /// Base ECMP hash seed; each switch derives its own.
    pub ecmp_seed: u64,
    /// Flow hashing (production) or per-packet spray (ablation baseline).
    pub ecmp_mode: EcmpMode,
}

impl Default for ClosConfig {
    fn default() -> Self {
        ClosConfig {
            n_fabric: 4,
            server_link: LinkSpec::gbps(10.0, Nanos(500)),
            uplink: LinkSpec::gbps(40.0, Nanos(1_000)),
            fabric_spine: LinkSpec::gbps(40.0, Nanos(1_000)),
            remote_link: LinkSpec::gbps(40.0, Nanos(2_000)),
            tor_switch: SwitchConfig {
                ports: 0, // sized by the builder
                buffer_bytes: 12 << 20,
                policy: BufferPolicyCfg::dt(1.0),
                ecn_threshold: None,
            },
            core_switch: SwitchConfig {
                ports: 0,
                buffer_bytes: 24 << 20,
                policy: BufferPolicyCfg::dt(2.0),
                ecn_threshold: None,
            },
            ecmp_seed: 0x5eed,
            ecmp_mode: EcmpMode::FlowHash,
        }
    }
}

impl ClosConfig {
    /// Derives this config for one rack of a fleet campaign: re-keys the
    /// ECMP hash seed per `(fleet_seed, rack_index)` so identical
    /// workloads on different racks do not hash their flows onto the same
    /// uplinks — fleet-level ECMP-balance figures would otherwise be N
    /// copies of one rack's hash luck instead of N draws. Deterministic:
    /// the same fleet seed and rack index always produce the same fabric.
    pub fn for_fleet_rack(mut self, fleet_seed: u64, rack_index: u32) -> ClosConfig {
        let mut h =
            fleet_seed ^ self.ecmp_seed ^ (rack_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        self.ecmp_seed = h;
        self
    }
}

/// One rack to build: its (already created) host nodes and the counter sink
/// for its ToR (use [`null_sink`] for unmeasured racks).
pub struct RackSpec {
    /// The rack's host nodes, in ToR port order.
    pub hosts: Vec<NodeId>,
    /// Counter sink for the rack's ToR.
    pub sink: SharedSink,
}

/// What the builder returns: node ids and port maps needed to attach
/// telemetry and interpret counters.
#[derive(Debug)]
pub struct ClosHandles {
    /// ToR switch node per rack, in rack order.
    pub tors: Vec<NodeId>,
    /// The fabric-tier switches.
    pub fabrics: Vec<NodeId>,
    /// The spine switch.
    pub spine: NodeId,
    /// Per rack: ToR ports facing each host (index = host index in the rack).
    pub tor_host_ports: Vec<Vec<PortId>>,
    /// Per rack: ToR uplink ports (one per fabric switch).
    pub tor_uplink_ports: Vec<Vec<PortId>>,
    /// Host ↔ ToR link spec, re-exported for utilization computations.
    pub server_link: LinkSpec,
    /// ToR ↔ fabric link spec, re-exported for utilization computations.
    pub uplink: LinkSpec,
}

/// Builds the fabric. `remotes` are endpoint nodes representing the rest of
/// the data center (web frontends, cache tiers in other pods, users).
///
/// # Panics
/// Panics on an empty rack list, empty racks, or zero fabric switches.
pub fn build_clos(
    sim: &mut Simulator,
    cfg: &ClosConfig,
    racks: Vec<RackSpec>,
    remotes: &[NodeId],
) -> ClosHandles {
    build_clos_with_core_sinks(sim, cfg, racks, remotes, &[])
}

/// [`build_clos`] with counter sinks for the fabric tier: `fabric_sinks[f]`
/// is attached to fabric switch `f` (missing entries get null sinks). Lets
/// experiments measure beyond the ToR — the paper left "the study of other
/// network tiers to future work" (§4.2).
pub fn build_clos_with_core_sinks(
    sim: &mut Simulator,
    cfg: &ClosConfig,
    racks: Vec<RackSpec>,
    remotes: &[NodeId],
    fabric_sinks: &[SharedSink],
) -> ClosHandles {
    assert!(!racks.is_empty(), "need at least one rack");
    assert!(cfg.n_fabric > 0, "need at least one fabric switch");
    for r in &racks {
        assert!(!r.hosts.is_empty(), "rack with no hosts");
    }
    let n_racks = racks.len();
    let n_fabric = cfg.n_fabric;

    let seed = |salt: u64| cfg.ecmp_seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);

    // --- Create switches -------------------------------------------------
    let mut tors = Vec::with_capacity(n_racks);
    for (r, rack) in racks.iter().enumerate() {
        let n_hosts = rack.hosts.len();
        let mut routing = RoutingTable::with_mode(seed(1 + r as u64), cfg.ecmp_mode);
        for (i, &h) in rack.hosts.iter().enumerate() {
            routing.set_route(h, Route::Port(PortId(i as u16)));
        }
        let uplinks: Vec<PortId> = (0..n_fabric)
            .map(|f| PortId((n_hosts + f) as u16))
            .collect();
        let g = routing.add_group(uplinks);
        routing.set_default(Route::Group(g));
        let sw_cfg = SwitchConfig {
            ports: (n_hosts + n_fabric) as u16,
            ..cfg.tor_switch.clone()
        };
        tors.push(sim.add_node(Box::new(Switch::new(sw_cfg, routing, rack.sink.clone()))));
    }

    let mut fabrics = Vec::with_capacity(n_fabric);
    for f in 0..n_fabric {
        let mut routing = RoutingTable::with_mode(seed(1000 + f as u64), EcmpMode::FlowHash);
        for (r, rack) in racks.iter().enumerate() {
            for &h in &rack.hosts {
                routing.set_route(h, Route::Port(PortId(r as u16)));
            }
        }
        // Everything else (remotes) goes up to the spine.
        routing.set_default(Route::Port(PortId(n_racks as u16)));
        let sw_cfg = SwitchConfig {
            ports: (n_racks + 1) as u16,
            ..cfg.core_switch.clone()
        };
        let sink = fabric_sinks.get(f).cloned().unwrap_or_else(null_sink);
        fabrics.push(sim.add_node(Box::new(Switch::new(sw_cfg, routing, sink))));
    }

    let spine = {
        let mut routing = RoutingTable::with_mode(seed(2000), EcmpMode::FlowHash);
        // Rack-bound traffic spreads over the fabric tier.
        let fabric_ports: Vec<PortId> = (0..n_fabric).map(|f| PortId(f as u16)).collect();
        let g = routing.add_group(fabric_ports);
        for rack in &racks {
            for &h in &rack.hosts {
                routing.set_route(h, Route::Group(g));
            }
        }
        for (k, &rem) in remotes.iter().enumerate() {
            routing.set_route(rem, Route::Port(PortId((n_fabric + k) as u16)));
        }
        let sw_cfg = SwitchConfig {
            ports: (n_fabric + remotes.len()) as u16,
            ..cfg.core_switch.clone()
        };
        sim.add_node(Box::new(Switch::new(sw_cfg, routing, null_sink())))
    };

    // --- Wire links -------------------------------------------------------
    let mut tor_host_ports = Vec::with_capacity(n_racks);
    let mut tor_uplink_ports = Vec::with_capacity(n_racks);
    for (r, rack) in racks.iter().enumerate() {
        let mut host_ports = Vec::with_capacity(rack.hosts.len());
        for (i, &h) in rack.hosts.iter().enumerate() {
            let p = PortId(i as u16);
            sim.connect((h, PortId(0)), (tors[r], p), cfg.server_link);
            host_ports.push(p);
        }
        let mut uplink_ports = Vec::with_capacity(n_fabric);
        for (f, &fab) in fabrics.iter().enumerate() {
            let p = PortId((rack.hosts.len() + f) as u16);
            sim.connect((tors[r], p), (fab, PortId(r as u16)), cfg.uplink);
            uplink_ports.push(p);
        }
        tor_host_ports.push(host_ports);
        tor_uplink_ports.push(uplink_ports);
    }
    for (f, &fab) in fabrics.iter().enumerate() {
        sim.connect(
            (fab, PortId(n_racks as u16)),
            (spine, PortId(f as u16)),
            cfg.fabric_spine,
        );
    }
    for (k, &rem) in remotes.iter().enumerate() {
        sim.connect(
            (rem, PortId(0)),
            (spine, PortId((n_fabric + k) as u16)),
            cfg.remote_link,
        );
    }

    ClosHandles {
        tors,
        fabrics,
        spine,
        tor_host_ports,
        tor_uplink_ports,
        server_link: cfg.server_link,
        uplink: cfg.uplink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::{HostNic, NicConfig, NIC_PACE_TOKEN};
    use crate::node::{Ctx, Node};
    use crate::packet::Packet;
    use crate::transport::{TransportConfig, TransportEndpoint, TransportEvent};
    use std::any::Any;

    /// Generic test host used across topology tests.
    struct Host {
        nic: HostNic,
        transport: Option<TransportEndpoint>,
        received: Vec<TransportEvent>,
        to_send: Vec<(NodeId, u64)>,
    }

    impl Host {
        fn boxed() -> Box<Self> {
            Box::new(Host {
                nic: HostNic::new(NicConfig::default()),
                transport: None,
                received: Vec::new(),
                to_send: Vec::new(),
            })
        }
    }

    impl Node for Host {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            let t = self.transport.as_mut().unwrap();
            let evs = t.on_packet(ctx, &mut self.nic, pkt);
            self.received.extend(evs);
        }
        fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
            self.nic.on_tx_complete(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == NIC_PACE_TOKEN {
                self.nic.on_timer(ctx);
            } else if TransportEndpoint::owns_token(token) {
                let t = self.transport.as_mut().unwrap();
                t.on_timer(ctx, &mut self.nic, token);
            } else {
                for (dst, bytes) in std::mem::take(&mut self.to_send) {
                    self.transport
                        .as_mut()
                        .unwrap()
                        .start_flow(ctx, &mut self.nic, dst, bytes, 0);
                }
            }
        }
        fn settle_lazy(&mut self, now: Nanos) {
            self.nic.settle_to(now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn make_hosts(sim: &mut Simulator, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|_| {
                let id = sim.add_node(Host::boxed());
                let t = TransportEndpoint::new(id, TransportConfig::default());
                sim.node_mut::<Host>(id).transport = Some(t);
                id
            })
            .collect()
    }

    fn build_two_racks() -> (
        Simulator,
        Vec<NodeId>,
        Vec<NodeId>,
        Vec<NodeId>,
        ClosHandles,
    ) {
        let mut sim = Simulator::new();
        let rack_a = make_hosts(&mut sim, 4);
        let rack_b = make_hosts(&mut sim, 4);
        let remotes = make_hosts(&mut sim, 2);
        let cfg = ClosConfig::default();
        let handles = build_clos(
            &mut sim,
            &cfg,
            vec![
                RackSpec {
                    hosts: rack_a.clone(),
                    sink: null_sink(),
                },
                RackSpec {
                    hosts: rack_b.clone(),
                    sink: null_sink(),
                },
            ],
            &remotes,
        );
        (sim, rack_a, rack_b, remotes, handles)
    }

    fn run_flow(sim: &mut Simulator, src: NodeId, dst: NodeId, bytes: u64) {
        sim.node_mut::<Host>(src).to_send.push((dst, bytes));
        let t = sim.now();
        sim.schedule_timer(t, src, 0);
        sim.run_for(Nanos::from_millis(50));
    }

    #[test]
    fn intra_rack_flow_traverses_tor_only() {
        let (mut sim, rack_a, _b, _r, handles) = build_two_racks();
        run_flow(&mut sim, rack_a[0], rack_a[1], 100_000);
        assert_eq!(
            sim.node::<Host>(rack_a[1]).received.len(),
            1,
            "intra-rack flow should complete"
        );
        // Fabric switches saw no data traffic.
        for &f in &handles.fabrics {
            assert_eq!(sim.node::<Switch>(f).stats().rx_packets, 0);
        }
    }

    #[test]
    fn inter_rack_flow_crosses_fabric_not_spine() {
        let (mut sim, rack_a, rack_b, _r, handles) = build_two_racks();
        run_flow(&mut sim, rack_a[0], rack_b[2], 100_000);
        assert_eq!(sim.node::<Host>(rack_b[2]).received.len(), 1);
        let fabric_rx: u64 = handles
            .fabrics
            .iter()
            .map(|&f| sim.node::<Switch>(f).stats().rx_packets)
            .sum();
        assert!(fabric_rx > 0, "inter-rack traffic must cross the fabric");
        assert_eq!(
            sim.node::<Switch>(handles.spine).stats().rx_packets,
            0,
            "pod-local traffic must not reach the spine"
        );
    }

    #[test]
    fn remote_flow_crosses_spine() {
        let (mut sim, rack_a, _b, remotes, handles) = build_two_racks();
        run_flow(&mut sim, remotes[0], rack_a[3], 100_000);
        assert_eq!(sim.node::<Host>(rack_a[3]).received.len(), 1);
        assert!(sim.node::<Switch>(handles.spine).stats().rx_packets > 0);
    }

    #[test]
    fn no_unroutable_packets_anywhere() {
        let (mut sim, rack_a, rack_b, remotes, handles) = build_two_racks();
        run_flow(&mut sim, rack_a[0], rack_b[0], 50_000);
        run_flow(&mut sim, rack_b[1], remotes[1], 50_000);
        run_flow(&mut sim, remotes[0], rack_a[2], 50_000);
        for &sw in handles
            .tors
            .iter()
            .chain(handles.fabrics.iter())
            .chain([&handles.spine])
        {
            assert_eq!(sim.node::<Switch>(sw).stats().unroutable, 0);
        }
    }

    #[test]
    fn distinct_flows_use_distinct_uplinks() {
        // With enough remote-bound flows from one rack, ECMP must use all
        // four uplinks (flow-hash spread).
        let (mut sim, rack_a, _b, remotes, handles) = build_two_racks();
        for i in 0..16 {
            let src = rack_a[i % rack_a.len()];
            sim.node_mut::<Host>(src).to_send.push((remotes[0], 20_000));
            sim.schedule_timer(Nanos(i as u64), src, 0);
        }
        sim.run_until(Nanos::from_millis(100));
        let used: usize = handles
            .fabrics
            .iter()
            .filter(|&&f| sim.node::<Switch>(f).stats().rx_packets > 0)
            .count();
        assert!(used >= 3, "expected ≥3 of 4 uplinks used, got {used}");
    }

    #[test]
    fn handles_describe_ports_correctly() {
        let (sim, _a, _b, _r, handles) = build_two_racks();
        assert_eq!(handles.tors.len(), 2);
        assert_eq!(handles.fabrics.len(), 4);
        assert_eq!(handles.tor_host_ports[0].len(), 4);
        assert_eq!(handles.tor_uplink_ports[0].len(), 4);
        // ToR has host ports + uplink ports wired.
        assert_eq!(sim.wiring().port_count(handles.tors[0]), 8);
        assert_eq!(sim.node::<Switch>(handles.tors[0]).config().ports, 8);
    }

    #[test]
    fn fleet_rack_ecmp_seeds_are_derived_deterministically() {
        let base = ClosConfig::default();
        let a = base.clone().for_fleet_rack(42, 0);
        let b = base.clone().for_fleet_rack(42, 1);
        assert_ne!(a.ecmp_seed, b.ecmp_seed, "racks hash independently");
        assert_eq!(
            a.ecmp_seed,
            base.clone().for_fleet_rack(42, 0).ecmp_seed,
            "derivation is a pure function"
        );
        assert_ne!(
            a.ecmp_seed,
            base.for_fleet_rack(43, 0).ecmp_seed,
            "fleet seed re-keys every rack"
        );
    }
}
