//! Adaptive degradation of an overloaded sampling loop.
//!
//! The paper's framework must "trade away precision to decrease
//! utilization" (§4.1) rather than stall the switch CPU. This module makes
//! that trade automatic: a [`DegradationController`] watches the fraction of
//! missed deadlines over a sliding window and, when sustained pressure
//! exceeds a watermark, steps the campaign down — either **shedding**
//! low-priority counters from the poll group or **stretching** the sampling
//! interval. When pressure subsides below the low watermark it steps back
//! up, so transient congestion degrades resolution instead of losing the
//! campaign, and the degradation is fully accounted in
//! [`crate::PollerStats`].

use std::collections::VecDeque;

/// What the controller does when the loop falls behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Never degrade (the seed behaviour).
    #[default]
    Off,
    /// Drop low-priority counters from the poll group, one per step.
    /// Priority is campaign order: the **first** counter is shed last.
    ShedCounters,
    /// Double the effective sampling interval per step.
    StretchInterval,
}

/// Watermarks and pacing for adaptive degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Response to sustained overload.
    pub mode: DegradeMode,
    /// Sliding window length, in deadline outcomes.
    pub window: usize,
    /// Step down when the windowed miss fraction exceeds this.
    pub high_watermark: f64,
    /// Step back up when the windowed miss fraction falls below this.
    pub low_watermark: f64,
    /// Maximum degradation steps (shed counters or interval doublings).
    pub max_level: u32,
    /// Minimum outcomes between consecutive level changes, so one bad
    /// window cannot slam the controller to the floor.
    pub cooldown: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            mode: DegradeMode::Off,
            window: 256,
            high_watermark: 0.25,
            low_watermark: 0.05,
            max_level: 3,
            cooldown: 64,
        }
    }
}

impl DegradationPolicy {
    /// A shedding policy with default watermarks.
    pub fn shed() -> Self {
        DegradationPolicy {
            mode: DegradeMode::ShedCounters,
            ..DegradationPolicy::default()
        }
    }

    /// A stretching policy with default watermarks.
    pub fn stretch() -> Self {
        DegradationPolicy {
            mode: DegradeMode::StretchInterval,
            ..DegradationPolicy::default()
        }
    }

    fn validate(&self) {
        assert!(self.window > 0, "zero degradation window");
        assert!(
            self.low_watermark <= self.high_watermark,
            "watermarks inverted"
        );
    }
}

/// Sliding-window controller deciding the current degradation level.
#[derive(Debug, Clone)]
pub struct DegradationController {
    policy: DegradationPolicy,
    outcomes: VecDeque<bool>, // true = deadline missed
    missed_in_window: usize,
    level: u32,
    since_change: usize,
    /// Times the controller stepped down (diagnostics).
    pub steps_down: u32,
    /// Times the controller recovered a step (diagnostics).
    pub steps_up: u32,
}

impl DegradationController {
    /// A controller executing `policy`.
    pub fn new(policy: DegradationPolicy) -> Self {
        policy.validate();
        DegradationController {
            policy,
            outcomes: VecDeque::with_capacity(policy.window),
            missed_in_window: 0,
            level: 0,
            since_change: 0,
            steps_down: 0,
            steps_up: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &DegradationPolicy {
        &self.policy
    }

    /// Current degradation level: 0 is full fidelity; each step sheds one
    /// counter or doubles the interval, depending on the mode.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Windowed deadline-miss fraction (0 until the first outcome).
    pub fn pressure(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.missed_in_window as f64 / self.outcomes.len() as f64
        }
    }

    /// Feeds one deadline outcome (`missed = true` when the deadline got no
    /// sample) and re-evaluates the level.
    pub fn observe(&mut self, missed: bool) {
        if self.policy.mode == DegradeMode::Off {
            return;
        }
        if self.outcomes.len() == self.policy.window && self.outcomes.pop_front() == Some(true) {
            self.missed_in_window -= 1;
        }
        self.outcomes.push_back(missed);
        if missed {
            self.missed_in_window += 1;
        }
        self.since_change += 1;

        // Only act on a full window, and not more often than the cooldown.
        if self.outcomes.len() < self.policy.window || self.since_change < self.policy.cooldown {
            return;
        }
        let pressure = self.pressure();
        if pressure > self.policy.high_watermark && self.level < self.policy.max_level {
            self.level += 1;
            self.steps_down += 1;
            self.since_change = 0;
            uburst_obs::counter_add("uburst_degrade_steps_down_total", 1);
            uburst_obs::gauge_max("uburst_degrade_level_peak", u64::from(self.level));
        } else if pressure < self.policy.low_watermark && self.level > 0 {
            self.level -= 1;
            self.steps_up += 1;
            self.since_change = 0;
            uburst_obs::counter_add("uburst_degrade_steps_up_total", 1);
        }
    }

    /// How many counters of an `n`-counter campaign to poll at the current
    /// level (shedding mode; never below 1). Other modes poll all `n`.
    pub fn active_counters(&self, n: usize) -> usize {
        match self.policy.mode {
            DegradeMode::ShedCounters => n.saturating_sub(self.level as usize).max(1),
            _ => n,
        }
    }

    /// The interval multiplier at the current level (stretching mode
    /// doubles per step; other modes return 1).
    pub fn interval_multiplier(&self) -> u64 {
        match self.policy.mode {
            DegradeMode::StretchInterval => 1u64 << self.level.min(62),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(mode: DegradeMode) -> DegradationController {
        DegradationController::new(DegradationPolicy {
            mode,
            window: 20,
            high_watermark: 0.3,
            low_watermark: 0.1,
            max_level: 3,
            cooldown: 5,
        })
    }

    #[test]
    fn off_mode_never_degrades() {
        let mut c = controller(DegradeMode::Off);
        for _ in 0..1000 {
            c.observe(true);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.interval_multiplier(), 1);
        assert_eq!(c.active_counters(4), 4);
    }

    #[test]
    fn sustained_pressure_steps_down_then_recovers() {
        let mut c = controller(DegradeMode::ShedCounters);
        // 50% misses: pressure over the 0.3 watermark.
        for i in 0..60 {
            c.observe(i % 2 == 0);
        }
        assert!(c.level() > 0, "sustained misses must degrade");
        let degraded = c.level();
        // Clean stretch: pressure decays under 0.1 and the level recovers.
        for _ in 0..200 {
            c.observe(false);
        }
        assert_eq!(c.level(), 0, "recovered from level {degraded}");
        assert!(c.steps_up >= degraded);
    }

    #[test]
    fn level_is_capped() {
        let mut c = controller(DegradeMode::StretchInterval);
        for _ in 0..10_000 {
            c.observe(true);
        }
        assert_eq!(c.level(), 3);
        assert_eq!(c.interval_multiplier(), 8);
    }

    #[test]
    fn cooldown_paces_changes() {
        let mut c = controller(DegradeMode::ShedCounters);
        for _ in 0..25 {
            c.observe(true);
        }
        // All-missed window, but at most floor(25-20 / 5)+1 changes since
        // the window filled; the cooldown spreads the descent.
        assert!(c.level() <= 2, "level {} jumped too fast", c.level());
    }

    #[test]
    fn shed_keeps_at_least_one_counter() {
        let mut c = controller(DegradeMode::ShedCounters);
        for _ in 0..10_000 {
            c.observe(true);
        }
        assert_eq!(c.active_counters(2), 1);
        assert_eq!(c.active_counters(1), 1);
        assert_eq!(c.active_counters(8), 5, "8 - level 3");
    }

    #[test]
    #[should_panic(expected = "watermarks inverted")]
    fn inverted_watermarks_rejected() {
        DegradationController::new(DegradationPolicy {
            high_watermark: 0.1,
            low_watermark: 0.5,
            mode: DegradeMode::ShedCounters,
            ..DegradationPolicy::default()
        });
    }
}
