//! Fleet-scale collection with graceful partial failure.
//!
//! The paper's framework polled thousands of ToRs; every campaign in this
//! repo so far measured one. This module is the aggregation tier for the
//! jump: N switches, each shipping sequenced batches over its own lossy
//! link ([`crate::link`]) through a **regional aggregator** into one
//! global [`DurableStore`] — per-switch sequence spaces merged by the
//! go-back-N receiver, exactly the PR-3 shipping protocol fanned out.
//!
//! At fleet scale the interesting failure is partial: 3% of switches
//! flaky, one rack's uplink black-holed, an aggregator stalling. Every
//! switch therefore carries an explicit health state machine
//! ([`HealthState`]: Healthy → Degraded → Quarantined → Recovered) driven
//! by switch-side degradation signals and aggregator-side
//! deadline/straggler detection, with bounded retry+backoff probes for
//! quarantined lanes. The headline property is that a figure computed
//! under partial failure *says so*: every [`FleetOutcome`] carries a
//! [`CoverageLedger`] annotating which switches (and what fraction of
//! their samples) the data includes, per health state — excluded and
//! accounted, never silently dropped.
//!
//! The module is simulation-agnostic: it consumes per-switch **round
//! streams** of already-cut [`Batch`]es ([`SwitchStream`]) so the
//! orchestration layer can produce them however it likes (the bench crate
//! fans per-switch simulations out on its worker pool, then pumps this
//! aggregation tier single-threaded in switch order — which is what keeps
//! fleet reports byte-identical across `UBURST_THREADS`).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::batch::{Batch, SourceId};
use crate::link::{LinkPlan, LossyLink};
use crate::ship::{AckMsg, SeqBatch, Shipper, ShipperConfig};
use crate::store::{SampleStore, SeqIngest};
use crate::wal::{DurableStore, FsyncPolicy, MemStorage, WalConfig};

/// One switch's health as seen by the fleet controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Delivering on deadline with acceptable coverage.
    Healthy,
    /// Recent bad rounds (degradation signal, refusals, straggling, or a
    /// coverage miss) but still in service.
    Degraded,
    /// Taken out of service after too many consecutive bad rounds. Probed
    /// with bounded backoff; its rounds are excluded *and accounted*.
    Quarantined,
    /// Back in service after a clean streak — behaves as Healthy, but the
    /// label survives so coverage reports show the round trip.
    Recovered,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovered => "recovered",
        };
        write!(f, "{s}")
    }
}

/// Tuning for the per-switch health state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Known-missing fraction of a source's assigned batches above which a
    /// round counts as bad (receiver-side coverage signal).
    pub miss_watermark: f64,
    /// Rounds a switch may hold outstanding batches without its contiguous
    /// prefix advancing before it counts as a straggler (aggregator-side
    /// deadline signal).
    pub deadline_rounds: u32,
    /// Consecutive bad rounds before a Degraded switch is quarantined.
    pub quarantine_after: u32,
    /// Consecutive clean rounds before a switch rejoins (Degraded →
    /// Healthy, or Quarantined → Recovered via probes).
    pub rejoin_after: u32,
    /// Base spacing (rounds) between quarantine probes; doubles per failed
    /// probe (capped) — bounded retry with backoff.
    pub probe_backoff: u32,
    /// Probes granted before a quarantined switch is left out for good.
    pub max_probes: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            miss_watermark: 0.25,
            deadline_rounds: 3,
            quarantine_after: 3,
            rejoin_after: 2,
            probe_backoff: 2,
            max_probes: 8,
        }
    }
}

/// One round of input from one switch's poller.
#[derive(Debug, Clone, Default)]
pub struct RoundInput {
    /// Batches the poller cut this round.
    pub batches: Vec<Batch>,
    /// Switch-side degradation signal for the round (the PR-1 degradation
    /// controller shed or stretched — the poller knows it is unhealthy
    /// before the aggregator can).
    pub degraded: bool,
}

/// Everything the fleet needs to know about one switch: identity, the
/// link it ships over, and its per-round output.
#[derive(Debug, Clone)]
pub struct SwitchStream {
    /// The switch (per-switch sequence space key).
    pub source: SourceId,
    /// Fault model for this switch's uplink to its regional aggregator.
    pub link: LinkPlan,
    /// Seed for the link's fault draws (derive per switch: same fleet
    /// seed, different switches, different weather).
    pub link_seed: u64,
    /// Batches cut per round, in round order.
    pub rounds: Vec<RoundInput>,
}

/// Fleet-level tuning.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-switch shipper tuning (window, RTO, outstanding cap).
    pub shipper: ShipperConfig,
    /// Health state machine tuning.
    pub health: HealthPolicy,
    /// Regional aggregators sharding the fleet (switch → region by
    /// `source.0 % regions`). Must be nonzero.
    pub regions: usize,
    /// Transport ticks pumped per round (shipper → link → store → ack).
    pub ticks_per_round: u32,
    /// Extra data-free rounds at the end to let retransmits drain.
    pub drain_rounds: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shipper: ShipperConfig::default(),
            health: HealthPolicy::default(),
            regions: 4,
            ticks_per_round: 8,
            drain_rounds: 6,
        }
    }
}

/// Coverage accounting for one switch: where every batch its poller
/// produced ended up.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCoverage {
    /// The switch.
    pub source: SourceId,
    /// Final health state.
    pub state: HealthState,
    /// Batches the poller produced across all rounds.
    pub produced: u64,
    /// Batches merged into the global store.
    pub stored: u64,
    /// Batches the receiver knows were assigned but never got (gap
    /// ledger). A fully black-holed switch shows up in `undelivered`
    /// instead — the receiver never learned its watermark.
    pub missing: u64,
    /// Batches never offered because the switch was quarantined.
    pub excluded: u64,
    /// Offers refused by the shipper's outstanding cap (shed at source).
    pub refused: u64,
    /// Times this switch was quarantined.
    pub quarantines: u64,
    /// Times it rejoined after quarantine.
    pub rejoins: u64,
}

impl SwitchCoverage {
    /// Fraction of produced batches that made it into the store.
    pub fn fraction(&self) -> f64 {
        if self.produced == 0 {
            return 1.0;
        }
        self.stored as f64 / self.produced as f64
    }

    /// Produced batches that are neither stored, excluded, nor refused:
    /// lost in flight (dropped by the link, or unacked at drain end).
    pub fn undelivered(&self) -> u64 {
        self.produced
            .saturating_sub(self.stored + self.excluded + self.refused)
    }
}

/// The annotation every fleet report carries: which switches, and what
/// fraction of their samples, the data includes — per health state.
#[derive(Debug, Clone, Default)]
pub struct CoverageLedger {
    /// Per-switch coverage, sorted by source.
    pub switches: Vec<SwitchCoverage>,
}

impl CoverageLedger {
    /// Switches whose data is in the report (everything not quarantined).
    pub fn included(&self) -> usize {
        self.switches
            .iter()
            .filter(|s| s.state != HealthState::Quarantined)
            .count()
    }

    /// Fleet-wide stored fraction of produced batches.
    pub fn sample_fraction(&self) -> f64 {
        let produced: u64 = self.switches.iter().map(|s| s.produced).sum();
        let stored: u64 = self.switches.iter().map(|s| s.stored).sum();
        if produced == 0 {
            return 1.0;
        }
        stored as f64 / produced as f64
    }

    /// Switch counts per health state, in state order.
    pub fn state_counts(&self) -> [(HealthState, usize); 4] {
        let mut counts = [
            (HealthState::Healthy, 0),
            (HealthState::Degraded, 0),
            (HealthState::Quarantined, 0),
            (HealthState::Recovered, 0),
        ];
        for s in &self.switches {
            for c in &mut counts {
                if c.0 == s.state {
                    c.1 += 1;
                }
            }
        }
        counts
    }

    /// Total rejoin events across the fleet.
    pub fn rejoins(&self) -> u64 {
        self.switches.iter().map(|s| s.rejoins).sum()
    }
}

impl fmt::Display for CoverageLedger {
    /// Deterministic text rendering — the annotation stamped onto fleet
    /// figures. Totals first, then one line per switch that is *not*
    /// plainly healthy (a 1000-switch fleet should not print 1000 lines
    /// to say "fine").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage: {}/{} switches included, sample fraction {:.4}",
            self.included(),
            self.switches.len(),
            self.sample_fraction()
        )?;
        let counts = self.state_counts();
        writeln!(
            f,
            "  states: healthy {}, degraded {}, quarantined {}, recovered {}",
            counts[0].1, counts[1].1, counts[2].1, counts[3].1
        )?;
        for s in &self.switches {
            if s.state == HealthState::Healthy && s.undelivered() == 0 && s.refused == 0 {
                continue;
            }
            writeln!(
                f,
                "  switch {}: {}, produced {}, stored {}, missing {}, excluded {}, refused {}, undelivered {}, quarantines {}, rejoins {}",
                s.source.0,
                s.state,
                s.produced,
                s.stored,
                s.missing,
                s.excluded,
                s.refused,
                s.undelivered(),
                s.quarantines,
                s.rejoins
            )?;
        }
        Ok(())
    }
}

/// Per-region forwarding accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStats {
    /// Switches homed on this aggregator.
    pub switches: usize,
    /// Sequenced batches relayed into the global store.
    pub forwarded: u64,
    /// Straggler deadline violations flagged by this aggregator.
    pub deadline_misses: u64,
}

/// What a fleet run produced.
pub struct FleetOutcome {
    /// The global merged store (per-switch series intact).
    pub store: Arc<SampleStore>,
    /// The coverage annotation.
    pub coverage: CoverageLedger,
    /// Per-region forwarding stats, indexed by region id.
    pub regions: Vec<RegionStats>,
    /// Data rounds pumped (drain rounds not counted).
    pub rounds: u32,
}

/// One switch's lane through the aggregation tier.
struct Lane {
    source: SourceId,
    region: usize,
    shipper: Shipper,
    data_link: LossyLink<SeqBatch>,
    ack_link: LossyLink<AckMsg>,
    rounds: Vec<RoundInput>,
    // Health FSM state.
    state: HealthState,
    consec_bad: u32,
    consec_clean: u32,
    quarantines: u64,
    rejoins: u64,
    probes_used: u32,
    next_probe: u32,
    // Aggregator-side progress tracking.
    last_contig: u64,
    rounds_since_progress: u32,
    // Coverage accounting.
    produced: u64,
    refused: u64,
    excluded: u64,
}

impl Lane {
    /// Whether this lane offers data this round, per its health state.
    /// Quarantined lanes participate only on scheduled probe rounds and
    /// only within their probe budget.
    fn participates(&mut self, round: u32, policy: &HealthPolicy) -> bool {
        if self.state != HealthState::Quarantined {
            return true;
        }
        if self.probes_used >= policy.max_probes || round < self.next_probe {
            return false;
        }
        self.probes_used += 1;
        uburst_obs::counter_add("uburst_fleet_probe_rounds_total", 1);
        true
    }

    /// Feeds one round's verdict into the FSM.
    fn observe(&mut self, round: u32, bad: bool, policy: &HealthPolicy) {
        if bad {
            self.consec_clean = 0;
            match self.state {
                HealthState::Healthy | HealthState::Recovered => {
                    self.state = HealthState::Degraded;
                    self.consec_bad = 1;
                }
                HealthState::Degraded => {
                    self.consec_bad += 1;
                    if self.consec_bad >= policy.quarantine_after {
                        self.state = HealthState::Quarantined;
                        self.quarantines += 1;
                        self.consec_bad = 0;
                        self.probes_used = 0;
                        self.next_probe = round + policy.probe_backoff;
                        uburst_obs::counter_add("uburst_fleet_quarantines_total", 1);
                    }
                }
                HealthState::Quarantined => {
                    // A failed probe: back off (exponentially, capped).
                    let shift = self.probes_used.min(4);
                    self.next_probe = round + (policy.probe_backoff << shift);
                }
            }
        } else {
            self.consec_bad = 0;
            self.consec_clean += 1;
            match self.state {
                HealthState::Degraded if self.consec_clean >= policy.rejoin_after => {
                    // Never left service, so this is not a rejoin event.
                    self.state = HealthState::Healthy;
                }
                HealthState::Quarantined => {
                    if self.consec_clean >= policy.rejoin_after {
                        self.state = HealthState::Recovered;
                        self.rejoins += 1;
                        uburst_obs::counter_add("uburst_fleet_rejoins_total", 1);
                    } else {
                        // A clean probe: probe again immediately.
                        self.next_probe = round + 1;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Runs the fleet aggregation tier over the given switch streams.
///
/// Fully deterministic: lanes are pumped in source order, links are
/// seeded, and the global store is single-writer — calling this twice
/// with the same streams yields byte-identical reports regardless of how
/// the streams themselves were produced (that is the caller's
/// determinism to keep; the bench crate's worker pool returns per-switch
/// results in submission order for exactly this reason).
///
/// Acks travel two paths: per-ingest acks ride the switch's lossy link
/// back (they can be lost — that is what retransmits are for), while the
/// per-round flush acks are applied directly, modelling the aggregator's
/// reliable control channel to its switches.
pub fn run_fleet(streams: Vec<SwitchStream>, cfg: &FleetConfig) -> FleetOutcome {
    assert!(cfg.regions > 0, "fleet with zero regions");
    assert!(cfg.ticks_per_round > 0, "fleet with zero ticks per round");
    let mut ds: DurableStore<MemStorage> = DurableStore::create(
        MemStorage::new(),
        WalConfig {
            segment_max_bytes: 1 << 20,
            fsync: FsyncPolicy::EveryN(16),
        },
    )
    .expect("MemStorage create cannot fail");
    let mut regions = vec![RegionStats::default(); cfg.regions];

    // Lanes in source order: the pump order, and therefore the report
    // order, is fixed no matter how the caller built the stream vector.
    let mut lanes: BTreeMap<SourceId, Lane> = BTreeMap::new();
    let mut max_rounds = 0u32;
    for s in streams {
        let region = s.source.0 as usize % cfg.regions;
        regions[region].switches += 1;
        max_rounds = max_rounds.max(s.rounds.len() as u32);
        lanes.insert(
            s.source,
            Lane {
                source: s.source,
                region,
                shipper: Shipper::new(s.source, cfg.shipper),
                data_link: LossyLink::new(s.link, s.link_seed),
                ack_link: LossyLink::new(s.link, s.link_seed ^ 0x9e37_79b9),
                rounds: s.rounds,
                state: HealthState::Healthy,
                consec_bad: 0,
                consec_clean: 0,
                quarantines: 0,
                rejoins: 0,
                probes_used: 0,
                next_probe: 0,
                last_contig: 0,
                rounds_since_progress: 0,
                produced: 0,
                refused: 0,
                excluded: 0,
            },
        );
    }
    uburst_obs::gauge_max("uburst_fleet_switches", lanes.len() as u64);

    // Reused across every lane and tick: the shipper's transmit burst and
    // the aggregator's per-window ingest results. Zero per-tick allocation
    // once the fleet warms up.
    let mut tx_buf: Vec<SeqBatch> = Vec::new();
    let mut ingest_buf: Vec<(SeqIngest, AckMsg)> = Vec::new();

    for round in 0..max_rounds + cfg.drain_rounds {
        let draining = round >= max_rounds;
        for lane in lanes.values_mut() {
            let input = (!draining)
                .then(|| lane.rounds.get(round as usize))
                .flatten()
                .cloned()
                .unwrap_or_default();
            let had_input = !input.batches.is_empty();
            lane.produced += input.batches.len() as u64;
            let participating = had_input && lane.participates(round, &cfg.health);
            let mut refused_this_round = 0u64;
            if participating {
                for b in input.batches {
                    if lane.shipper.offer(b).is_err() {
                        refused_this_round += 1;
                    }
                }
            } else if had_input {
                lane.excluded += input.batches.len() as u64;
            }
            lane.refused += refused_this_round;

            // Pump the transport: shipper → data link → region relay →
            // global store → ack link → shipper. Each tick's delivery
            // burst is one WAL commit window: `ingest_group` coalesces the
            // window into a single physical write (and at most one sync)
            // while returning per-frame acks identical to per-record
            // ingest, so the seeded ack link sees the exact same stream.
            for _ in 0..cfg.ticks_per_round {
                lane.shipper.tick_into(&mut tx_buf);
                for sb in tx_buf.drain(..) {
                    lane.data_link.send(sb);
                }
                let window = lane.data_link.tick();
                if !window.is_empty() {
                    regions[lane.region].forwarded += window.len() as u64;
                    ds.ingest_group(&window, &mut ingest_buf)
                        .expect("MemStorage ingest cannot fail");
                    for (_, ack) in ingest_buf.drain(..) {
                        lane.ack_link.send(ack);
                    }
                }
                for ack in lane.ack_link.tick() {
                    lane.shipper.on_ack(ack);
                }
            }

            // Aggregator-side progress / straggler tracking.
            let contig = ds.store().contiguous(lane.source);
            if contig > lane.last_contig {
                lane.last_contig = contig;
                lane.rounds_since_progress = 0;
            } else if lane.shipper.outstanding() > 0 {
                lane.rounds_since_progress += 1;
            }
            let stalled = lane.shipper.outstanding() > 0
                && lane.rounds_since_progress >= cfg.health.deadline_rounds;
            if stalled {
                regions[lane.region].deadline_misses += 1;
            }

            // Health verdict for the round. Only rounds the switch took
            // part in are judged — an excluded round proves nothing.
            if participating {
                let watermark = lane.shipper.next_seq();
                let missing = watermark.saturating_sub(ds.store().contiguous(lane.source));
                // In-flight batches are not "missing" yet; judge only what
                // has had a full deadline window to arrive.
                let miss_frac = if watermark == 0 || lane.rounds_since_progress == 0 {
                    0.0
                } else {
                    missing as f64 / watermark as f64
                };
                let bad = input.degraded
                    || refused_this_round > 0
                    || stalled
                    || miss_frac > cfg.health.miss_watermark;
                lane.observe(round, bad, &cfg.health);
            }
        }
        // End of round: durability point. Flush acks model the reliable
        // control channel (applied directly, not over the lossy link).
        let acks = ds.flush().expect("MemStorage flush cannot fail");
        for ack in acks {
            if let Some(lane) = lanes.get_mut(&ack.source) {
                lane.shipper.on_ack(ack);
            }
        }
    }

    let store = ds.store();
    let ledger = store.ledger();
    let mut coverage = CoverageLedger::default();
    for lane in lanes.values() {
        let stored = ledger.received_count(lane.source);
        uburst_obs::counter_add("uburst_fleet_batches_stored_total", stored);
        uburst_obs::counter_add("uburst_fleet_batches_excluded_total", lane.excluded);
        coverage.switches.push(SwitchCoverage {
            source: lane.source,
            state: lane.state,
            produced: lane.produced,
            stored,
            missing: ledger
                .gaps(lane.source)
                .iter()
                .map(|&(lo, hi)| hi - lo + 1)
                .sum(),
            excluded: lane.excluded,
            refused: lane.refused,
            quarantines: lane.quarantines,
            rejoins: lane.rejoins,
        });
    }
    FleetOutcome {
        store,
        coverage,
        regions,
        rounds: max_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;
    use uburst_asic::CounterId;
    use uburst_sim::node::PortId;
    use uburst_sim::time::Nanos;

    /// A per-switch stream of `rounds` rounds, one batch per round with
    /// distinct timestamps; `degraded_until` marks the first rounds bad.
    fn stream(src: u32, link: LinkPlan, rounds: u32, degraded_until: u32) -> SwitchStream {
        let rounds = (0..rounds)
            .map(|r| {
                let mut s = Series::new();
                s.push(Nanos(1 + r as u64 * 10), r as u64);
                RoundInput {
                    batches: vec![Batch {
                        source: SourceId(src),
                        campaign: "fleet-test".into(),
                        counter: CounterId::TxBytes(PortId(0)),
                        samples: s,
                    }],
                    degraded: r < degraded_until,
                }
            })
            .collect();
        SwitchStream {
            source: SourceId(src),
            link,
            link_seed: 0xF1EE7 ^ src as u64,
            rounds,
        }
    }

    #[test]
    fn ideal_fleet_has_full_coverage() {
        let streams: Vec<_> = (0..8).map(|s| stream(s, LinkPlan::IDEAL, 6, 0)).collect();
        let out = run_fleet(streams, &FleetConfig::default());
        assert_eq!(out.coverage.switches.len(), 8);
        assert_eq!(out.coverage.included(), 8);
        assert_eq!(out.coverage.sample_fraction(), 1.0);
        for s in &out.coverage.switches {
            assert_eq!(s.state, HealthState::Healthy);
            assert_eq!(s.stored, 6);
            assert_eq!(s.undelivered(), 0);
        }
        assert_eq!(out.store.total_samples(), 8 * 6);
        // Regions saw all the traffic between them.
        assert_eq!(out.regions.iter().map(|r| r.switches).sum::<usize>(), 8);
        assert!(out.regions.iter().all(|r| r.forwarded > 0));
    }

    #[test]
    fn blackholed_switch_is_quarantined_and_accounted() {
        let blackhole = LinkPlan {
            drop_p: 1.0,
            ..LinkPlan::IDEAL
        };
        let mut streams: Vec<_> = (0..4).map(|s| stream(s, LinkPlan::IDEAL, 12, 0)).collect();
        streams.push(stream(9, blackhole, 12, 0));
        let out = run_fleet(streams, &FleetConfig::default());
        let bad = out
            .coverage
            .switches
            .iter()
            .find(|s| s.source == SourceId(9))
            .unwrap();
        assert_eq!(bad.state, HealthState::Quarantined);
        assert_eq!(bad.stored, 0);
        assert!(bad.excluded > 0, "quarantine exclusions are accounted");
        assert!(bad.undelivered() > 0, "in-flight loss is accounted");
        assert_eq!(
            bad.produced,
            bad.stored + bad.excluded + bad.refused + bad.undelivered(),
            "every produced batch is in exactly one coverage column"
        );
        assert_eq!(out.coverage.included(), 4);
        assert!(out.coverage.sample_fraction() < 1.0);
        // The healthy switches are untouched by their neighbour's failure.
        for s in out.coverage.switches.iter().filter(|s| s.source.0 < 4) {
            assert_eq!(s.state, HealthState::Healthy);
            assert_eq!(s.stored, 12);
        }
        // The report says all of this out loud.
        let text = out.coverage.to_string();
        assert!(text.contains("4/5 switches included"));
        assert!(text.contains("switch 9: quarantined"));
    }

    #[test]
    fn degraded_switch_recovers_and_counts_rejoin() {
        // Clean link, but the switch reports degradation for its first 6
        // rounds: Healthy → Degraded → Quarantined, then probes succeed
        // and it comes back as Recovered with one rejoin on the books.
        let streams = vec![
            stream(0, LinkPlan::IDEAL, 30, 0),
            stream(1, LinkPlan::IDEAL, 30, 6),
        ];
        let out = run_fleet(streams, &FleetConfig::default());
        let s1 = out
            .coverage
            .switches
            .iter()
            .find(|s| s.source == SourceId(1))
            .unwrap();
        assert_eq!(s1.state, HealthState::Recovered);
        assert_eq!(s1.quarantines, 1);
        assert_eq!(s1.rejoins, 1);
        assert!(s1.excluded > 0, "quarantined rounds were excluded");
        assert!(
            s1.stored > 0,
            "rounds after recovery made it into the store"
        );
        assert_eq!(out.coverage.rejoins(), 1);
        assert_eq!(out.coverage.included(), 2);
    }

    #[test]
    fn fleet_outcome_is_deterministic() {
        let build = || {
            let mut streams: Vec<_> = (0..6)
                .map(|s| stream(s, LinkPlan::default(), 10, 0))
                .collect();
            streams.push(stream(7, LinkPlan::HOSTILE, 10, 3));
            // Stream order must not matter: lanes are keyed by source.
            streams.reverse();
            streams
        };
        let a = run_fleet(build(), &FleetConfig::default());
        let b = run_fleet(build(), &FleetConfig::default());
        assert_eq!(a.coverage.to_string(), b.coverage.to_string());
        let mut csv_a = Vec::new();
        let mut csv_b = Vec::new();
        a.store.export_csv(&mut csv_a).unwrap();
        b.store.export_csv(&mut csv_b).unwrap();
        assert_eq!(csv_a, csv_b, "stored samples byte-identical");
    }

    #[test]
    fn probe_budget_bounds_retry() {
        // A switch that never stops reporting degradation: probes must
        // stop at the budget instead of retrying forever.
        let cfg = FleetConfig::default();
        let rounds = 80;
        let streams = vec![stream(3, LinkPlan::IDEAL, rounds, rounds)];
        let out = run_fleet(streams, &cfg);
        let s = &out.coverage.switches[0];
        assert_eq!(s.state, HealthState::Quarantined);
        // quarantine_after rounds judged before quarantine, then at most
        // max_probes probe rounds participate; everything else excluded.
        let participated = s.produced - s.excluded;
        assert!(
            participated <= (cfg.health.quarantine_after + cfg.health.max_probes) as u64,
            "participated {participated} exceeds quarantine + probe budget"
        );
        assert_eq!(s.rejoins, 0);
        assert_eq!(out.coverage.included(), 0);
    }
}
