//! Machine-readable bench results.
//!
//! Each harness in `benches/` records its cases into a [`BenchRecorder`]
//! and flushes them to `BENCH_<name>.json` next to the stdout report, so
//! the repo accumulates a perf trajectory that CI can archive and diff.
//! The format is a plain JSON array of rows:
//!
//! ```json
//! [
//!   {"case": "ecdf_build_100k", "median_ms": 4.812, "best_ms": 4.633, "iters": 30}
//! ]
//! ```
//!
//! Hand-rolled writer — the workspace is dependency-free by design.

use std::io::Write;
use std::path::PathBuf;

/// One benchmark case's timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Case label, unique within the harness.
    pub case: String,
    /// Median wall-clock per iteration, milliseconds.
    pub median_ms: f64,
    /// Best (minimum) wall-clock per iteration, milliseconds.
    pub best_ms: f64,
    /// Iterations timed.
    pub iters: u32,
}

/// Accumulates rows for one bench harness and writes `BENCH_<name>.json`.
#[derive(Debug)]
pub struct BenchRecorder {
    name: &'static str,
    rows: Vec<BenchRow>,
}

impl BenchRecorder {
    /// A recorder for the harness called `name` (e.g. `"analysis"`).
    pub fn new(name: &'static str) -> Self {
        BenchRecorder {
            name,
            rows: Vec::new(),
        }
    }

    /// Records one case.
    pub fn record(&mut self, case: &str, median_ms: f64, best_ms: f64, iters: u32) {
        self.rows.push(BenchRow {
            case: case.to_string(),
            median_ms,
            best_ms,
            iters,
        });
    }

    /// The rows recorded so far, in recording order.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// The serialized JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"case\": {}, \"median_ms\": {}, \"best_ms\": {}, \"iters\": {}}}{}\n",
                json_string(&row.case),
                json_f64(row.median_ms),
                json_f64(row.best_ms),
                row.iters,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        out
    }

    /// The output path: `$UBURST_BENCH_DIR/BENCH_<name>.json`, defaulting
    /// to the current directory (the *package* root, `crates/bench/`, under
    /// `cargo bench` — set `UBURST_BENCH_DIR` to collect elsewhere).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("UBURST_BENCH_DIR").unwrap_or_else(|_| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the JSON file, reporting the path on stdout. IO errors are
    /// reported on stderr rather than panicking — a missing trajectory
    /// file must not fail a bench run.
    pub fn flush(&self) {
        let path = self.path();
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(self.to_json().as_bytes()))
        {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Parses a `BENCH_<name>.json` document back into rows — the inverse of
/// [`BenchRecorder::to_json`], for the regression gate (`ext_bench_check`)
/// that compares a fresh run against the committed baselines.
///
/// Hand-rolled like the writer (dependency-free workspace): a
/// recursive-descent reader for exactly this schema — an array of flat
/// objects with string/number/null values. Unknown keys are ignored so
/// the format can grow; `null` medians (non-finite at record time) are
/// rejected, since a baseline without a number cannot gate anything.
pub fn parse_rows(json: &str) -> Result<Vec<BenchRow>, String> {
    let mut p = Parser {
        s: json.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut rows = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        return Ok(rows);
    }
    loop {
        rows.push(p.object_row()?);
        p.skip_ws();
        match p.next() {
            Some(b',') => p.skip_ws(),
            Some(b']') => return Ok(rows),
            other => return Err(format!("expected ',' or ']' at byte {}: {other:?}", p.i)),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, found {got:?}",
                c as char, self.i
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = self
                            .s
                            .get(self.i..self.i + 4)
                            .ok_or("truncated \\u escape")?;
                        self.i += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    e => return Err(format!("bad escape {e:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.i - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self.s.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i = start + len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// A JSON number or `null` (returned as NaN for the caller to reject).
    fn number_or_null(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(b"null") {
            self.i += 4;
            return Ok(f64::NAN);
        }
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn object_row(&mut self) -> Result<BenchRow, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut case = None;
        let mut median_ms = None;
        let mut best_ms = None;
        let mut iters = None;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "case" => case = Some(self.string()?),
                "median_ms" => median_ms = Some(self.number_or_null()?),
                "best_ms" => best_ms = Some(self.number_or_null()?),
                "iters" => iters = Some(self.number_or_null()? as u32),
                _ => {
                    // Ignore unknown members (string or number).
                    if self.peek() == Some(b'"') {
                        self.string()?;
                    } else {
                        self.number_or_null()?;
                    }
                }
            }
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.i += 1;
            }
        }
        let case = case.ok_or("row missing \"case\"")?;
        let median_ms = median_ms.ok_or_else(|| format!("{case}: missing \"median_ms\""))?;
        let best_ms = best_ms.ok_or_else(|| format!("{case}: missing \"best_ms\""))?;
        if !median_ms.is_finite() || !best_ms.is_finite() {
            return Err(format!("{case}: non-finite timing"));
        }
        let iters = iters.ok_or_else(|| format!("{case}: missing \"iters\""))?;
        Ok(BenchRow {
            case,
            median_ms,
            best_ms,
            iters,
        })
    }
}

/// Escapes a string for JSON (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as valid JSON (no NaN/Inf; fixed precision keeps the
/// trajectory diffable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_as_json_array() {
        let mut rec = BenchRecorder::new("unit");
        rec.record("fast_case", 1.25, 1.0, 30);
        rec.record("slow \"case\"", 100.5, 99.875, 5);
        let json = rec.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{\"case\": \"fast_case\", \"median_ms\": 1.2500, \"best_ms\": 1.0000, \"iters\": 30},"
        ));
        assert!(json.contains("\"slow \\\"case\\\"\""));
        // Exactly one comma: two rows.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn empty_recorder_is_valid_json() {
        assert_eq!(BenchRecorder::new("unit").to_json(), "[\n]\n");
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.0 / 0.0), "null");
    }

    #[test]
    fn path_honors_env_dir() {
        let rec = BenchRecorder::new("unit");
        assert!(rec.path().to_string_lossy().ends_with("BENCH_unit.json"));
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let mut rec = BenchRecorder::new("unit");
        rec.record("fast_case", 1.25, 1.0, 30);
        rec.record("slow \"case\"\n", 100.5, 99.875, 5);
        let parsed = parse_rows(&rec.to_json()).expect("round trip");
        assert_eq!(parsed, rec.rows());
    }

    #[test]
    fn parse_accepts_empty_array_and_unknown_keys() {
        assert!(parse_rows("[\n]\n").expect("empty").is_empty());
        let rows = parse_rows(
            "[{\"case\": \"a\", \"median_ms\": 2, \"best_ms\": 1.5, \"iters\": 3, \"note\": \"x\"}]",
        )
        .expect("unknown keys ignored");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].median_ms, 2.0);
    }

    #[test]
    fn parse_rejects_null_medians_and_garbage() {
        assert!(parse_rows(
            "[{\"case\": \"a\", \"median_ms\": null, \"best_ms\": 1, \"iters\": 1}]"
        )
        .is_err());
        assert!(parse_rows("not json").is_err());
        assert!(parse_rows("[{\"median_ms\": 1, \"best_ms\": 1, \"iters\": 1}]").is_err());
    }
}
