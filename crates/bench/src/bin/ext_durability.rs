//! Extension experiment: crash-safe sample persistence under hostile links.
//!
//! The paper's collection tier streams counter batches from switch-local
//! agents to an aggregation point; in production both halves fail — the
//! collector host dies mid-write and the links between them drop, delay,
//! and duplicate traffic. This harness sweeps the link fault intensity on
//! a fixed shipping session (3 sources, go-back-N shippers, WAL-backed
//! receiver with fsync-always) and, at every intensity, drives a seeded
//! crash sweep across the WAL byte stream, reporting
//!
//! * **recovery coverage** — the fraction of crash points where the
//!   recovered store equals *exactly* the acked prefix (the durability
//!   contract: no acked record lost, no unacked record resurrected),
//! * **tear anatomy** — how many crash points landed mid-record (torn
//!   tails truncated on recovery) vs. on a frame boundary, and
//! * **convergence** — whether resuming the surviving shippers against
//!   the recovered store re-delivers every gap, byte-identical to the
//!   crash-free reference export.
//!
//! Everything is deterministic from the printed seed.
//!
//! Run with `cargo run --release -p uburst-bench --bin ext_durability`.

use std::collections::BTreeMap;

use uburst_bench::report::Table;
use uburst_core::{
    AckMsg, Batch, CrashPlan, DurableStore, FsyncPolicy, LinkPlan, LossyLink, MemStorage, SeqBatch,
    Series, Shipper, ShipperConfig, SourceId, TornStorage, WalConfig, WalError, WalStorage,
};
use uburst_sim::node::PortId;
use uburst_sim::time::Nanos;

const SEED: u64 = 0xD00B_1E55;
const SOURCES: u32 = 3;
const BATCHES_PER_SOURCE: u64 = 16;
const SAMPLES_PER_BATCH: u64 = 4;
/// Small segments so every sweep crosses several rotation boundaries.
const SEGMENT_BYTES: usize = 512;

fn wal_config() -> WalConfig {
    WalConfig {
        segment_max_bytes: SEGMENT_BYTES,
        fsync: FsyncPolicy::Always,
    }
}

fn make_batch(source: u32, i: u64) -> Batch {
    let mut s = Series::new();
    for k in 0..SAMPLES_PER_BATCH {
        s.push(Nanos(1 + i * 100 + k), i * 10 + k);
    }
    Batch {
        source: SourceId(source),
        campaign: "durability".into(),
        counter: uburst_asic::CounterId::TxBytes(PortId(source as u16)),
        samples: s,
    }
}

fn fresh_shippers() -> Vec<Shipper> {
    (0..SOURCES)
        .map(|src| {
            let mut sh = Shipper::new(
                SourceId(src),
                ShipperConfig {
                    window: 8,
                    rto_ticks: 4,
                    ..ShipperConfig::default()
                },
            );
            for i in 0..BATCHES_PER_SOURCE {
                sh.offer(make_batch(src, i)).expect("under outstanding cap");
            }
            sh
        })
        .collect()
}

/// Shippers → lossy link → durable store → lossy ack link → shippers,
/// until drained or the storage crashes. Tracks the highest ack issued.
fn run_session<S: WalStorage>(
    ds: &mut DurableStore<S>,
    shippers: &mut [Shipper],
    acked: &mut BTreeMap<SourceId, u64>,
    plan: LinkPlan,
    link_seed: u64,
) -> Result<u64, WalError> {
    let mut data_link: LossyLink<SeqBatch> = LossyLink::new(plan, link_seed);
    let mut ack_link: LossyLink<AckMsg> = LossyLink::new(plan, link_seed ^ 1);
    for tick in 0u64..100_000 {
        for sh in shippers.iter_mut() {
            for sb in sh.tick() {
                data_link.send(sb);
            }
        }
        for sb in data_link.tick() {
            let (_, ack) = ds.ingest(&sb)?;
            let best = acked.entry(ack.source).or_insert(0);
            *best = (*best).max(ack.cum);
            ack_link.send(ack);
        }
        for ack in ack_link.tick() {
            shippers[ack.source.0 as usize].on_ack(ack);
        }
        if shippers.iter().all(Shipper::done)
            && data_link.in_flight() == 0
            && ack_link.in_flight() == 0
        {
            return Ok(tick + 1);
        }
    }
    panic!("session livelocked: shippers never drained");
}

/// One crash sweep at a given link intensity.
struct SweepResult {
    loss_pct: f64,
    ref_ticks: u64,
    retransmits: u64,
    crash_points: usize,
    exact_prefix: usize,
    torn_tails: usize,
    converged: usize,
    total_bytes: u64,
    /// Digest of every per-point outcome, for the determinism replay.
    digest: u64,
}

fn link_plan_at(loss_pct: f64) -> LinkPlan {
    LinkPlan {
        drop_p: loss_pct / 100.0,
        dup_p: loss_pct / 200.0,
        delay_p: (loss_pct / 50.0).min(0.5),
        max_delay_ticks: 3,
    }
}

fn sweep_at(loss_pct: f64, crash_points: usize) -> SweepResult {
    let plan = link_plan_at(loss_pct);
    let link_seed = SEED ^ (loss_pct * 1000.0) as u64;

    // Crash-free reference: establishes the exact byte stream and export.
    let mut ds = DurableStore::create(MemStorage::new(), wal_config()).expect("create");
    let mut shippers = fresh_shippers();
    let mut acked = BTreeMap::new();
    let ref_ticks =
        run_session(&mut ds, &mut shippers, &mut acked, plan, link_seed).expect("intact storage");
    let retransmits: u64 = shippers.iter().map(|s| s.stats().retransmits).sum();
    let mut reference_csv = Vec::new();
    ds.store().export_csv(&mut reference_csv).expect("export");
    let total_bytes = ds.wal().total_bytes();
    let record_ends = ds.wal().record_ends().to_vec();

    let crash_plan = CrashPlan::sweep(link_seed, total_bytes, &record_ends, crash_points);
    let mut exact_prefix = 0usize;
    let mut torn_tails = 0usize;
    let mut converged = 0usize;
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a basis
    let mut mix = |v: u64| {
        digest = (digest ^ v).wrapping_mul(0x1000_0000_01b3);
    };
    for &budget in crash_plan.offsets() {
        // Session until the injected crash; the link stream must match the
        // reference run byte-for-byte, so it reuses the same link seed.
        let disk = MemStorage::new();
        let torn = TornStorage::new(disk.clone(), budget);
        let mut acked: BTreeMap<SourceId, u64> = BTreeMap::new();
        let mut shippers = fresh_shippers();
        if let Ok(mut ds) = DurableStore::create(torn, wal_config()) {
            let crashed = run_session(&mut ds, &mut shippers, &mut acked, plan, link_seed);
            assert!(crashed.is_err(), "budget {budget} must crash the session");
        }

        let (rec, report) =
            DurableStore::recover(disk, wal_config()).expect("recovery never fails");
        torn_tails += report.torn_tails as usize;
        let exact = (0..SOURCES).all(|src| {
            rec.store().contiguous(SourceId(src)) == acked.get(&SourceId(src)).copied().unwrap_or(0)
        });
        exact_prefix += exact as usize;

        // Resume: surviving shippers re-deliver every gap over a fresh link.
        for sh in &shippers {
            rec.note_stream_state(sh.source(), sh.next_seq());
        }
        let mut rec = rec;
        run_session(
            &mut rec,
            &mut shippers,
            &mut acked,
            plan,
            link_seed ^ 0xDEAD,
        )
        .expect("no second crash");
        let mut final_csv = Vec::new();
        rec.store().export_csv(&mut final_csv).expect("export");
        let ok = final_csv == reference_csv && rec.store().stats().missing_batches == 0;
        converged += ok as usize;

        mix(budget);
        mix(report.records);
        mix(report.torn_tails);
        mix(exact as u64);
        mix(ok as u64);
    }

    SweepResult {
        loss_pct,
        ref_ticks,
        retransmits,
        crash_points: crash_plan.len(),
        exact_prefix,
        torn_tails,
        converged,
        total_bytes,
        digest,
    }
}

fn main() {
    let scale = uburst_bench::Scale::from_env();
    let points = match scale {
        uburst_bench::Scale::Quick => 48,
        uburst_bench::Scale::Full => 200,
    };
    println!(
        "extension: crash-safe persistence — recovery coverage vs link faults ({} scale)",
        scale.label()
    );
    println!(
        "seed {SEED:#x}, {SOURCES} sources x {BATCHES_PER_SOURCE} batches, {SEGMENT_BYTES} B segments, fsync=always"
    );
    println!("{points} seeded crash points per link intensity (record ends ± 1 + mid-record fill)");
    println!();

    // Each intensity is an independent seeded sweep: fan across the pool.
    // The trailing pair replays the hostile point for the determinism check.
    let sweep_loss = [0.0, 2.0, 10.0, 25.0];
    let mut jobs: Vec<f64> = sweep_loss.to_vec();
    jobs.extend([25.0, 25.0]);
    let mut results = uburst_bench::run_jobs(jobs, |loss| sweep_at(loss, points));

    let b = results.pop().expect("replay b");
    let a = results.pop().expect("replay a");
    let deterministic = a.digest == b.digest
        && a.exact_prefix == b.exact_prefix
        && a.torn_tails == b.torn_tails
        && a.ref_ticks == b.ref_ticks;

    let mut t = Table::new(&[
        "loss%",
        "ticks",
        "rexmit",
        "wal_B",
        "crashes",
        "exact",
        "torn",
        "converged",
    ]);
    let mut all_exact = true;
    let mut all_converged = true;
    let mut any_torn = false;
    for r in &results {
        all_exact &= r.exact_prefix == r.crash_points;
        all_converged &= r.converged == r.crash_points;
        any_torn |= r.torn_tails > 0;
        t.row(&[
            format!("{:.1}", r.loss_pct),
            format!("{}", r.ref_ticks),
            format!("{}", r.retransmits),
            format!("{}", r.total_bytes),
            format!("{}", r.crash_points),
            format!("{}/{}", r.exact_prefix, r.crash_points),
            format!("{}", r.torn_tails),
            format!("{}/{}", r.converged, r.crash_points),
        ]);
    }
    t.print();

    println!();
    println!("reading: fsync-always plus a go-back-N receiver makes recovery exact at");
    println!("every crash offset — the WAL holds precisely the acked prefix per source,");
    println!("torn tails are truncated, and retransmit refills every gap afterwards.");
    println!("Link hostility costs only time (ticks, retransmits), never durability.");
    println!("\nchecks:");
    println!(
        "  [{}] every crash point recovers to exactly the acked prefix",
        if all_exact { "ok" } else { "MISS" }
    );
    println!(
        "  [{}] every resumed session converges to the crash-free reference",
        if all_converged { "ok" } else { "MISS" }
    );
    println!(
        "  [{}] the sweep produced mid-record tears (torn-tail coverage)",
        if any_torn { "ok" } else { "MISS" }
    );
    println!(
        "  [{}] replay from seed {SEED:#x} is bit-identical",
        if deterministic { "ok" } else { "MISS" }
    );
}
