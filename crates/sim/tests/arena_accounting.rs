//! Packet-arena accounting properties.
//!
//! The arena's contract with the simulator: every packet handle allocated
//! by a transmission is taken back exactly once (at delivery), slots are
//! recycled through the freelist rather than grown, and a drained
//! simulation leaves zero live handles. A leak here would grow memory
//! linearly with simulated traffic; a double-free would deliver a packet
//! twice and silently corrupt results (the arena panics instead — see the
//! generation tests in `uburst_sim::arena`).

use std::any::Any;

use uburst_sim::prelude::*;

/// Counts arrivals and echoes nothing.
struct SinkHost {
    rx: u64,
}
impl Node for SinkHost {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {
        self.rx += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends `n` packets to `dst` through its NIC-less port, re-arming a
/// timer between sends so transmissions are spread over time and slots
/// get recycled rather than piled up.
struct Pacer {
    dst: NodeId,
    remaining: u32,
    gap: Nanos,
}
impl Node for Pacer {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let pkt = Packet {
            flow: FlowId(u64::from(self.remaining)),
            kind: PacketKind::Raw {
                tag: u64::from(self.remaining),
            },
            src: ctx.node(),
            dst: self.dst,
            size: MTU_FRAME,
            created: ctx.now(),
            ce: false,
        };
        ctx.start_tx(PortId(0), pkt);
        let gap = self.gap;
        ctx.timer_in(gap, 0);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn fan_in_campaign(senders: u32, per_sender: u32) -> Simulator {
    fan_in_campaign_mode(senders, per_sender, None)
}

fn fan_in_campaign_mode(senders: u32, per_sender: u32, hybrid: Option<bool>) -> Simulator {
    let mut sim = Simulator::new();
    if let Some(h) = hybrid {
        sim.set_hybrid(h);
    }
    let recv = sim.add_node(Box::new(SinkHost { rx: 0 }));
    let mut routing = RoutingTable::new(0);
    routing.set_route(recv, Route::Port(PortId(0)));
    let spec = LinkSpec::gbps(10.0, Nanos(500));

    let mut sources = Vec::new();
    for _ in 0..senders {
        sources.push(sim.add_node(Box::new(Pacer {
            dst: recv,
            remaining: per_sender,
            gap: Nanos(2_000),
        })));
    }
    let sw = sim.add_node(Box::new(Switch::new(
        SwitchConfig {
            ports: senders as u16 + 1,
            buffer_bytes: 12 << 20,
            policy: BufferPolicyCfg::dt(2.0),
            ecn_threshold: None,
        },
        routing,
        null_sink(),
    )));
    sim.connect((recv, PortId(0)), (sw, PortId(0)), spec);
    for (i, &src) in sources.iter().enumerate() {
        sim.connect((src, PortId(0)), (sw, PortId(i as u16 + 1)), spec);
        sim.schedule_timer(Nanos(0), src, 0);
    }
    sim
}

#[test]
fn every_allocated_handle_is_freed_exactly_once_per_campaign() {
    let mut sim = fan_in_campaign(8, 500);
    sim.run_until(Nanos::MAX);
    let stats = sim.arena_stats();
    // 8 × 500 sender transmissions + 4000 switch forwards = 8000 allocs.
    assert_eq!(stats.allocated, 8_000, "one handle per transmission");
    assert_eq!(stats.freed, stats.allocated, "freed exactly once each");
    assert_eq!(sim.arena_live(), 0, "drained simulation leaks no handles");
}

#[test]
fn slots_are_recycled_not_grown() {
    // Per-packet mode: only packets on the wire hold arena slots, so the
    // high-water mark stays near the instantaneous wire occupancy.
    let mut sim = fan_in_campaign_mode(8, 500, Some(false));
    sim.run_until(Nanos::MAX);
    let stats = sim.arena_stats();
    // Paced traffic keeps few packets simultaneously in flight, so the
    // freelist serves almost every allocation and the slot array stays at
    // the high-water mark instead of growing with total traffic.
    assert!(
        stats.reuse_hits >= stats.allocated - stats.high_water as u64,
        "freelist must serve allocations beyond the high-water mark \
         (reuse {} of {}, high water {})",
        stats.reuse_hits,
        stats.allocated,
        stats.high_water
    );
    assert!(
        (stats.high_water as u64) < stats.allocated / 10,
        "high water {} should be far below total {}",
        stats.high_water,
        stats.allocated
    );
}

#[test]
fn hybrid_high_water_tracks_peak_backlog_not_total_traffic() {
    // Hybrid fast-forward parks a congested switch's backlog in the
    // calendar as pre-scheduled arrivals, so arena occupancy tracks the
    // peak *queue* backlog instead of the wire. It must still be recycled
    // (freelist serves everything past the high-water mark) and stay well
    // below total traffic — memory is bounded by buffering, not by how
    // long the campaign runs.
    let mut sim = fan_in_campaign_mode(8, 500, Some(true));
    sim.run_until(Nanos::MAX);
    let stats = sim.arena_stats();
    assert!(
        stats.reuse_hits >= stats.allocated - stats.high_water as u64,
        "freelist must serve allocations beyond the high-water mark \
         (reuse {} of {}, high water {})",
        stats.reuse_hits,
        stats.allocated,
        stats.high_water
    );
    assert!(
        (stats.high_water as u64) < stats.allocated / 2,
        "high water {} must track peak backlog, not total traffic {}",
        stats.high_water,
        stats.allocated
    );
    assert_eq!(stats.freed, stats.allocated);
    assert_eq!(sim.arena_live(), 0);
}

#[test]
fn mid_run_horizon_reports_in_flight_handles() {
    let mut sim = fan_in_campaign(2, 50);
    // Stop at a horizon with traffic still in the air: live handles are
    // exactly the packets between start_tx and delivery.
    sim.run_until(Nanos(10_000));
    let live_mid = sim.arena_live();
    let stats = sim.arena_stats();
    assert_eq!(
        stats.allocated - stats.freed,
        live_mid as u64,
        "live = allocated - freed at any instant"
    );
    sim.run_until(Nanos::MAX);
    assert_eq!(sim.arena_live(), 0);
}
